//! `GROUPPAD`: padding to preserve group reuse on the L1 cache.
//!
//! Section 3.2.1: "GROUPPAD obtains such a layout by considering for each
//! variable a limited number of positions relative to other variables. The
//! number of references successfully exploiting group reuse at the L1 cache
//! is counted for each position. GROUPPAD then selects the position
//! maximizing this value." It simultaneously avoids severe conflict misses
//! (it "inserts larger pads than PAD to obtain a layout both preserving
//! group reuse on the L1 cache and avoiding severe conflict misses").
//!
//! Implementation: incremental placement in declaration order. For each
//! variable all cache positions at line granularity are scored by the
//! lexicographic objective *(fewest severe conflicts, most references
//! exploiting group reuse among placed variables, smallest pad)*.

use crate::group::ProgramSkeleton;
use crate::pad::PadResult;
use mlc_cache_sim::CacheConfig;
use mlc_model::{DataLayout, Program};

/// Run GROUPPAD against one cache (the L1 cache in the paper).
pub fn group_pad(program: &Program, cache: CacheConfig) -> PadResult {
    group_pad_quantized(program, cache, cache.line as u64, &[])
}

/// GROUPPAD with a pad quantum: candidate pads are multiples of `quantum`
/// covering one full cache span. `base_pads` (if non-empty) is added before
/// the search pads — this is the entry point the recursive multi-level
/// variant uses, where the quantum at level ℓ is the cache size of level
/// ℓ−1 so deeper levels cannot disturb the layout already fixed for the
/// levels above (Section 3.2.2).
pub fn group_pad_quantized(
    program: &Program,
    cache: CacheConfig,
    quantum: u64,
    base_pads: &[u64],
) -> PadResult {
    assert!(
        quantum > 0 && (cache.size as u64).is_multiple_of(quantum),
        "quantum must divide the cache size"
    );
    let n = program.arrays.len();
    let base = if base_pads.is_empty() {
        vec![0u64; n]
    } else {
        base_pads.to_vec()
    };
    assert_eq!(base.len(), n);
    let mut pads = base.clone();
    let mut tried = 0u64;
    let candidates = cache.size as u64 / quantum;
    let skel = ProgramSkeleton::new(program);
    let sizes: Vec<u64> = program
        .arrays
        .iter()
        .map(|a| a.size_bytes() as u64)
        .collect();
    // bases(pads): cumulative layout arithmetic without allocating a layout.
    let compute_bases = |pads: &[u64], out: &mut Vec<u64>| {
        out.clear();
        let mut cursor = 0u64;
        for (sz, &p) in sizes.iter().zip(pads) {
            cursor += p;
            out.push(cursor);
            cursor += sz;
        }
    };
    let mut bases = Vec::with_capacity(n);

    // One variable's best position given a fixed set of visible arrays.
    let place =
        |pads: &mut Vec<u64>, k: usize, visible: &[bool], tried: &mut u64, bases: &mut Vec<u64>| {
            let mut best: Option<(usize, i64, u64)> = None;
            let mut best_pad = pads[k];
            for c in 0..candidates {
                let candidate = base[k] + c * quantum;
                pads[k] = candidate;
                compute_bases(pads, bases);
                *tried += 1;
                let conflicts = skel.severe(bases, cache, Some(visible));
                let exploited = skel.exploited(bases, cache, Some(visible)) as i64;
                let score = (conflicts, -exploited, candidate);
                if best.is_none_or(|b| score < b) {
                    best = Some(score);
                    best_pad = candidate;
                }
            }
            pads[k] = best_pad;
        };

    // Initial greedy placement in declaration order.
    let mut visible = vec![false; n];
    for k in 0..n {
        visible[k] = true;
        place(&mut pads, k, &visible, &mut tried, &mut bases);
    }
    // Refinement sweeps: re-place each variable with all others fixed
    // (coordinate ascent over the full objective). The first greedy pass is
    // myopic when the cache barely holds two columns; a couple of sweeps
    // recovers the layouts the paper's diagrams show.
    for _ in 0..2 {
        let before = pads.clone();
        for k in 0..n {
            place(&mut pads, k, &visible, &mut tried, &mut bases);
        }
        if pads == before {
            break;
        }
    }
    PadResult {
        layout: DataLayout::with_pads(&program.arrays, &pads),
        pads,
        positions_tried: tried,
    }
}

/// Recursive multi-level GROUPPAD (Section 3.2.2): "GROUPPAD ... begins
/// targeting the L1 cache as already described, and then in later phases
/// recursively applies GROUPPAD to exploit group reuse for lower levels of
/// cache, using pads which are multiples of the previous cache size to
/// preserve group reuse at higher levels of cache."
///
/// Phase ℓ searches pad increments that are multiples of level ℓ−1's cache
/// size, so every already-fixed level's layout (base addresses modulo its
/// cache size) is untouched. Works for any hierarchy depth.
pub fn group_pad_multi(program: &Program, hierarchy: &mlc_cache_sim::HierarchyConfig) -> PadResult {
    let mut result = group_pad(program, hierarchy.l1());
    let mut tried = result.positions_tried;
    for level in 1..hierarchy.depth() {
        let quantum = hierarchy.levels[level - 1].size as u64;
        let r = group_pad_quantized(program, hierarchy.levels[level], quantum, &result.pads);
        tried += r.positions_tried;
        result = r;
    }
    result.positions_tried = tried;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::severe_conflicts;
    use crate::group::{account, exploited_count, RefClass};
    use mlc_cache_sim::CacheConfig;
    use mlc_model::program::figure2_example;
    use mlc_model::transform::fuse_in_program;

    /// Diagram-scale configuration: 1 KiB cache, 480-byte columns.
    fn small_l1() -> CacheConfig {
        CacheConfig::direct_mapped(1024, 32)
    }

    #[test]
    fn grouppad_beats_pad_on_group_reuse() {
        // Realistic ratio: 16 KiB cache, N=450 doubles -> 3600 B columns
        // (~4.5 columns of cache): room to preserve all five arcs.
        let l1 = CacheConfig::direct_mapped(16 * 1024, 32);
        let p = figure2_example(450);
        let g = group_pad(&p, l1);
        let plain = crate::pad::pad(&p, l1);
        let g_count = exploited_count(&p, &g.layout, l1, &[]);
        let p_count = exploited_count(&p, &plain.layout, l1, &[]);
        assert!(
            g_count >= p_count,
            "GROUPPAD ({g_count}) should exploit at least as much group reuse as PAD ({p_count})"
        );
        assert_eq!(
            g_count, 5,
            "all five arcs should be preserved at this ratio"
        );
    }

    #[test]
    fn grouppad_preserves_b_arcs_at_tight_ratio() {
        // The Figure 4 situation: cache ~2.1 columns (N=60 doubles on a
        // 1 KiB cache). Not everything fits; GROUPPAD salvages what it can.
        let p = figure2_example(60);
        let g = group_pad(&p, small_l1());
        let count = exploited_count(&p, &g.layout, small_l1(), &[]);
        assert!(count >= 2, "got {count}");
    }

    #[test]
    fn grouppad_avoids_severe_conflicts_when_possible() {
        let p = figure2_example(64); // 512-byte columns on the 1 KiB cache
        let g = group_pad(&p, small_l1());
        assert!(severe_conflicts(&p, &g.layout, small_l1()).is_empty());
    }

    #[test]
    fn grouppad_on_the_real_l1() {
        // N=512 on the 16 KiB UltraSparc L1: columns are 4 KiB; the cache
        // holds 4 columns, so not all of nest 1's three arcs (one column
        // each, plus slack) can be preserved, but B's can.
        let l1 = CacheConfig::direct_mapped(16 * 1024, 32);
        let p = figure2_example(512);
        let g = group_pad(&p, l1);
        assert!(severe_conflicts(&p, &g.layout, l1).is_empty());
        let acc = account(&p, &g.layout, l1, None);
        assert!(acc.l1_refs >= 3, "got {:?}", acc);
    }

    #[test]
    fn fused_program_loses_l1_group_reuse() {
        // The Section 4 tradeoff, with GROUPPAD searching for real: the
        // fused nest needs over four columns of cache ("a L1 cache size over
        // four times the column size would be required to exploit all group
        // reuse"), so at exactly four columns (N=512 on 16 KiB) fewer
        // references exploit group reuse after fusion.
        let l1 = CacheConfig::direct_mapped(16 * 1024, 32);
        let p = figure2_example(512);
        let fused = fuse_in_program(&p, 0).unwrap();
        let before = group_pad(&p, l1);
        let after = group_pad(&fused, l1);
        let n_before = exploited_count(&p, &before.layout, l1, &[]);
        let n_after = exploited_count(&fused, &after.layout, l1, &[]);
        assert!(
            n_after < n_before,
            "fusion should lose L1 group reuse here: {n_after} !< {n_before}"
        );
    }

    #[test]
    fn quantized_pads_respect_quantum() {
        let p = figure2_example(60);
        let r = group_pad_quantized(&p, CacheConfig::direct_mapped(8192, 64), 1024, &[]);
        for &pad in &r.pads {
            assert_eq!(pad % 1024, 0);
        }
    }

    #[test]
    fn base_pads_are_preserved_mod_quantum() {
        let p = figure2_example(60);
        let l1 = small_l1();
        let first = group_pad(&p, l1);
        // Second phase: search L2 positions in S1 steps on top of the L1 pads.
        let l2 = CacheConfig::direct_mapped(8192, 64);
        let second = group_pad_quantized(&p, l2, l1.size as u64, &first.pads);
        for (a, b) in first.pads.iter().zip(&second.pads) {
            assert_eq!(
                a % l1.size as u64,
                b % l1.size as u64,
                "L1 residue must be preserved"
            );
            assert!(b >= a);
        }
        // L1 exploitation unchanged by the second phase.
        assert_eq!(
            exploited_count(&p, &first.layout, l1, &[]),
            exploited_count(&p, &second.layout, l1, &[])
        );
    }

    #[test]
    fn recursive_multilevel_grouppad_preserves_upper_levels() {
        use mlc_cache_sim::HierarchyConfig;
        let h = HierarchyConfig::alpha_21164_like(); // three levels
        let p = figure2_example(300);
        let single = group_pad(&p, h.l1());
        let multi = group_pad_multi(&p, &h);
        // Every level-ℓ phase uses multiples of level ℓ−1's size, so the L1
        // residues of the final layout match the pure-L1 run.
        let s1 = h.l1().size as u64;
        for (a, b) in single.layout.bases.iter().zip(&multi.layout.bases) {
            assert_eq!(a % s1, b % s1);
        }
        assert_eq!(
            exploited_count(&p, &single.layout, h.l1(), &[]),
            exploited_count(&p, &multi.layout, h.l1(), &[])
        );
        // And the deeper levels get at least as much exploited reuse as the
        // L1-only layout leaves them by accident.
        for level in 1..h.depth() {
            let c = h.levels[level];
            assert!(
                exploited_count(&p, &multi.layout, c, &[])
                    >= exploited_count(&p, &single.layout, c, &[]),
                "level {level}"
            );
        }
    }

    #[test]
    fn two_level_recursive_matches_quantized_composition() {
        use mlc_cache_sim::HierarchyConfig;
        let h = HierarchyConfig::ultrasparc_i();
        let p = figure2_example(60);
        let multi = group_pad_multi(&p, &h);
        let manual = {
            let g = group_pad(&p, h.l1());
            group_pad_quantized(&p, h.levels[1], h.l1().size as u64, &g.pads)
        };
        assert_eq!(multi.pads, manual.pads);
    }

    #[test]
    fn accounting_classes_follow_grouppad() {
        let p = figure2_example(60);
        let g = group_pad(&p, small_l1());
        let acc = account(&p, &g.layout, small_l1(), None);
        // Every class is one of the single-level ones.
        for c in acc.per_nest.iter().flatten() {
            assert_ne!(*c, RefClass::L2);
        }
        assert_eq!(acc.l1_refs + acc.memory_refs + acc.register_refs, 10);
    }
}
