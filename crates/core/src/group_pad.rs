//! `GROUPPAD`: padding to preserve group reuse on the L1 cache.
//!
//! Section 3.2.1: "GROUPPAD obtains such a layout by considering for each
//! variable a limited number of positions relative to other variables. The
//! number of references successfully exploiting group reuse at the L1 cache
//! is counted for each position. GROUPPAD then selects the position
//! maximizing this value." It simultaneously avoids severe conflict misses
//! (it "inserts larger pads than PAD to obtain a layout both preserving
//! group reuse on the L1 cache and avoiding severe conflict misses").
//!
//! Implementation: incremental placement in declaration order. For each
//! variable all cache positions at line granularity are scored by the
//! lexicographic objective *(fewest severe conflicts, most references
//! exploiting group reuse among placed variables, smallest pad)*.
//!
//! Two interchangeable engines run the search: the pruned incremental one
//! in [`crate::search`] (default) and the exhaustive scalar scan kept here
//! (selected by [`crate::search::set_fast_search`]`(false)`, the
//! `--no-fast-search` flag on the experiment binaries). They produce
//! bitwise-identical pads; the parity suite in `mlc-experiments` checks
//! every kernel × hierarchy, and debug builds cross-check each placement.

use crate::group::ProgramSkeleton;
use crate::pad::{PadError, PadResult};
use mlc_cache_sim::CacheConfig;
use mlc_model::{DataLayout, Program};

/// Run GROUPPAD against one cache (the L1 cache in the paper).
///
/// Infallible: the line-granularity quantum divides the cache size by
/// construction of [`CacheConfig`].
pub fn group_pad(program: &Program, cache: CacheConfig) -> PadResult {
    group_pad_quantized(program, cache, cache.line as u64, &[])
        .expect("cache line divides cache size")
}

/// GROUPPAD with a pad quantum: candidate pads are multiples of `quantum`
/// covering one full cache span. `base_pads` (if non-empty) is added before
/// the search pads — this is the entry point the recursive multi-level
/// variant uses, where the quantum at level ℓ is the cache size of level
/// ℓ−1 so deeper levels cannot disturb the layout already fixed for the
/// levels above (Section 3.2.2).
///
/// Errors with [`PadError::BadQuantum`] when `quantum` is zero or does not
/// divide the cache size, and [`PadError::BaseLenMismatch`] when a
/// non-empty `base_pads` does not cover every array.
pub fn group_pad_quantized(
    program: &Program,
    cache: CacheConfig,
    quantum: u64,
    base_pads: &[u64],
) -> Result<PadResult, PadError> {
    let skel = ProgramSkeleton::new(program);
    group_pad_quantized_with(program, &skel, cache, quantum, base_pads)
}

/// [`group_pad_quantized`] against a prebuilt [`ProgramSkeleton`] — the
/// entry point for callers that run many searches over one program (the
/// multi-level recursion, sweep drivers, benchmarks), hoisting skeleton
/// construction out of the loop.
pub fn group_pad_quantized_with(
    program: &Program,
    skel: &ProgramSkeleton,
    cache: CacheConfig,
    quantum: u64,
    base_pads: &[u64],
) -> Result<PadResult, PadError> {
    if quantum == 0 || !(cache.size as u64).is_multiple_of(quantum) {
        return Err(PadError::BadQuantum {
            quantum,
            cache_size: cache.size,
        });
    }
    let n = program.arrays.len();
    if !base_pads.is_empty() && base_pads.len() != n {
        return Err(PadError::BaseLenMismatch {
            arrays: n,
            base_pads: base_pads.len(),
        });
    }
    let base = if base_pads.is_empty() {
        vec![0u64; n]
    } else {
        base_pads.to_vec()
    };
    let (pads, tried, scored) = if crate::search::fast_search_enabled() {
        crate::search::grouppad_search(skel, cache, quantum, base)
    } else {
        scalar_search(skel, cache, quantum, base)
    };
    Ok(PadResult {
        layout: DataLayout::with_pads(&program.arrays, &pads),
        pads,
        positions_tried: tried,
        positions_scored: scored,
    })
}

/// The exhaustive scalar scan: every candidate position, full recompute.
/// Kept verbatim as the `--no-fast-search` reference implementation and the
/// baseline of the `optimizer_throughput` benchmark.
fn scalar_search(
    skel: &ProgramSkeleton,
    cache: CacheConfig,
    quantum: u64,
    base: Vec<u64>,
) -> (Vec<u64>, u64, u64) {
    let n = skel.n_arrays();
    let mut pads = base.clone();
    let mut tried = 0u64;
    let candidates = cache.size as u64 / quantum;
    let sizes = skel.array_sizes();
    // bases(pads): cumulative layout arithmetic without allocating a layout.
    let compute_bases = |pads: &[u64], out: &mut Vec<u64>| {
        out.clear();
        let mut cursor = 0u64;
        for (sz, &p) in sizes.iter().zip(pads) {
            cursor += p;
            out.push(cursor);
            cursor += sz;
        }
    };
    let mut bases = Vec::with_capacity(n);

    // One variable's best position given a fixed set of visible arrays.
    let place =
        |pads: &mut Vec<u64>, k: usize, visible: &[bool], tried: &mut u64, bases: &mut Vec<u64>| {
            let mut best: Option<(usize, i64, u64)> = None;
            let mut best_pad = pads[k];
            for c in 0..candidates {
                let candidate = base[k] + c * quantum;
                pads[k] = candidate;
                compute_bases(pads, bases);
                *tried += 1;
                let conflicts = skel.severe(bases, cache, Some(visible));
                let exploited = skel.exploited(bases, cache, Some(visible)) as i64;
                let score = (conflicts, -exploited, candidate);
                if best.is_none_or(|b| score < b) {
                    best = Some(score);
                    best_pad = candidate;
                }
            }
            pads[k] = best_pad;
        };

    // Initial greedy placement in declaration order.
    let mut visible = vec![false; n];
    for k in 0..n {
        visible[k] = true;
        place(&mut pads, k, &visible, &mut tried, &mut bases);
    }
    // Refinement sweeps: re-place each variable with all others fixed
    // (coordinate ascent over the full objective). The first greedy pass is
    // myopic when the cache barely holds two columns; a couple of sweeps
    // recovers the layouts the paper's diagrams show.
    for _ in 0..2 {
        let before = pads.clone();
        for k in 0..n {
            place(&mut pads, k, &visible, &mut tried, &mut bases);
        }
        if pads == before {
            break;
        }
    }
    (pads, tried, tried)
}

/// Recursive multi-level GROUPPAD (Section 3.2.2): "GROUPPAD ... begins
/// targeting the L1 cache as already described, and then in later phases
/// recursively applies GROUPPAD to exploit group reuse for lower levels of
/// cache, using pads which are multiples of the previous cache size to
/// preserve group reuse at higher levels of cache."
///
/// Phase ℓ searches pad increments that are multiples of level ℓ−1's cache
/// size, so every already-fixed level's layout (base addresses modulo its
/// cache size) is untouched. Works for any hierarchy depth; errors with
/// [`PadError::BadQuantum`] on a hierarchy whose sizes do not nest.
///
/// The program skeleton is built once and shared across all levels.
pub fn group_pad_multi(
    program: &Program,
    hierarchy: &mlc_cache_sim::HierarchyConfig,
) -> Result<PadResult, PadError> {
    let skel = ProgramSkeleton::new(program);
    let l1 = hierarchy.l1();
    let mut result = group_pad_quantized_with(program, &skel, l1, l1.line as u64, &[])?;
    let mut tried = result.positions_tried;
    let mut scored = result.positions_scored;
    for level in 1..hierarchy.depth() {
        let quantum = hierarchy.levels[level - 1].size as u64;
        let r = group_pad_quantized_with(
            program,
            &skel,
            hierarchy.levels[level],
            quantum,
            &result.pads,
        )?;
        tried += r.positions_tried;
        scored += r.positions_scored;
        result = r;
    }
    result.positions_tried = tried;
    result.positions_scored = scored;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::severe_conflicts;
    use crate::group::{account, exploited_count, RefClass};
    use crate::search::FAST_SEARCH_TEST_LOCK;
    use mlc_cache_sim::CacheConfig;
    use mlc_model::program::figure2_example;
    use mlc_model::transform::fuse_in_program;

    /// Diagram-scale configuration: 1 KiB cache, 480-byte columns.
    fn small_l1() -> CacheConfig {
        CacheConfig::direct_mapped(1024, 32)
    }

    #[test]
    fn grouppad_beats_pad_on_group_reuse() {
        // Realistic ratio: 16 KiB cache, N=450 doubles -> 3600 B columns
        // (~4.5 columns of cache): room to preserve all five arcs.
        let l1 = CacheConfig::direct_mapped(16 * 1024, 32);
        let p = figure2_example(450);
        let g = group_pad(&p, l1);
        let plain = crate::pad::pad(&p, l1);
        let g_count = exploited_count(&p, &g.layout, l1, &[]);
        let p_count = exploited_count(&p, &plain.layout, l1, &[]);
        assert!(
            g_count >= p_count,
            "GROUPPAD ({g_count}) should exploit at least as much group reuse as PAD ({p_count})"
        );
        assert_eq!(
            g_count, 5,
            "all five arcs should be preserved at this ratio"
        );
    }

    #[test]
    fn grouppad_preserves_b_arcs_at_tight_ratio() {
        // The Figure 4 situation: cache ~2.1 columns (N=60 doubles on a
        // 1 KiB cache). Not everything fits; GROUPPAD salvages what it can.
        let p = figure2_example(60);
        let g = group_pad(&p, small_l1());
        let count = exploited_count(&p, &g.layout, small_l1(), &[]);
        assert!(count >= 2, "got {count}");
    }

    #[test]
    fn grouppad_avoids_severe_conflicts_when_possible() {
        let p = figure2_example(64); // 512-byte columns on the 1 KiB cache
        let g = group_pad(&p, small_l1());
        assert!(severe_conflicts(&p, &g.layout, small_l1()).is_empty());
    }

    #[test]
    fn grouppad_on_the_real_l1() {
        // N=512 on the 16 KiB UltraSparc L1: columns are 4 KiB; the cache
        // holds 4 columns, so not all of nest 1's three arcs (one column
        // each, plus slack) can be preserved, but B's can.
        let l1 = CacheConfig::direct_mapped(16 * 1024, 32);
        let p = figure2_example(512);
        let g = group_pad(&p, l1);
        assert!(severe_conflicts(&p, &g.layout, l1).is_empty());
        let acc = account(&p, &g.layout, l1, None);
        assert!(acc.l1_refs >= 3, "got {:?}", acc);
    }

    #[test]
    fn fused_program_loses_l1_group_reuse() {
        // The Section 4 tradeoff, with GROUPPAD searching for real: the
        // fused nest needs over four columns of cache ("a L1 cache size over
        // four times the column size would be required to exploit all group
        // reuse"), so at exactly four columns (N=512 on 16 KiB) fewer
        // references exploit group reuse after fusion.
        let l1 = CacheConfig::direct_mapped(16 * 1024, 32);
        let p = figure2_example(512);
        let fused = fuse_in_program(&p, 0).unwrap();
        let before = group_pad(&p, l1);
        let after = group_pad(&fused, l1);
        let n_before = exploited_count(&p, &before.layout, l1, &[]);
        let n_after = exploited_count(&fused, &after.layout, l1, &[]);
        assert!(
            n_after < n_before,
            "fusion should lose L1 group reuse here: {n_after} !< {n_before}"
        );
    }

    #[test]
    fn quantized_pads_respect_quantum() {
        let p = figure2_example(60);
        let r = group_pad_quantized(&p, CacheConfig::direct_mapped(8192, 64), 1024, &[]).unwrap();
        for &pad in &r.pads {
            assert_eq!(pad % 1024, 0);
        }
    }

    #[test]
    fn bad_quantum_is_a_named_error_not_a_panic() {
        let p = figure2_example(60);
        let cache = CacheConfig::direct_mapped(8192, 64);
        assert_eq!(
            group_pad_quantized(&p, cache, 0, &[]).unwrap_err(),
            PadError::BadQuantum {
                quantum: 0,
                cache_size: 8192
            }
        );
        // 3000 does not divide 8192.
        let err = group_pad_quantized(&p, cache, 3000, &[]).unwrap_err();
        assert!(err.to_string().contains("3000"), "{err}");
    }

    #[test]
    fn quantum_equal_to_cache_size_has_a_single_candidate() {
        // candidates = size/quantum = 1: the only position is the base pad
        // itself, for both engines, with one try per place call.
        let _g = FAST_SEARCH_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let p = figure2_example(60);
        let cache = CacheConfig::direct_mapped(1024, 32);
        for fast in [true, false] {
            crate::search::set_fast_search(fast);
            let r = group_pad_quantized(&p, cache, 1024, &[32, 64, 96]).unwrap();
            assert_eq!(r.pads, vec![32, 64, 96], "fast={fast}: pads must not move");
            // 3 greedy places + one no-change refinement sweep of 3.
            assert_eq!(r.positions_tried, 6, "fast={fast}");
            assert_eq!(r.positions_scored, 6, "fast={fast}: nothing to prune");
        }
        crate::search::set_fast_search(true);
    }

    #[test]
    fn base_pads_length_mismatch_is_a_named_error() {
        let p = figure2_example(60); // three arrays
        let err = group_pad_quantized(&p, small_l1(), 32, &[0, 0]).unwrap_err();
        assert_eq!(
            err,
            PadError::BaseLenMismatch {
                arrays: 3,
                base_pads: 2
            }
        );
    }

    #[test]
    fn base_pads_are_preserved_mod_quantum() {
        let p = figure2_example(60);
        let l1 = small_l1();
        let first = group_pad(&p, l1);
        // Second phase: search L2 positions in S1 steps on top of the L1 pads.
        let l2 = CacheConfig::direct_mapped(8192, 64);
        let second = group_pad_quantized(&p, l2, l1.size as u64, &first.pads).unwrap();
        for (a, b) in first.pads.iter().zip(&second.pads) {
            assert_eq!(
                a % l1.size as u64,
                b % l1.size as u64,
                "L1 residue must be preserved"
            );
            assert!(b >= a);
        }
        // L1 exploitation unchanged by the second phase.
        assert_eq!(
            exploited_count(&p, &first.layout, l1, &[]),
            exploited_count(&p, &second.layout, l1, &[])
        );
    }

    #[test]
    fn recursive_multilevel_grouppad_preserves_upper_levels() {
        use mlc_cache_sim::HierarchyConfig;
        let h = HierarchyConfig::alpha_21164_like(); // three levels
        let p = figure2_example(300);
        let single = group_pad(&p, h.l1());
        let multi = group_pad_multi(&p, &h).unwrap();
        // Every level-ℓ phase uses multiples of level ℓ−1's size, so the L1
        // residues of the final layout match the pure-L1 run.
        let s1 = h.l1().size as u64;
        for (a, b) in single.layout.bases.iter().zip(&multi.layout.bases) {
            assert_eq!(a % s1, b % s1);
        }
        assert_eq!(
            exploited_count(&p, &single.layout, h.l1(), &[]),
            exploited_count(&p, &multi.layout, h.l1(), &[])
        );
        // And the deeper levels get at least as much exploited reuse as the
        // L1-only layout leaves them by accident.
        for level in 1..h.depth() {
            let c = h.levels[level];
            assert!(
                exploited_count(&p, &multi.layout, c, &[])
                    >= exploited_count(&p, &single.layout, c, &[]),
                "level {level}"
            );
        }
    }

    #[test]
    fn two_level_recursive_matches_quantized_composition() {
        use mlc_cache_sim::HierarchyConfig;
        let h = HierarchyConfig::ultrasparc_i();
        let p = figure2_example(60);
        let multi = group_pad_multi(&p, &h).unwrap();
        let manual = {
            let g = group_pad(&p, h.l1());
            group_pad_quantized(&p, h.levels[1], h.l1().size as u64, &g.pads).unwrap()
        };
        assert_eq!(multi.pads, manual.pads);
    }

    #[test]
    fn accounting_classes_follow_grouppad() {
        let p = figure2_example(60);
        let g = group_pad(&p, small_l1());
        let acc = account(&p, &g.layout, small_l1(), None);
        // Every class is one of the single-level ones.
        for c in acc.per_nest.iter().flatten() {
            assert_ne!(*c, RefClass::L2);
        }
        assert_eq!(acc.l1_refs + acc.memory_refs + acc.register_refs, 10);
    }

    #[test]
    fn fast_and_scalar_search_agree_bitwise() {
        // The core parity property, at diagram scale and on the real L1,
        // single- and multi-level. (The full 24-kernel matrix lives in the
        // mlc-experiments search_parity suite.)
        let _g = FAST_SEARCH_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        use mlc_cache_sim::HierarchyConfig;
        for n in [60usize, 64, 300, 450] {
            let p = figure2_example(n);
            for cache in [small_l1(), CacheConfig::direct_mapped(16 * 1024, 32)] {
                crate::search::set_fast_search(true);
                let fast = group_pad(&p, cache);
                crate::search::set_fast_search(false);
                let scalar = group_pad(&p, cache);
                crate::search::set_fast_search(true);
                assert_eq!(fast.pads, scalar.pads, "N={n}, cache {cache:?}");
                assert_eq!(fast.layout.bases, scalar.layout.bases);
                assert_eq!(fast.positions_tried, scalar.positions_tried);
                assert!(fast.positions_scored <= fast.positions_tried);
                assert_eq!(scalar.positions_scored, scalar.positions_tried);
            }
            let h = HierarchyConfig::ultrasparc_i();
            crate::search::set_fast_search(true);
            let fast = group_pad_multi(&p, &h).unwrap();
            crate::search::set_fast_search(false);
            let scalar = group_pad_multi(&p, &h).unwrap();
            crate::search::set_fast_search(true);
            assert_eq!(fast.pads, scalar.pads, "multi-level, N={n}");
            assert_eq!(fast.positions_tried, scalar.positions_tried);
        }
    }
}
