//! Content-addressed, persistent memoization of simulation results.
//!
//! The paper's evaluation is a large cross-product — 24 kernels ×
//! optimization versions × hierarchies — and every cell bottoms out in the
//! same expensive call: simulate one (program, layout, hierarchy) triple.
//! Those triples recur constantly (across figure binaries, across sweep
//! shards, across reruns after unrelated code changes), so this module
//! gives them a durable identity and a disk-backed store:
//!
//! * [`CacheKey`] — a [`StableHasher`] digest over the canonical program
//!   IR, the data layout, the full hierarchy configuration (sizes, lines,
//!   associativity, replacement policy, miss penalties), the simulation
//!   protocol, and [`SIM_VERSION_SALT`]. Anything that can change a result
//!   perturbs the key; anything that cannot (the run-length fast path, the
//!   pruned search engine — both differentially proven identical) does not.
//! * [`ResultCache`] — one JSON file per entry under a cache directory,
//!   with a versioned header, a key echo, and an integrity checksum over
//!   the payload. Writes are atomic (`tmp` + rename), so a crashed or
//!   parallel sweep can never leave a half-written entry that a later run
//!   would trust: a truncated or bit-flipped file fails its checksum, is
//!   logged, counted, and treated as a miss — never a panic, never a wrong
//!   result.
//!
//! The salt is the invalidation lever: bump [`SIM_VERSION_SALT`] whenever
//! simulator semantics change and every stale entry silently becomes a
//! miss. See `docs/CACHING.md` for the full design.

use mlc_cache_sim::stable_hash::{StableHash, StableHasher};
use mlc_cache_sim::{HierarchyConfig, LevelStats, MissRateReport};
use mlc_model::{DataLayout, Program};
use mlc_telemetry::json::JsonValue;
use mlc_telemetry::MetricsRegistry;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// On-disk entry format version. Bump on any change to the entry JSON
/// shape; readers reject other versions (treated as a miss).
pub const FORMAT_VERSION: u64 = 1;

/// Simulator semantics version. Part of every [`CacheKey`]: bump whenever
/// the simulator (or trace generator, or anything between program and miss
/// counts) changes behavior, and all previously cached results become
/// unreachable without touching the store.
pub const SIM_VERSION_SALT: u64 = 1;

/// Which simulation protocol produced (or would produce) a result. The
/// steady-state and cold protocols visit different access streams, so they
/// are part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimProtocol {
    /// One cold sweep from an empty hierarchy.
    Cold,
    /// `warmup` unmeasured sweeps followed by `timed` measured sweeps.
    Steady {
        /// Warm-up sweeps (stats discarded).
        warmup: u64,
        /// Measured sweeps.
        timed: u64,
    },
}

impl StableHash for SimProtocol {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            SimProtocol::Cold => h.write_u8(0),
            SimProtocol::Steady { warmup, timed } => {
                h.write_u8(1);
                h.write_u64(*warmup);
                h.write_u64(*timed);
            }
        }
    }
}

/// The content address of one simulation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Derive the key for simulating `program` under `layout` on
    /// `hierarchy` with `protocol`, salted with [`SIM_VERSION_SALT`].
    pub fn derive(
        program: &Program,
        layout: &DataLayout,
        hierarchy: &HierarchyConfig,
        protocol: SimProtocol,
    ) -> Self {
        Self::derive_salted(program, layout, hierarchy, protocol, SIM_VERSION_SALT)
    }

    /// [`CacheKey::derive`] with an explicit salt (exposed so tests can
    /// demonstrate that the salt invalidates).
    pub fn derive_salted(
        program: &Program,
        layout: &DataLayout,
        hierarchy: &HierarchyConfig,
        protocol: SimProtocol,
        salt: u64,
    ) -> Self {
        let mut h = StableHasher::new();
        h.write_str("mlc.rescache.key");
        h.write_u64(salt);
        program.stable_hash(&mut h);
        layout.stable_hash(&mut h);
        hierarchy.stable_hash(&mut h);
        protocol.stable_hash(&mut h);
        Self(h.finish())
    }

    /// A key from an arbitrary pre-hashed digest — for payloads that are
    /// not plain simulation results (e.g. whole sweep cells), whose fields
    /// the caller absorbs into its own [`StableHasher`].
    pub fn from_digest(digest: u64) -> Self {
        Self(digest)
    }

    /// The raw 64-bit digest.
    pub fn digest(&self) -> u64 {
        self.0
    }

    /// The 16-hex-char rendering used as the entry file stem.
    pub fn to_hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse a [`CacheKey::to_hex`] rendering.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Self)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Monotonic counters describing one cache's traffic. All methods take
/// `&self`; the cache is shared freely across executor workers.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

/// A point-in-time snapshot of [`CacheCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that found no usable entry (includes corrupt and stale).
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries rejected by parsing, shape or checksum validation.
    pub corrupt: u64,
    /// Entries rejected for a format-version or key mismatch.
    pub stale: u64,
    /// Entries removed by [`ResultCache::prune_to`].
    pub evictions: u64,
    /// Of the hits, how many were served by the in-memory front without
    /// touching disk — a second looker coalescing onto a compute or read
    /// another thread already did (or is doing).
    pub coalesced: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Shards in the in-memory coalescing front. Power of two so the digest
/// masks cleanly; 16 keeps lock contention negligible at any realistic
/// worker count without much per-cache footprint.
const FRONT_SHARDS: usize = 16;

/// What the front remembers for one key. The two public `get_or_compute*`
/// APIs store different shapes; a key is only ever used through one of
/// them (content addressing), but a mismatch degrades to an uncoalesced
/// disk round-trip rather than a wrong answer.
#[derive(Debug)]
enum FrontSlot {
    /// A decoded [`MissRateReport`] (the `get_or_compute` API).
    Report(MissRateReport),
    /// A raw payload with its entry kind (the `get_or_compute_raw` API).
    Raw(String, JsonValue),
}

/// One key's rendezvous point: whoever gets here first computes (or reads
/// disk); everyone else blocks inside `OnceLock::get_or_init` and reuses
/// the result. Exactly one compute and one store per key per process.
type FrontCell = Arc<OnceLock<FrontSlot>>;

/// A persistent, content-addressed result store: one JSON file per entry,
/// fronted by a sharded in-memory index that coalesces concurrent work on
/// the same key (see [`ResultCache::get_or_compute`]).
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    counters: CacheCounters,
    front: Vec<Mutex<HashMap<u64, FrontCell>>>,
}

/// Why a stored entry was rejected (all cases degrade to a miss).
enum Reject {
    Corrupt(String),
    Stale(String),
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            counters: CacheCounters::default(),
            front: (0..FRONT_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        })
    }

    /// The front cell for `key` (created on first use). The shard lock is
    /// held only for the map access, never across a compute.
    fn front_cell(&self, key: CacheKey) -> FrontCell {
        let shard = (key.digest() as usize) & (FRONT_SHARDS - 1);
        let mut map = self.front[shard].lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key.digest()).or_default().clone()
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key` lives in.
    pub fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.to_hex()))
    }

    /// Look up a raw payload of the given `kind`. Returns `None` — and
    /// counts a miss — when the entry is absent, unreadable, corrupt,
    /// stale, of another kind, or fails its checksum. Never panics on file
    /// contents.
    pub fn lookup_raw(&self, key: CacheKey, kind: &str) -> Option<JsonValue> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                // Absent (the common case) or unreadable: a plain miss.
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match Self::decode_entry(&text, key, kind) {
            Ok(payload) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(Reject::Corrupt(why)) => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "rescache: corrupt entry {} ({why}); treating as a miss",
                    path.display()
                );
                None
            }
            Err(Reject::Stale(why)) => {
                self.counters.stale.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "rescache: stale entry {} ({why}); treating as a miss",
                    path.display()
                );
                None
            }
        }
    }

    /// Validate and unwrap one entry document.
    fn decode_entry(text: &str, key: CacheKey, kind: &str) -> Result<JsonValue, Reject> {
        let doc = JsonValue::parse(text).map_err(|e| Reject::Corrupt(e.to_string()))?;
        let format = doc.get("format").and_then(JsonValue::as_u64);
        if format != Some(FORMAT_VERSION) {
            return Err(Reject::Stale(format!(
                "format {format:?}, reader expects {FORMAT_VERSION}"
            )));
        }
        let echoed = doc.get("key").and_then(JsonValue::as_str);
        if echoed != Some(key.to_hex().as_str()) {
            return Err(Reject::Stale(format!(
                "key echo {echoed:?} does not match file name {key}"
            )));
        }
        let entry_kind = doc.get("kind").and_then(JsonValue::as_str);
        if entry_kind != Some(kind) {
            return Err(Reject::Stale(format!(
                "kind {entry_kind:?}, caller wants {kind:?}"
            )));
        }
        let payload = doc
            .get("payload")
            .ok_or_else(|| Reject::Corrupt("no payload member".into()))?;
        let declared = doc
            .get("checksum")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| Reject::Corrupt("no checksum member".into()))?;
        let actual = payload_checksum(payload);
        if declared != actual {
            return Err(Reject::Corrupt(format!(
                "checksum {declared} != recomputed {actual}"
            )));
        }
        Ok(payload.clone())
    }

    /// Store a raw payload under `key`, atomically: the entry is written
    /// to a temporary file in the same directory and renamed into place,
    /// so concurrent readers (and a crash at any point) see either the
    /// previous state or the complete new entry.
    pub fn store_raw(&self, key: CacheKey, kind: &str, payload: JsonValue) -> std::io::Result<()> {
        let checksum = payload_checksum(&payload);
        let doc = JsonValue::object(vec![
            ("format", JsonValue::from(FORMAT_VERSION)),
            ("key", JsonValue::from(key.to_hex())),
            ("kind", JsonValue::from(kind)),
            ("checksum", JsonValue::from(checksum)),
            ("payload", payload),
        ]);
        let final_path = self.entry_path(key);
        let tmp_path = self.dir.join(format!(
            "{}.tmp.{}.{:x}",
            key.to_hex(),
            std::process::id(),
            tmp_nonce()
        ));
        std::fs::write(&tmp_path, doc.pretty())?;
        match std::fs::rename(&tmp_path, &final_path) {
            Ok(()) => {
                self.counters.stores.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }

    /// Look up a cached [`MissRateReport`].
    pub fn lookup_report(&self, key: CacheKey) -> Option<MissRateReport> {
        let payload = self.lookup_raw(key, "miss_report")?;
        match report_from_json(&payload) {
            Ok(r) => Some(r),
            Err(why) => {
                // Checksummed payload with an invalid shape: a writer bug
                // or a truly unlucky corruption. Still never panic.
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "rescache: undecodable miss_report for {key} ({why}); treating as a miss"
                );
                None
            }
        }
    }

    /// Store a [`MissRateReport`] under `key`.
    pub fn store_report(&self, key: CacheKey, report: &MissRateReport) -> std::io::Result<()> {
        self.store_raw(key, "miss_report", report_to_json(report))
    }

    /// The memoization workhorse: return the cached report for `key`, or
    /// run `compute`, store its result, and return it. Store failures are
    /// logged and swallowed — a read-only cache directory degrades the
    /// cache to a pass-through, it never fails the simulation.
    ///
    /// Concurrent callers with the same `key` coalesce through the sharded
    /// in-memory front: exactly one of them computes (and writes the disk
    /// entry); the rest block until it finishes and share the result. The
    /// coalesced callers count as hits (and as `coalesced` in
    /// [`CacheStats`]) without touching disk.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> MissRateReport,
    ) -> MissRateReport {
        let cell = self.front_cell(key);
        let mut compute = Some(compute);
        let slot = cell.get_or_init(|| {
            let compute = compute.take().expect("initializer runs at most once");
            FrontSlot::Report(match self.lookup_report(key) {
                Some(hit) => hit,
                None => {
                    let report = compute();
                    if let Err(e) = self.store_report(key, &report) {
                        eprintln!("rescache: failed to store {key}: {e}");
                    }
                    report
                }
            })
        });
        match slot {
            FrontSlot::Report(report) => {
                if compute.is_some() {
                    // We did not initialize: another thread's work (past or
                    // in-flight) served us entirely from memory.
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                report.clone()
            }
            FrontSlot::Raw(kind, _) => {
                // The same digest was used through the raw API — possible
                // only for deliberately colliding keys. Fall back to an
                // uncoalesced disk round-trip; never a wrong answer.
                eprintln!(
                    "rescache: front holds a raw {kind:?} entry for {key}; bypassing the front"
                );
                let compute = compute.take().expect("raw slot means we lost no closure");
                match self.lookup_report(key) {
                    Some(hit) => hit,
                    None => {
                        let report = compute();
                        if let Err(e) = self.store_report(key, &report) {
                            eprintln!("rescache: failed to store {key}: {e}");
                        }
                        report
                    }
                }
            }
        }
    }

    /// [`ResultCache::get_or_compute`] for raw payloads of an arbitrary
    /// entry `kind`: coalesces concurrent callers of the same key onto one
    /// compute and one store, consults disk before computing, and logs
    /// (never propagates) store failures.
    pub fn get_or_compute_raw(
        &self,
        key: CacheKey,
        kind: &str,
        compute: impl FnOnce() -> JsonValue,
    ) -> JsonValue {
        let cell = self.front_cell(key);
        let mut compute = Some(compute);
        let slot = cell.get_or_init(|| {
            let compute = compute.take().expect("initializer runs at most once");
            FrontSlot::Raw(
                kind.to_string(),
                self.fetch_or_compute_raw(key, kind, compute),
            )
        });
        match slot {
            FrontSlot::Raw(cached_kind, payload) if cached_kind == kind => {
                if compute.is_some() {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                payload.clone()
            }
            other => {
                let held = match other {
                    FrontSlot::Report(_) => "a miss_report".to_string(),
                    FrontSlot::Raw(k, _) => format!("kind {k:?}"),
                };
                eprintln!(
                    "rescache: front holds {held} for {key}, caller wants {kind:?}; \
                     bypassing the front"
                );
                let compute = compute
                    .take()
                    .expect("mismatched slot means we lost no closure");
                self.fetch_or_compute_raw(key, kind, compute)
            }
        }
    }

    /// Uncoalesced lookup-then-compute-then-store, shared by the front's
    /// initializer and its mismatch fallback.
    fn fetch_or_compute_raw(
        &self,
        key: CacheKey,
        kind: &str,
        compute: impl FnOnce() -> JsonValue,
    ) -> JsonValue {
        match self.lookup_raw(key, kind) {
            Some(payload) => payload,
            None => {
                let payload = compute();
                if let Err(e) = self.store_raw(key, kind, payload.clone()) {
                    eprintln!("rescache: failed to store {key}: {e}");
                }
                payload
            }
        }
    }

    /// Evict oldest entries (by modification time) until at most
    /// `max_entries` remain. Returns how many were removed.
    ///
    /// Safe against concurrent stores: only real entry files (a 16-hex
    /// stem with a `.json` extension) count toward the cap — atomic-write
    /// `.tmp` staging files are never counted or deleted — and each victim
    /// is re-checked immediately before deletion, so an entry a writer
    /// just renamed into place (newer mtime than the enumeration saw) is
    /// left alone instead of being evicted as "oldest".
    pub fn prune_to(&self, max_entries: usize) -> std::io::Result<u64> {
        let mut entries: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        for e in std::fs::read_dir(&self.dir)? {
            let e = e?;
            let path = e.path();
            if !Self::is_entry_file(&path) {
                continue;
            }
            let mtime = e
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            entries.push((mtime, path));
        }
        if entries.len() <= max_entries {
            return Ok(0);
        }
        entries.sort();
        let mut evicted = 0u64;
        for (seen_mtime, path) in &entries[..entries.len() - max_entries] {
            // Tolerate a racing store_raw: if the file changed since we
            // enumerated it (tmp+rename landed a fresh result), skip it —
            // and a file already gone is simply not ours to count.
            match std::fs::metadata(path).and_then(|m| m.modified()) {
                Ok(now) if now == *seen_mtime => {
                    if std::fs::remove_file(path).is_ok() {
                        evicted += 1;
                    }
                }
                Ok(_) | Err(_) => {}
            }
        }
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        Ok(evicted)
    }

    /// Whether `path` names a real cache entry (`<16-hex>.json`), as
    /// opposed to a `.tmp` staging file or unrelated debris.
    fn is_entry_file(path: &Path) -> bool {
        path.extension().is_some_and(|x| x == "json")
            && path
                .file_stem()
                .and_then(|s| s.to_str())
                .is_some_and(|s| CacheKey::from_hex(s).is_some())
    }

    /// Snapshot the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Export the counters into a [`MetricsRegistry`] under `prefix`
    /// (e.g. `rescache.hits`).
    pub fn install_metrics(&self, metrics: &mut MetricsRegistry, prefix: &str) {
        let s = self.stats();
        metrics.count(&format!("{prefix}.hits"), s.hits);
        metrics.count(&format!("{prefix}.misses"), s.misses);
        metrics.count(&format!("{prefix}.stores"), s.stores);
        metrics.count(&format!("{prefix}.corrupt"), s.corrupt);
        metrics.count(&format!("{prefix}.stale"), s.stale);
        metrics.count(&format!("{prefix}.evictions"), s.evictions);
        metrics.count(&format!("{prefix}.coalesced"), s.coalesced);
        metrics.set_value(&format!("{prefix}.hit_rate"), s.hit_rate());
    }
}

/// A per-call nonce for temporary file names, so two threads storing the
/// same key from one process cannot collide on the tmp path.
fn tmp_nonce() -> u64 {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    NONCE.fetch_add(1, Ordering::Relaxed)
}

/// The checksum string written into (and verified against) each entry: a
/// [`StableHasher`] digest of the payload's compact serialization.
fn payload_checksum(payload: &JsonValue) -> String {
    let mut h = StableHasher::new();
    h.write_str("mlc.rescache.checksum");
    h.write_str(&payload.to_string_compact());
    format!("{:016x}", h.finish())
}

/// Serialize a report as integers only, so it round-trips bit-for-bit.
pub fn report_to_json(report: &MissRateReport) -> JsonValue {
    let levels = report
        .levels
        .iter()
        .map(|l| {
            JsonValue::object(vec![
                ("accesses", JsonValue::from(l.accesses())),
                ("misses", JsonValue::from(l.misses())),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("total_references", JsonValue::from(report.total_references)),
        ("levels", JsonValue::Array(levels)),
    ])
}

/// Parse [`report_to_json`] output, validating shape and count sanity.
pub fn report_from_json(v: &JsonValue) -> Result<MissRateReport, String> {
    let total = v
        .get("total_references")
        .and_then(JsonValue::as_u64)
        .ok_or("total_references missing or not a count")?;
    let levels = v
        .get("levels")
        .and_then(JsonValue::as_array)
        .ok_or("levels missing or not an array")?;
    let mut parsed = Vec::with_capacity(levels.len());
    for (i, l) in levels.iter().enumerate() {
        let accesses = l
            .get("accesses")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("level {i}: accesses missing or not a count"))?;
        let misses = l
            .get("misses")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("level {i}: misses missing or not a count"))?;
        if misses > accesses {
            return Err(format!("level {i}: {misses} misses > {accesses} accesses"));
        }
        parsed.push(LevelStats::from_counts(accesses, misses));
    }
    Ok(MissRateReport::from_levels(parsed).normalized_to(total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache_sim::ReplacementPolicy;
    use mlc_model::program::figure2_example;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlc-rescache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report() -> MissRateReport {
        MissRateReport::from_levels(vec![
            LevelStats::from_counts(1000, 100),
            LevelStats::from_counts(100, 20),
        ])
    }

    fn sample_key() -> CacheKey {
        let p = figure2_example(64);
        let l = DataLayout::contiguous(&p.arrays);
        let h = HierarchyConfig::ultrasparc_i();
        CacheKey::derive(&p, &l, &h, SimProtocol::Cold)
    }

    #[test]
    fn key_hex_round_trips() {
        let k = sample_key();
        assert_eq!(CacheKey::from_hex(&k.to_hex()), Some(k));
        assert_eq!(CacheKey::from_hex("nope"), None);
        assert_eq!(CacheKey::from_hex(""), None);
    }

    #[test]
    fn key_depends_on_every_input() {
        let p = figure2_example(64);
        let l = DataLayout::contiguous(&p.arrays);
        let h = HierarchyConfig::ultrasparc_i();
        let base = CacheKey::derive(&p, &l, &h, SimProtocol::Cold);

        let mut pads = vec![0u64; p.arrays.len()];
        pads[0] = 32;
        let l2 = DataLayout::with_pads(&p.arrays, &pads);
        assert_ne!(base, CacheKey::derive(&p, &l2, &h, SimProtocol::Cold));

        let mut h2 = h.clone();
        h2.levels[0].replacement = ReplacementPolicy::Fifo;
        assert_ne!(base, CacheKey::derive(&p, &l, &h2, SimProtocol::Cold));

        assert_ne!(
            base,
            CacheKey::derive(
                &p,
                &l,
                &h,
                SimProtocol::Steady {
                    warmup: 1,
                    timed: 1
                }
            )
        );
        assert_ne!(
            base,
            CacheKey::derive_salted(&p, &l, &h, SimProtocol::Cold, SIM_VERSION_SALT + 1)
        );
    }

    #[test]
    fn store_then_lookup_is_bitwise_identical() {
        let cache = ResultCache::open(tmp_dir("roundtrip")).unwrap();
        let key = sample_key();
        let report = sample_report();
        assert_eq!(cache.lookup_report(key), None);
        cache.store_report(key, &report).unwrap();
        assert_eq!(cache.lookup_report(key), Some(report));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn get_or_compute_memoizes() {
        let cache = ResultCache::open(tmp_dir("memo")).unwrap();
        let key = sample_key();
        let mut calls = 0;
        let a = cache.get_or_compute(key, || {
            calls += 1;
            sample_report()
        });
        let b = cache.get_or_compute(key, || {
            calls += 1;
            panic!("second call must be served from disk")
        });
        assert_eq!(a, b);
        assert_eq!(calls, 1);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn truncated_entry_is_a_logged_miss_not_a_panic() {
        let cache = ResultCache::open(tmp_dir("truncate")).unwrap();
        let key = sample_key();
        cache.store_report(key, &sample_report()).unwrap();
        let path = cache.entry_path(key);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.lookup_report(key), None);
        assert_eq!(cache.stats().corrupt, 1);
        // The cache recovers: a fresh store over the corpse works.
        cache.store_report(key, &sample_report()).unwrap();
        assert_eq!(cache.lookup_report(key), Some(sample_report()));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn bit_flipped_payload_fails_the_checksum() {
        let cache = ResultCache::open(tmp_dir("bitflip")).unwrap();
        let key = sample_key();
        cache.store_report(key, &sample_report()).unwrap();
        let path = cache.entry_path(key);
        // Flip one digit inside the payload (the miss count 100 -> 900),
        // leaving the JSON perfectly well-formed.
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replacen("\"misses\": 100", "\"misses\": 900", 1);
        assert_ne!(text, flipped, "fixture must actually change the payload");
        std::fs::write(&path, flipped).unwrap();
        assert_eq!(cache.lookup_report(key), None);
        assert_eq!(cache.stats().corrupt, 1);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn key_mismatch_and_format_mismatch_are_stale() {
        let cache = ResultCache::open(tmp_dir("stale")).unwrap();
        let key = sample_key();
        let other = CacheKey::from_digest(key.digest() ^ 1);
        cache.store_report(other, &sample_report()).unwrap();
        // Copy the other entry over this key's file: key echo mismatch.
        std::fs::copy(cache.entry_path(other), cache.entry_path(key)).unwrap();
        assert_eq!(cache.lookup_report(key), None);
        assert_eq!(cache.stats().stale, 1);
        // Format-version bump: rewrite with an alien version.
        let text = std::fs::read_to_string(cache.entry_path(other)).unwrap();
        std::fs::write(
            cache.entry_path(other),
            text.replacen("\"format\": 1", "\"format\": 999", 1),
        )
        .unwrap();
        assert_eq!(cache.lookup_report(other), None);
        assert_eq!(cache.stats().stale, 2);
        assert_eq!(cache.stats().corrupt, 0);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn prune_evicts_down_to_cap() {
        let cache = ResultCache::open(tmp_dir("prune")).unwrap();
        for i in 0..5u64 {
            cache
                .store_report(CacheKey::from_digest(i), &sample_report())
                .unwrap();
        }
        let evicted = cache.prune_to(2).unwrap();
        assert_eq!(evicted, 3);
        assert_eq!(cache.stats().evictions, 3);
        let left = std::fs::read_dir(cache.dir()).unwrap().count();
        assert_eq!(left, 2);
        assert_eq!(cache.prune_to(2).unwrap(), 0);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn report_json_rejects_nonsense() {
        assert!(report_from_json(&JsonValue::Null).is_err());
        assert!(report_from_json(&JsonValue::object(vec![(
            "total_references",
            JsonValue::from(1u64)
        )]))
        .is_err());
        let bad = JsonValue::parse(
            r#"{"total_references": 10, "levels": [{"accesses": 5, "misses": 9}]}"#,
        )
        .unwrap();
        assert!(report_from_json(&bad).is_err(), "misses > accesses");
    }

    #[test]
    fn metrics_export_installs_counters() {
        let cache = ResultCache::open(tmp_dir("metrics")).unwrap();
        let key = sample_key();
        cache.store_report(key, &sample_report()).unwrap();
        cache.lookup_report(key);
        let mut m = MetricsRegistry::new();
        cache.install_metrics(&mut m, "rescache");
        assert_eq!(m.counter("rescache.hits"), 1);
        assert_eq!(m.counter("rescache.stores"), 1);
        assert_eq!(m.counter("rescache.coalesced"), 0);
        assert_eq!(m.value("rescache.hit_rate"), Some(1.0));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn racing_get_or_compute_coalesces_to_one_compute_and_store() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Barrier;

        let cache = ResultCache::open(tmp_dir("race")).unwrap();
        let key = sample_key();
        let computes = AtomicU64::new(0);
        const N: usize = 8;
        let barrier = Barrier::new(N);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    barrier.wait();
                    let r = cache.get_or_compute(key, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        // Hold the slot long enough that the other threads
                        // genuinely pile up on the in-flight computation.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        sample_report()
                    });
                    assert_eq!(r, sample_report());
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1, "exactly one compute");
        let s = cache.stats();
        assert_eq!(s.stores, 1, "exactly one disk write");
        assert_eq!(s.misses, 1, "only the winner touched disk");
        assert_eq!(s.coalesced, N as u64 - 1, "everyone else was coalesced");
        assert_eq!(
            s.hits,
            N as u64 - 1,
            "coalesced callers still count as hits"
        );
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn racing_get_or_compute_raw_coalesces() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Barrier;

        let cache = ResultCache::open(tmp_dir("race-raw")).unwrap();
        let key = CacheKey::from_digest(0xfeed);
        let computes = AtomicU64::new(0);
        const N: usize = 6;
        let barrier = Barrier::new(N);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    barrier.wait();
                    let v = cache.get_or_compute_raw(key, "sweep_cell", || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        JsonValue::from(42u64)
                    });
                    assert_eq!(v, JsonValue::from(42u64));
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!((s.stores, s.coalesced), (1, N as u64 - 1));
        // A kind mismatch on the same key must not serve the cached raw
        // payload; it degrades to an uncoalesced compute.
        let v = cache.get_or_compute_raw(key, "other_kind", || JsonValue::from(7u64));
        assert_eq!(v, JsonValue::from(7u64));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn prune_ignores_tmp_files_and_foreign_debris() {
        let cache = ResultCache::open(tmp_dir("prune-tmp")).unwrap();
        for i in 0..3u64 {
            cache
                .store_report(CacheKey::from_digest(i), &sample_report())
                .unwrap();
        }
        // Stray atomic-write leftovers and unrelated files must neither
        // count toward the cap nor be eligible for eviction.
        let tmp = cache.dir().join("00000000000000aa.tmp.123.4");
        std::fs::write(&tmp, "half-written").unwrap();
        let notes = cache.dir().join("README.json");
        std::fs::write(&notes, "{}").unwrap();
        assert_eq!(cache.prune_to(3).unwrap(), 0, "3 real entries fit the cap");
        assert!(tmp.exists());
        assert!(notes.exists());
        assert_eq!(cache.prune_to(1).unwrap(), 2);
        assert!(tmp.exists(), "tmp file survives eviction");
        assert!(notes.exists(), "non-entry json survives eviction");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn prune_races_concurrent_stores_without_losing_fresh_entries() {
        use std::sync::atomic::AtomicBool;

        let cache = ResultCache::open(tmp_dir("prune-race")).unwrap();
        for i in 0..16u64 {
            cache
                .store_report(CacheKey::from_digest(i), &sample_report())
                .unwrap();
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            // Writers keep landing fresh entries (some overwriting existing
            // keys, some new) while the pruner repeatedly evicts.
            for t in 0..3u64 {
                let (cache, stop) = (&cache, &stop);
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = CacheKey::from_digest(t * 1000 + (i % 24));
                        cache
                            .store_raw(key, "stress", JsonValue::from(i))
                            .expect("stores must survive concurrent prunes");
                        i += 1;
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..50 {
                    cache.prune_to(8).expect("prune must not error mid-race");
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        // Whatever survived must be wholly readable: no half-deleted or
        // tmp-counted debris classified as an entry. (Writers may land a
        // few more entries between the last prune and the stop flag, so we
        // assert integrity, not an exact population.)
        for e in std::fs::read_dir(cache.dir()).unwrap() {
            let path = e.unwrap().path();
            if ResultCache::is_entry_file(&path) {
                let stem = path.file_stem().unwrap().to_str().unwrap();
                let key = CacheKey::from_hex(stem).unwrap();
                let _ = cache.lookup_raw(key, "stress");
            }
        }
        let s = cache.stats();
        assert!(
            s.evictions > 0,
            "the pruner actually ran against the writers"
        );
        assert_eq!(s.corrupt, 0, "no entry was torn by the race");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }
}
