//! Content-addressed, persistent memoization of simulation results.
//!
//! The paper's evaluation is a large cross-product — 24 kernels ×
//! optimization versions × hierarchies — and every cell bottoms out in the
//! same expensive call: simulate one (program, layout, hierarchy) triple.
//! Those triples recur constantly (across figure binaries, across sweep
//! shards, across reruns after unrelated code changes), so this module
//! gives them a durable identity and a disk-backed store:
//!
//! * [`CacheKey`] — a [`StableHasher`] digest over the canonical program
//!   IR, the data layout, the full hierarchy configuration (sizes, lines,
//!   associativity, replacement policy, miss penalties), the simulation
//!   protocol, and [`SIM_VERSION_SALT`]. Anything that can change a result
//!   perturbs the key; anything that cannot (the run-length fast path, the
//!   pruned search engine — both differentially proven identical) does not.
//! * [`ResultCache`] — one JSON file per entry under a cache directory,
//!   with a versioned header, a key echo, and an integrity checksum over
//!   the payload. Writes are atomic (`tmp` + rename), so a crashed or
//!   parallel sweep can never leave a half-written entry that a later run
//!   would trust: a truncated or bit-flipped file fails its checksum, is
//!   logged, counted, and treated as a miss — never a panic, never a wrong
//!   result.
//!
//! The salt is the invalidation lever: bump [`SIM_VERSION_SALT`] whenever
//! simulator semantics change and every stale entry silently becomes a
//! miss. See `docs/CACHING.md` for the full design.

use mlc_cache_sim::stable_hash::{StableHash, StableHasher};
use mlc_cache_sim::{HierarchyConfig, LevelStats, MissRateReport};
use mlc_model::{DataLayout, Program};
use mlc_telemetry::json::JsonValue;
use mlc_telemetry::MetricsRegistry;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk entry format version. Bump on any change to the entry JSON
/// shape; readers reject other versions (treated as a miss).
pub const FORMAT_VERSION: u64 = 1;

/// Simulator semantics version. Part of every [`CacheKey`]: bump whenever
/// the simulator (or trace generator, or anything between program and miss
/// counts) changes behavior, and all previously cached results become
/// unreachable without touching the store.
pub const SIM_VERSION_SALT: u64 = 1;

/// Which simulation protocol produced (or would produce) a result. The
/// steady-state and cold protocols visit different access streams, so they
/// are part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimProtocol {
    /// One cold sweep from an empty hierarchy.
    Cold,
    /// `warmup` unmeasured sweeps followed by `timed` measured sweeps.
    Steady {
        /// Warm-up sweeps (stats discarded).
        warmup: u64,
        /// Measured sweeps.
        timed: u64,
    },
}

impl StableHash for SimProtocol {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            SimProtocol::Cold => h.write_u8(0),
            SimProtocol::Steady { warmup, timed } => {
                h.write_u8(1);
                h.write_u64(*warmup);
                h.write_u64(*timed);
            }
        }
    }
}

/// The content address of one simulation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Derive the key for simulating `program` under `layout` on
    /// `hierarchy` with `protocol`, salted with [`SIM_VERSION_SALT`].
    pub fn derive(
        program: &Program,
        layout: &DataLayout,
        hierarchy: &HierarchyConfig,
        protocol: SimProtocol,
    ) -> Self {
        Self::derive_salted(program, layout, hierarchy, protocol, SIM_VERSION_SALT)
    }

    /// [`CacheKey::derive`] with an explicit salt (exposed so tests can
    /// demonstrate that the salt invalidates).
    pub fn derive_salted(
        program: &Program,
        layout: &DataLayout,
        hierarchy: &HierarchyConfig,
        protocol: SimProtocol,
        salt: u64,
    ) -> Self {
        let mut h = StableHasher::new();
        h.write_str("mlc.rescache.key");
        h.write_u64(salt);
        program.stable_hash(&mut h);
        layout.stable_hash(&mut h);
        hierarchy.stable_hash(&mut h);
        protocol.stable_hash(&mut h);
        Self(h.finish())
    }

    /// A key from an arbitrary pre-hashed digest — for payloads that are
    /// not plain simulation results (e.g. whole sweep cells), whose fields
    /// the caller absorbs into its own [`StableHasher`].
    pub fn from_digest(digest: u64) -> Self {
        Self(digest)
    }

    /// The raw 64-bit digest.
    pub fn digest(&self) -> u64 {
        self.0
    }

    /// The 16-hex-char rendering used as the entry file stem.
    pub fn to_hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse a [`CacheKey::to_hex`] rendering.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Self)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Monotonic counters describing one cache's traffic. All methods take
/// `&self`; the cache is shared freely across `par_map` workers.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time snapshot of [`CacheCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that found no usable entry (includes corrupt and stale).
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries rejected by parsing, shape or checksum validation.
    pub corrupt: u64,
    /// Entries rejected for a format-version or key mismatch.
    pub stale: u64,
    /// Entries removed by [`ResultCache::prune_to`].
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A persistent, content-addressed result store: one JSON file per entry.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    counters: CacheCounters,
}

/// Why a stored entry was rejected (all cases degrade to a miss).
enum Reject {
    Corrupt(String),
    Stale(String),
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            counters: CacheCounters::default(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key` lives in.
    pub fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.to_hex()))
    }

    /// Look up a raw payload of the given `kind`. Returns `None` — and
    /// counts a miss — when the entry is absent, unreadable, corrupt,
    /// stale, of another kind, or fails its checksum. Never panics on file
    /// contents.
    pub fn lookup_raw(&self, key: CacheKey, kind: &str) -> Option<JsonValue> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                // Absent (the common case) or unreadable: a plain miss.
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match Self::decode_entry(&text, key, kind) {
            Ok(payload) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(Reject::Corrupt(why)) => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "rescache: corrupt entry {} ({why}); treating as a miss",
                    path.display()
                );
                None
            }
            Err(Reject::Stale(why)) => {
                self.counters.stale.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "rescache: stale entry {} ({why}); treating as a miss",
                    path.display()
                );
                None
            }
        }
    }

    /// Validate and unwrap one entry document.
    fn decode_entry(text: &str, key: CacheKey, kind: &str) -> Result<JsonValue, Reject> {
        let doc = JsonValue::parse(text).map_err(|e| Reject::Corrupt(e.to_string()))?;
        let format = doc.get("format").and_then(JsonValue::as_u64);
        if format != Some(FORMAT_VERSION) {
            return Err(Reject::Stale(format!(
                "format {format:?}, reader expects {FORMAT_VERSION}"
            )));
        }
        let echoed = doc.get("key").and_then(JsonValue::as_str);
        if echoed != Some(key.to_hex().as_str()) {
            return Err(Reject::Stale(format!(
                "key echo {echoed:?} does not match file name {key}"
            )));
        }
        let entry_kind = doc.get("kind").and_then(JsonValue::as_str);
        if entry_kind != Some(kind) {
            return Err(Reject::Stale(format!(
                "kind {entry_kind:?}, caller wants {kind:?}"
            )));
        }
        let payload = doc
            .get("payload")
            .ok_or_else(|| Reject::Corrupt("no payload member".into()))?;
        let declared = doc
            .get("checksum")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| Reject::Corrupt("no checksum member".into()))?;
        let actual = payload_checksum(payload);
        if declared != actual {
            return Err(Reject::Corrupt(format!(
                "checksum {declared} != recomputed {actual}"
            )));
        }
        Ok(payload.clone())
    }

    /// Store a raw payload under `key`, atomically: the entry is written
    /// to a temporary file in the same directory and renamed into place,
    /// so concurrent readers (and a crash at any point) see either the
    /// previous state or the complete new entry.
    pub fn store_raw(&self, key: CacheKey, kind: &str, payload: JsonValue) -> std::io::Result<()> {
        let checksum = payload_checksum(&payload);
        let doc = JsonValue::object(vec![
            ("format", JsonValue::from(FORMAT_VERSION)),
            ("key", JsonValue::from(key.to_hex())),
            ("kind", JsonValue::from(kind)),
            ("checksum", JsonValue::from(checksum)),
            ("payload", payload),
        ]);
        let final_path = self.entry_path(key);
        let tmp_path = self.dir.join(format!(
            "{}.tmp.{}.{:x}",
            key.to_hex(),
            std::process::id(),
            tmp_nonce()
        ));
        std::fs::write(&tmp_path, doc.pretty())?;
        match std::fs::rename(&tmp_path, &final_path) {
            Ok(()) => {
                self.counters.stores.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }

    /// Look up a cached [`MissRateReport`].
    pub fn lookup_report(&self, key: CacheKey) -> Option<MissRateReport> {
        let payload = self.lookup_raw(key, "miss_report")?;
        match report_from_json(&payload) {
            Ok(r) => Some(r),
            Err(why) => {
                // Checksummed payload with an invalid shape: a writer bug
                // or a truly unlucky corruption. Still never panic.
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "rescache: undecodable miss_report for {key} ({why}); treating as a miss"
                );
                None
            }
        }
    }

    /// Store a [`MissRateReport`] under `key`.
    pub fn store_report(&self, key: CacheKey, report: &MissRateReport) -> std::io::Result<()> {
        self.store_raw(key, "miss_report", report_to_json(report))
    }

    /// The memoization workhorse: return the cached report for `key`, or
    /// run `compute`, store its result, and return it. Store failures are
    /// logged and swallowed — a read-only cache directory degrades the
    /// cache to a pass-through, it never fails the simulation.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> MissRateReport,
    ) -> MissRateReport {
        if let Some(hit) = self.lookup_report(key) {
            return hit;
        }
        let report = compute();
        if let Err(e) = self.store_report(key, &report) {
            eprintln!("rescache: failed to store {key}: {e}");
        }
        report
    }

    /// Evict oldest entries (by modification time) until at most
    /// `max_entries` remain. Returns how many were removed.
    pub fn prune_to(&self, max_entries: usize) -> std::io::Result<u64> {
        let mut entries: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        for e in std::fs::read_dir(&self.dir)? {
            let e = e?;
            let path = e.path();
            if path.extension().is_some_and(|x| x == "json") {
                let mtime = e
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                entries.push((mtime, path));
            }
        }
        if entries.len() <= max_entries {
            return Ok(0);
        }
        entries.sort();
        let mut evicted = 0u64;
        for (_, path) in &entries[..entries.len() - max_entries] {
            if std::fs::remove_file(path).is_ok() {
                evicted += 1;
            }
        }
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        Ok(evicted)
    }

    /// Snapshot the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Export the counters into a [`MetricsRegistry`] under `prefix`
    /// (e.g. `rescache.hits`).
    pub fn install_metrics(&self, metrics: &mut MetricsRegistry, prefix: &str) {
        let s = self.stats();
        metrics.count(&format!("{prefix}.hits"), s.hits);
        metrics.count(&format!("{prefix}.misses"), s.misses);
        metrics.count(&format!("{prefix}.stores"), s.stores);
        metrics.count(&format!("{prefix}.corrupt"), s.corrupt);
        metrics.count(&format!("{prefix}.stale"), s.stale);
        metrics.count(&format!("{prefix}.evictions"), s.evictions);
        metrics.set_value(&format!("{prefix}.hit_rate"), s.hit_rate());
    }
}

/// A per-call nonce for temporary file names, so two threads storing the
/// same key from one process cannot collide on the tmp path.
fn tmp_nonce() -> u64 {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    NONCE.fetch_add(1, Ordering::Relaxed)
}

/// The checksum string written into (and verified against) each entry: a
/// [`StableHasher`] digest of the payload's compact serialization.
fn payload_checksum(payload: &JsonValue) -> String {
    let mut h = StableHasher::new();
    h.write_str("mlc.rescache.checksum");
    h.write_str(&payload.to_string_compact());
    format!("{:016x}", h.finish())
}

/// Serialize a report as integers only, so it round-trips bit-for-bit.
pub fn report_to_json(report: &MissRateReport) -> JsonValue {
    let levels = report
        .levels
        .iter()
        .map(|l| {
            JsonValue::object(vec![
                ("accesses", JsonValue::from(l.accesses())),
                ("misses", JsonValue::from(l.misses())),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("total_references", JsonValue::from(report.total_references)),
        ("levels", JsonValue::Array(levels)),
    ])
}

/// Parse [`report_to_json`] output, validating shape and count sanity.
pub fn report_from_json(v: &JsonValue) -> Result<MissRateReport, String> {
    let total = v
        .get("total_references")
        .and_then(JsonValue::as_u64)
        .ok_or("total_references missing or not a count")?;
    let levels = v
        .get("levels")
        .and_then(JsonValue::as_array)
        .ok_or("levels missing or not an array")?;
    let mut parsed = Vec::with_capacity(levels.len());
    for (i, l) in levels.iter().enumerate() {
        let accesses = l
            .get("accesses")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("level {i}: accesses missing or not a count"))?;
        let misses = l
            .get("misses")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("level {i}: misses missing or not a count"))?;
        if misses > accesses {
            return Err(format!("level {i}: {misses} misses > {accesses} accesses"));
        }
        parsed.push(LevelStats::from_counts(accesses, misses));
    }
    Ok(MissRateReport::from_levels(parsed).normalized_to(total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache_sim::ReplacementPolicy;
    use mlc_model::program::figure2_example;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlc-rescache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report() -> MissRateReport {
        MissRateReport::from_levels(vec![
            LevelStats::from_counts(1000, 100),
            LevelStats::from_counts(100, 20),
        ])
    }

    fn sample_key() -> CacheKey {
        let p = figure2_example(64);
        let l = DataLayout::contiguous(&p.arrays);
        let h = HierarchyConfig::ultrasparc_i();
        CacheKey::derive(&p, &l, &h, SimProtocol::Cold)
    }

    #[test]
    fn key_hex_round_trips() {
        let k = sample_key();
        assert_eq!(CacheKey::from_hex(&k.to_hex()), Some(k));
        assert_eq!(CacheKey::from_hex("nope"), None);
        assert_eq!(CacheKey::from_hex(""), None);
    }

    #[test]
    fn key_depends_on_every_input() {
        let p = figure2_example(64);
        let l = DataLayout::contiguous(&p.arrays);
        let h = HierarchyConfig::ultrasparc_i();
        let base = CacheKey::derive(&p, &l, &h, SimProtocol::Cold);

        let mut pads = vec![0u64; p.arrays.len()];
        pads[0] = 32;
        let l2 = DataLayout::with_pads(&p.arrays, &pads);
        assert_ne!(base, CacheKey::derive(&p, &l2, &h, SimProtocol::Cold));

        let mut h2 = h.clone();
        h2.levels[0].replacement = ReplacementPolicy::Fifo;
        assert_ne!(base, CacheKey::derive(&p, &l, &h2, SimProtocol::Cold));

        assert_ne!(
            base,
            CacheKey::derive(
                &p,
                &l,
                &h,
                SimProtocol::Steady {
                    warmup: 1,
                    timed: 1
                }
            )
        );
        assert_ne!(
            base,
            CacheKey::derive_salted(&p, &l, &h, SimProtocol::Cold, SIM_VERSION_SALT + 1)
        );
    }

    #[test]
    fn store_then_lookup_is_bitwise_identical() {
        let cache = ResultCache::open(tmp_dir("roundtrip")).unwrap();
        let key = sample_key();
        let report = sample_report();
        assert_eq!(cache.lookup_report(key), None);
        cache.store_report(key, &report).unwrap();
        assert_eq!(cache.lookup_report(key), Some(report));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn get_or_compute_memoizes() {
        let cache = ResultCache::open(tmp_dir("memo")).unwrap();
        let key = sample_key();
        let mut calls = 0;
        let a = cache.get_or_compute(key, || {
            calls += 1;
            sample_report()
        });
        let b = cache.get_or_compute(key, || {
            calls += 1;
            panic!("second call must be served from disk")
        });
        assert_eq!(a, b);
        assert_eq!(calls, 1);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn truncated_entry_is_a_logged_miss_not_a_panic() {
        let cache = ResultCache::open(tmp_dir("truncate")).unwrap();
        let key = sample_key();
        cache.store_report(key, &sample_report()).unwrap();
        let path = cache.entry_path(key);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.lookup_report(key), None);
        assert_eq!(cache.stats().corrupt, 1);
        // The cache recovers: a fresh store over the corpse works.
        cache.store_report(key, &sample_report()).unwrap();
        assert_eq!(cache.lookup_report(key), Some(sample_report()));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn bit_flipped_payload_fails_the_checksum() {
        let cache = ResultCache::open(tmp_dir("bitflip")).unwrap();
        let key = sample_key();
        cache.store_report(key, &sample_report()).unwrap();
        let path = cache.entry_path(key);
        // Flip one digit inside the payload (the miss count 100 -> 900),
        // leaving the JSON perfectly well-formed.
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replacen("\"misses\": 100", "\"misses\": 900", 1);
        assert_ne!(text, flipped, "fixture must actually change the payload");
        std::fs::write(&path, flipped).unwrap();
        assert_eq!(cache.lookup_report(key), None);
        assert_eq!(cache.stats().corrupt, 1);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn key_mismatch_and_format_mismatch_are_stale() {
        let cache = ResultCache::open(tmp_dir("stale")).unwrap();
        let key = sample_key();
        let other = CacheKey::from_digest(key.digest() ^ 1);
        cache.store_report(other, &sample_report()).unwrap();
        // Copy the other entry over this key's file: key echo mismatch.
        std::fs::copy(cache.entry_path(other), cache.entry_path(key)).unwrap();
        assert_eq!(cache.lookup_report(key), None);
        assert_eq!(cache.stats().stale, 1);
        // Format-version bump: rewrite with an alien version.
        let text = std::fs::read_to_string(cache.entry_path(other)).unwrap();
        std::fs::write(
            cache.entry_path(other),
            text.replacen("\"format\": 1", "\"format\": 999", 1),
        )
        .unwrap();
        assert_eq!(cache.lookup_report(other), None);
        assert_eq!(cache.stats().stale, 2);
        assert_eq!(cache.stats().corrupt, 0);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn prune_evicts_down_to_cap() {
        let cache = ResultCache::open(tmp_dir("prune")).unwrap();
        for i in 0..5u64 {
            cache
                .store_report(CacheKey::from_digest(i), &sample_report())
                .unwrap();
        }
        let evicted = cache.prune_to(2).unwrap();
        assert_eq!(evicted, 3);
        assert_eq!(cache.stats().evictions, 3);
        let left = std::fs::read_dir(cache.dir()).unwrap().count();
        assert_eq!(left, 2);
        assert_eq!(cache.prune_to(2).unwrap(), 0);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn report_json_rejects_nonsense() {
        assert!(report_from_json(&JsonValue::Null).is_err());
        assert!(report_from_json(&JsonValue::object(vec![(
            "total_references",
            JsonValue::from(1u64)
        )]))
        .is_err());
        let bad = JsonValue::parse(
            r#"{"total_references": 10, "levels": [{"accesses": 5, "misses": 9}]}"#,
        )
        .unwrap();
        assert!(report_from_json(&bad).is_err(), "misses > accesses");
    }

    #[test]
    fn metrics_export_installs_counters() {
        let cache = ResultCache::open(tmp_dir("metrics")).unwrap();
        let key = sample_key();
        cache.store_report(key, &sample_report()).unwrap();
        cache.lookup_report(key);
        let mut m = MetricsRegistry::new();
        cache.install_metrics(&mut m, "rescache");
        assert_eq!(m.counter("rescache.hits"), 1);
        assert_eq!(m.counter("rescache.stores"), 1);
        assert_eq!(m.value("rescache.hit_rate"), Some(1.0));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }
}
