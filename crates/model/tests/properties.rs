//! Randomized tests for the program model: transformations preserve the
//! access multiset, layouts are consistent, and the affine machinery is
//! closed under the operations the optimizer performs. Driven by the
//! in-tree deterministic PRNG; seeds appear in assertion messages.

use mlc_cache_sim::rng::DetRng;
use mlc_cache_sim::trace::RecordingSink;
use mlc_model::prelude::*;
use mlc_model::transform::{fuse_in_program, permute, reverse, strip_mine, tile};
use mlc_model::{trace_gen, AffineExpr as E};

const CASES: u64 = 64;

/// A random 2-D stencil program: one or two nests over up to three arrays,
/// with small constant-offset subscripts (always in bounds).
fn stencil_program(rng: &mut DetRng) -> Program {
    let n = rng.range_usize(4, 24);
    let n_arrays = rng.range_usize(1, 4);
    let body1_len = rng.range_usize(1, 6);
    let body2_len = rng.range_usize(0, 5);
    let mut p = Program::new("prop");
    for a in 0..n_arrays {
        p.add_array(ArrayDecl::f64(format!("A{a}"), vec![n, n]));
    }
    let mk_body = |rng: &mut DetRng, len: usize| {
        (0..len)
            .map(|_| {
                let a = rng.range_usize(0, 3) % n_arrays;
                let di = rng.range_i64(-1, 2);
                let dj = rng.range_i64(-1, 2);
                let subs = vec![E::var_plus("i", di), E::var_plus("j", dj)];
                if rng.bool() {
                    ArrayRef::write(a, subs)
                } else {
                    ArrayRef::read(a, subs)
                }
            })
            .collect::<Vec<_>>()
    };
    let loops = || {
        vec![
            Loop::counted("j", 1, n as i64 - 2),
            Loop::counted("i", 1, n as i64 - 2),
        ]
    };
    let body1 = mk_body(rng, body1_len);
    p.add_nest(LoopNest::new("n1", loops(), body1));
    if body2_len > 0 {
        let body2 = mk_body(rng, body2_len);
        p.add_nest(LoopNest::new("n2", loops(), body2));
    }
    p
}

fn address_multiset(p: &Program, layout: &DataLayout) -> Vec<u64> {
    let mut rec = RecordingSink::default();
    trace_gen::generate(p, layout, &mut rec);
    let mut v: Vec<u64> = rec.accesses.iter().map(|a| a.addr).collect();
    v.sort_unstable();
    v
}

/// Legal permutation never changes which addresses are touched.
#[test]
fn permutation_preserves_multiset() {
    for seed in 0..CASES {
        let p = stencil_program(&mut DetRng::new(seed));
        let layout = DataLayout::contiguous(&p.arrays);
        let before = address_multiset(&p, &layout);
        if let Ok(permuted) = permute(&p.nests[0], &[1, 0]) {
            let mut q = p.clone();
            q.nests[0] = permuted;
            assert_eq!(before, address_multiset(&q, &layout), "seed {seed}");
        }
    }
}

/// Legal fusion never changes which addresses are touched.
#[test]
fn fusion_preserves_multiset() {
    for seed in 0..CASES {
        let p = stencil_program(&mut DetRng::new(seed));
        if p.nests.len() < 2 {
            continue;
        }
        let layout = DataLayout::contiguous(&p.arrays);
        let before = address_multiset(&p, &layout);
        if let Ok(fused) = fuse_in_program(&p, 0) {
            assert_eq!(before, address_multiset(&fused, &layout), "seed {seed}");
        }
    }
}

/// Strip-mining (any tile size) never changes the trace at all — not just
/// the multiset: iteration order is preserved.
#[test]
fn strip_mine_preserves_exact_trace() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let p = stencil_program(&mut rng);
        let t = rng.range_u64(1, 9);
        let level = rng.range_usize(0, 2);
        let layout = DataLayout::contiguous(&p.arrays);
        let mut before = RecordingSink::default();
        trace_gen::generate_nest(&p, &p.nests[0], &layout, &mut before);
        let sm = strip_mine(&p.nests[0], level, t, "TT").unwrap();
        let mut after = RecordingSink::default();
        trace_gen::generate_nest(&p, &sm, &layout, &mut after);
        assert_eq!(
            before.accesses, after.accesses,
            "seed {seed} t={t} level={level}"
        );
    }
}

/// Tiling preserves the access multiset.
#[test]
fn tiling_preserves_multiset() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let p = stencil_program(&mut rng);
        let th = rng.range_u64(1, 7);
        let tw = rng.range_u64(1, 7);
        let layout = DataLayout::contiguous(&p.arrays);
        let before = address_multiset(&p, &layout);
        if let Ok(tiled) = tile(&p.nests[0], &[(0, tw), (1, th)]) {
            let mut q = p.clone();
            q.nests[0] = tiled;
            assert_eq!(before, address_multiset(&q, &layout), "seed {seed}");
        }
    }
}

/// Reversal preserves the multiset whenever it is legal.
#[test]
fn reversal_preserves_multiset() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let p = stencil_program(&mut rng);
        let level = rng.range_usize(0, 2);
        let layout = DataLayout::contiguous(&p.arrays);
        let before = address_multiset(&p, &layout);
        if let Ok(rev) = reverse(&p.nests[0], level) {
            let mut q = p.clone();
            q.nests[0] = rev;
            assert_eq!(before, address_multiset(&q, &layout), "seed {seed}");
        }
    }
}

/// Padding shifts addresses but never changes the per-array access
/// pattern: subtracting each array's base yields identical multisets.
#[test]
fn padding_shifts_but_preserves_pattern() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let p = stencil_program(&mut rng);
        let pads: Vec<u64> = p.arrays.iter().map(|_| rng.range_u64(0, 64) * 8).collect();
        let contiguous = DataLayout::contiguous(&p.arrays);
        let padded = DataLayout::with_pads(&p.arrays, &pads);
        // Trace both and normalize each access by its array's base. Since
        // arrays are disjoint, the owning array is recoverable by range.
        let norm = |layout: &DataLayout| {
            let mut rec = RecordingSink::default();
            trace_gen::generate(&p, layout, &mut rec);
            let mut v: Vec<(usize, u64)> = rec
                .accesses
                .iter()
                .map(|a| {
                    let owner = (0..p.arrays.len())
                        .rev()
                        .find(|&k| a.addr >= layout.bases[k])
                        .unwrap();
                    (owner, a.addr - layout.bases[owner])
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&contiguous), norm(&padded), "seed {seed}");
    }
}

/// The trace generator and the constant-iteration formula agree.
#[test]
fn trace_length_matches_const_count() {
    for seed in 0..CASES {
        let p = stencil_program(&mut DetRng::new(seed));
        let layout = DataLayout::contiguous(&p.arrays);
        let mut c = mlc_cache_sim::trace::CountingSink::default();
        let n = trace_gen::generate(&p, &layout, &mut c);
        assert_eq!(n, c.total, "seed {seed}");
        if let Some(expect) = p.const_references() {
            assert_eq!(n, expect, "seed {seed}");
        }
    }
}

/// Affine expression algebra: substitution respects evaluation.
#[test]
fn substitution_respects_eval() {
    let mut rng = DetRng::new(0xA1F1);
    for case in 0..500 {
        let a = rng.range_i64(-5, 5);
        let b = rng.range_i64(-5, 5);
        let c = rng.range_i64(-5, 5);
        let x = rng.range_i64(-10, 10);
        let y = rng.range_i64(-10, 10);
        // e = a*i + c, substitute i -> b*j + 1, evaluate at j = y.
        let e = E::scaled("i", a).plus(c);
        let sub = E::scaled("j", b).plus(1);
        let e2 = e.substitute("i", &sub);
        let env = |v: &str| match v {
            "j" => Some(y),
            "i" => Some(x),
            _ => None,
        };
        assert_eq!(e2.eval(env).unwrap(), a * (b * y + 1) + c, "case {case}");
    }
}
