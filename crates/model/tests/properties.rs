//! Property tests for the program model: transformations preserve the
//! access multiset, layouts are consistent, and the affine machinery is
//! closed under the operations the optimizer performs.

use mlc_cache_sim::trace::RecordingSink;
use mlc_model::prelude::*;
use mlc_model::transform::{fuse_in_program, permute, reverse, strip_mine, tile};
use mlc_model::{trace_gen, AffineExpr as E};
use proptest::prelude::*;

/// A random 2-D stencil program: one or two nests over up to three arrays,
/// with small constant-offset subscripts (always in bounds).
fn stencil_program() -> impl Strategy<Value = Program> {
    (
        4usize..24,                                     // n
        1usize..=3,                                     // arrays
        prop::collection::vec((0usize..3, -1i64..=1, -1i64..=1, prop::bool::ANY), 1..6),
        prop::collection::vec((0usize..3, -1i64..=1, -1i64..=1, prop::bool::ANY), 0..5),
    )
        .prop_map(|(n, n_arrays, body1, body2)| {
            let mut p = Program::new("prop");
            for a in 0..n_arrays {
                p.add_array(ArrayDecl::f64(format!("A{a}"), vec![n, n]));
            }
            let mk_body = |spec: &[(usize, i64, i64, bool)]| {
                spec.iter()
                    .map(|&(a, di, dj, w)| {
                        let subs = vec![E::var_plus("i", di), E::var_plus("j", dj)];
                        let a = a % n_arrays;
                        if w {
                            ArrayRef::write(a, subs)
                        } else {
                            ArrayRef::read(a, subs)
                        }
                    })
                    .collect::<Vec<_>>()
            };
            let loops =
                || vec![Loop::counted("j", 1, n as i64 - 2), Loop::counted("i", 1, n as i64 - 2)];
            p.add_nest(LoopNest::new("n1", loops(), mk_body(&body1)));
            if !body2.is_empty() {
                p.add_nest(LoopNest::new("n2", loops(), mk_body(&body2)));
            }
            p
        })
}

fn address_multiset(p: &Program, layout: &DataLayout) -> Vec<u64> {
    let mut rec = RecordingSink::default();
    trace_gen::generate(p, layout, &mut rec);
    let mut v: Vec<u64> = rec.accesses.iter().map(|a| a.addr).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Legal permutation never changes which addresses are touched.
    #[test]
    fn permutation_preserves_multiset(p in stencil_program()) {
        let layout = DataLayout::contiguous(&p.arrays);
        let before = address_multiset(&p, &layout);
        if let Ok(permuted) = permute(&p.nests[0], &[1, 0]) {
            let mut q = p.clone();
            q.nests[0] = permuted;
            prop_assert_eq!(before, address_multiset(&q, &layout));
        }
    }

    /// Legal fusion never changes which addresses are touched.
    #[test]
    fn fusion_preserves_multiset(p in stencil_program()) {
        if p.nests.len() < 2 {
            return Ok(());
        }
        let layout = DataLayout::contiguous(&p.arrays);
        let before = address_multiset(&p, &layout);
        if let Ok(fused) = fuse_in_program(&p, 0) {
            prop_assert_eq!(before, address_multiset(&fused, &layout));
        }
    }

    /// Strip-mining (any tile size) never changes the trace at all — not
    /// just the multiset: iteration order is preserved.
    #[test]
    fn strip_mine_preserves_exact_trace(p in stencil_program(), t in 1u64..9, level in 0usize..2) {
        let layout = DataLayout::contiguous(&p.arrays);
        let mut before = RecordingSink::default();
        trace_gen::generate_nest(&p, &p.nests[0], &layout, &mut before);
        let sm = strip_mine(&p.nests[0], level, t, "TT").unwrap();
        let mut after = RecordingSink::default();
        trace_gen::generate_nest(&p, &sm, &layout, &mut after);
        prop_assert_eq!(before.accesses, after.accesses);
    }

    /// Tiling preserves the access multiset.
    #[test]
    fn tiling_preserves_multiset(p in stencil_program(), th in 1u64..7, tw in 1u64..7) {
        let layout = DataLayout::contiguous(&p.arrays);
        let before = address_multiset(&p, &layout);
        if let Ok(tiled) = tile(&p.nests[0], &[(0, tw), (1, th)]) {
            let mut q = p.clone();
            q.nests[0] = tiled;
            prop_assert_eq!(before, address_multiset(&q, &layout));
        }
    }

    /// Reversal preserves the multiset whenever it is legal.
    #[test]
    fn reversal_preserves_multiset(p in stencil_program(), level in 0usize..2) {
        let layout = DataLayout::contiguous(&p.arrays);
        let before = address_multiset(&p, &layout);
        if let Ok(rev) = reverse(&p.nests[0], level) {
            let mut q = p.clone();
            q.nests[0] = rev;
            prop_assert_eq!(before, address_multiset(&q, &layout));
        }
    }

    /// Padding shifts addresses but never changes the per-array access
    /// pattern: subtracting each array's base yields identical multisets.
    #[test]
    fn padding_shifts_but_preserves_pattern(
        p in stencil_program(),
        pads in prop::collection::vec(0u64..64, 3),
    ) {
        let pads: Vec<u64> = p.arrays.iter().enumerate().map(|(i, _)| pads[i % pads.len()] * 8).collect();
        let contiguous = DataLayout::contiguous(&p.arrays);
        let padded = DataLayout::with_pads(&p.arrays, &pads);
        // Trace both and normalize each access by its array's base. Since
        // arrays are disjoint, the owning array is recoverable by range.
        let norm = |layout: &DataLayout| {
            let mut rec = RecordingSink::default();
            trace_gen::generate(&p, layout, &mut rec);
            let mut v: Vec<(usize, u64)> = rec
                .accesses
                .iter()
                .map(|a| {
                    let owner = (0..p.arrays.len())
                        .rev()
                        .find(|&k| a.addr >= layout.bases[k])
                        .unwrap();
                    (owner, a.addr - layout.bases[owner])
                })
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(norm(&contiguous), norm(&padded));
    }

    /// The trace generator and the constant-iteration formula agree.
    #[test]
    fn trace_length_matches_const_count(p in stencil_program()) {
        let layout = DataLayout::contiguous(&p.arrays);
        let mut c = mlc_cache_sim::trace::CountingSink::default();
        let n = trace_gen::generate(&p, &layout, &mut c);
        prop_assert_eq!(n, c.total);
        if let Some(expect) = p.const_references() {
            prop_assert_eq!(n, expect);
        }
    }

    /// Affine expression algebra: substitution respects evaluation.
    #[test]
    fn substitution_respects_eval(a in -5i64..5, b in -5i64..5, c in -5i64..5, x in -10i64..10, y in -10i64..10) {
        // e = a*i + c, substitute i -> b*j + 1, evaluate at j = y.
        let e = E::scaled("i", a).plus(c);
        let sub = E::scaled("j", b).plus(1);
        let e2 = e.substitute("i", &sub);
        let env = |v: &str| match v { "j" => Some(y), "i" => Some(x), _ => None };
        prop_assert_eq!(e2.eval(env).unwrap(), a * (b * y + 1) + c);
    }
}
