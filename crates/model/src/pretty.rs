//! Fortran-flavoured pretty-printing of programs.
//!
//! The paper presents all its examples as Fortran fragments (Figures 1, 2,
//! 6, 8); this module renders our IR back into that shape so reports,
//! diagrams and the CLI can show the code a transformation produced.

use crate::expr::AffineExpr;
use crate::nest::{Loop, LoopNest};
use crate::program::Program;
use std::fmt::Write as _;

/// Render a bound list: `max(a, b)` / `min(a, b)` / bare expression.
fn bounds(list: &[AffineExpr], combiner: &str) -> String {
    if list.len() == 1 {
        // 0-based internal bounds print as-is; readers add 1 mentally if
        // they want Fortran's 1-based flavor.
        format!("{}", list[0])
    } else {
        let parts: Vec<String> = list.iter().map(|e| e.to_string()).collect();
        format!("{combiner}({})", parts.join(", "))
    }
}

/// Render one loop header.
fn loop_header(l: &Loop) -> String {
    let lo = bounds(&l.lowers, "max");
    let hi = bounds(&l.uppers, "min");
    if l.step == 1 {
        format!("do {} = {lo}, {hi}", l.var)
    } else {
        format!("do {} = {lo}, {hi}, {}", l.var, l.step)
    }
}

/// Render a nest as indented Fortran-style text.
pub fn render_nest(program: &Program, nest: &LoopNest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "! nest {}", nest.name);
    for (depth, l) in nest.loops.iter().enumerate() {
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), loop_header(l));
    }
    let pad = "  ".repeat(nest.depth());
    for r in &nest.body {
        let subs: Vec<String> = r.subscripts.iter().map(|s| s.to_string()).collect();
        let name = &program.arrays[r.array].name;
        let access = format!("{name}({})", subs.join(", "));
        if r.is_write() {
            let _ = writeln!(out, "{pad}{access} = ...");
        } else {
            let _ = writeln!(out, "{pad}... = {access}");
        }
    }
    for depth in (0..nest.depth()).rev() {
        let _ = writeln!(out, "{}end do", "  ".repeat(depth));
    }
    out
}

/// Render a whole program: declarations then nests.
pub fn render_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "! program {}", program.name);
    for a in &program.arrays {
        let dims: Vec<String> = (0..a.rank())
            .map(|d| {
                if a.dim_pad[d] > 0 {
                    format!("{}+{}", a.dims[d], a.dim_pad[d])
                } else {
                    format!("{}", a.dims[d])
                }
            })
            .collect();
        let _ = writeln!(out, "real*{} {}({})", a.elem_size, a.name, dims.join(", "));
    }
    for nest in &program.nests {
        out.push('\n');
        out.push_str(&render_nest(program, nest));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::figure2_example;
    use crate::transform::strip_mine;

    #[test]
    fn figure2_renders_like_the_paper() {
        let p = figure2_example(512);
        let s = render_program(&p);
        assert!(s.contains("real*8 A(512, 512)"));
        assert!(s.contains("do j = 1, 510"));
        assert!(s.contains("do i = 0, 511"));
        assert!(s.contains("... = A(i, j + 1)"));
        assert!(s.contains("end do"));
        // Two nests, each with two loops: four `do` and four `end do`.
        assert_eq!(s.matches("do j").count(), 2);
        assert_eq!(s.matches("end do").count(), 4);
    }

    #[test]
    fn min_max_bounds_render() {
        let p = figure2_example(100);
        let sm = strip_mine(&p.nests[0], 1, 32, "ii").unwrap();
        let s = render_nest(&p, &sm);
        assert!(s.contains("do i = ii, min(ii + 31, 99)"), "{s}");
        assert!(s.contains("do ii = 0, 99, 32"), "{s}");
    }

    #[test]
    fn intra_pad_shows_in_declaration() {
        let mut p = figure2_example(64);
        p.arrays[0].set_dim_pad(0, 4);
        let s = render_program(&p);
        assert!(s.contains("A(64+4, 64)"), "{s}");
    }

    #[test]
    fn writes_and_reads_distinguished() {
        let p = figure2_example(16);
        let s = render_nest(&p, &p.nests[0]);
        assert!(s.contains("... = A(i, j)"));
        assert!(!s.contains("A(i, j) = ...")); // figure 2 is all reads
    }
}
