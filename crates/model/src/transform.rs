//! Loop transformations.
//!
//! Each transformation produces a new nest (or program); legality is checked
//! via [`crate::dependence`] where semantics could change. The property
//! tests assert that every transformation preserves the multiset of
//! addresses a nest touches — the paper's premise that these
//! transformations change *order*, not *work*.

use crate::dependence::{fusion_legal, permutation_legal};
use crate::expr::AffineExpr;
use crate::nest::{Loop, LoopNest};
use crate::program::Program;

/// Reorder a nest's loops: new position `k` holds old loop `perm[k]`.
///
/// Fails if `perm` is not a permutation, a bound would reference a variable
/// that no longer encloses it (triangular nests need skewing first), or a
/// dependence would be reversed.
pub fn permute(nest: &LoopNest, perm: &[usize]) -> Result<LoopNest, String> {
    let depth = nest.depth();
    if perm.len() != depth {
        return Err(format!(
            "permutation length {} != depth {depth}",
            perm.len()
        ));
    }
    let mut seen = vec![false; depth];
    for &k in perm {
        if k >= depth || seen[k] {
            return Err(format!("{perm:?} is not a permutation"));
        }
        seen[k] = true;
    }
    // Bounds may only reference variables of loops outer to them post-permute.
    for (new_pos, &old) in perm.iter().enumerate() {
        let outer_vars: Vec<&str> = perm[..new_pos]
            .iter()
            .map(|&o| nest.loops[o].var.as_str())
            .collect();
        for e in nest.loops[old].lowers.iter().chain(&nest.loops[old].uppers) {
            for v in e.vars() {
                if !outer_vars.contains(&v) {
                    return Err(format!(
                        "bound of loop {} references {v}, which would not enclose it",
                        nest.loops[old].var
                    ));
                }
            }
        }
    }
    permutation_legal(nest, perm)?;
    Ok(LoopNest {
        name: nest.name.clone(),
        loops: perm.iter().map(|&k| nest.loops[k].clone()).collect(),
        body: nest.body.clone(),
    })
}

/// Reverse the direction of loop `level` (unimodular loop reversal).
///
/// Only valid when the loop carries no dependence; the caller's dependence
/// obligations are checked via [`crate::dependence::carried_distances`].
pub fn reverse(nest: &LoopNest, level: usize) -> Result<LoopNest, String> {
    let dists = crate::dependence::carried_distances(nest)?;
    for d in &dists {
        // Reversal negates component `level`; the vector must stay lex-positive.
        let mut flipped = d.clone();
        flipped[level] = -flipped[level];
        if crate::dependence::lex_sign(&flipped) < 0 {
            return Err(format!("reversing loop {level} breaks dependence {d:?}"));
        }
    }
    let mut out = nest.clone();
    out.loops[level].step = -out.loops[level].step;
    Ok(out)
}

/// Fuse two nests with identical headers into one (`first`'s body first),
/// checking legality. This is the transformation of the paper's Figure 6.
pub fn fuse(first: &LoopNest, second: &LoopNest) -> Result<LoopNest, String> {
    fusion_legal(first, second)?;
    let mut body = first.body.clone();
    body.extend(second.body.iter().cloned());
    Ok(LoopNest {
        name: format!("{}+{}", first.name, second.name),
        loops: first.loops.clone(),
        body,
    })
}

/// Fuse two nests *without* the dependence legality check (headers must
/// still match). The paper's Figure 12 fuses two EXPL loops whose
/// semantics-preserving form needs shift-and-peel alignment (Manjikian &
/// Abdelrahman, cited in the paper); the straight fusion used for cache
/// analysis touches the same addresses in the same per-iteration order, so
/// the miss-rate and reuse accounting are unaffected by the missing peel.
/// Use only for cache studies, never to transform code that will execute.
pub fn fuse_unchecked(first: &LoopNest, second: &LoopNest) -> Result<LoopNest, String> {
    if first.loops != second.loops {
        return Err("fuse_unchecked requires identical loop headers".into());
    }
    let mut body = first.body.clone();
    body.extend(second.body.iter().cloned());
    Ok(LoopNest {
        name: format!("{}+{}", first.name, second.name),
        loops: first.loops.clone(),
        body,
    })
}

/// [`fuse_unchecked`] applied within a program at nests `at`, `at+1`.
pub fn fuse_unchecked_in_program(program: &Program, at: usize) -> Result<Program, String> {
    if at + 1 >= program.nests.len() {
        return Err(format!("no nest after index {at}"));
    }
    let fused = fuse_unchecked(&program.nests[at], &program.nests[at + 1])?;
    let mut p = program.clone();
    p.nests[at] = fused;
    p.nests.remove(at + 1);
    Ok(p)
}

/// Fuse adjacent nests `at` and `at+1` of a program.
pub fn fuse_in_program(program: &Program, at: usize) -> Result<Program, String> {
    if at + 1 >= program.nests.len() {
        return Err(format!("no nest after index {at}"));
    }
    let fused = fuse(&program.nests[at], &program.nests[at + 1])?;
    let mut p = program.clone();
    p.nests[at] = fused;
    p.nests.remove(at + 1);
    Ok(p)
}

/// Skew loop `inner` by `factor` times loop `outer` (unimodular loop
/// skewing, Section 2.1's third loop-nest transformation): the new inner
/// variable is `v' = v + factor·u`, so bounds gain `+factor·u` and every
/// subscript substitutes `v → v' − factor·u`. Always legal (it is a
/// bijective renumbering of the same iteration space executed in the same
/// order), and it makes wavefront permutations/tilings legal afterwards.
pub fn skew(nest: &LoopNest, outer: usize, inner: usize, factor: i64) -> Result<LoopNest, String> {
    if outer >= inner || inner >= nest.depth() {
        return Err(format!(
            "skew needs outer < inner < depth, got {outer}, {inner}"
        ));
    }
    if factor == 0 {
        return Ok(nest.clone());
    }
    if nest.loops[inner].step != 1 {
        return Err("skewing requires a unit-step inner loop".into());
    }
    let u = nest.loops[outer].var.clone();
    let v = nest.loops[inner].var.clone();
    let fu = AffineExpr::scaled(u.clone(), factor);
    let mut out = nest.clone();
    // Bounds: v' ranges over v + factor*u.
    for e in &mut out.loops[inner].lowers {
        *e = e.add(&fu);
    }
    for e in &mut out.loops[inner].uppers {
        *e = e.add(&fu);
    }
    // Body (and any deeper bound) uses v = v' - factor*u.
    let replacement = AffineExpr::var(v.clone()).sub(&fu);
    for l in &mut out.loops[inner + 1..] {
        for e in l.lowers.iter_mut().chain(l.uppers.iter_mut()) {
            *e = e.substitute(&v, &replacement);
        }
    }
    for r in &mut out.body {
        *r = r.map_subscripts(|s| s.substitute(&v, &replacement));
    }
    Ok(out)
}

/// Transpose an array's dimensions (Section 2.2's data layout
/// transformation, Figure 1's example): permute the declaration's dims (and
/// intra-pads) by `perm` and rewrite every reference's subscripts in every
/// nest to match, so the program touches the same logical elements at
/// transposed addresses.
///
/// `perm[k]` = which old dimension becomes new dimension `k`; for the 2-D
/// `transpose A(N,M) -> A(M,N)` case, `perm = [1, 0]`.
pub fn transpose_array(program: &Program, array: usize, perm: &[usize]) -> Result<Program, String> {
    let rank = program.arrays[array].rank();
    if perm.len() != rank {
        return Err(format!("permutation length {} != rank {rank}", perm.len()));
    }
    let mut seen = vec![false; rank];
    for &k in perm {
        if k >= rank || seen[k] {
            return Err(format!("{perm:?} is not a permutation of 0..{rank}"));
        }
        seen[k] = true;
    }
    let mut p = program.clone();
    let old = p.arrays[array].clone();
    for (k, &src) in perm.iter().enumerate() {
        p.arrays[array].dims[k] = old.dims[src];
        p.arrays[array].dim_pad[k] = old.dim_pad[src];
    }
    for nest in &mut p.nests {
        for r in &mut nest.body {
            if r.array == array {
                let old_subs = r.subscripts.clone();
                for k in 0..rank {
                    r.subscripts[k] = old_subs[perm[k]].clone();
                }
            }
        }
    }
    Ok(p)
}

/// Strip-mine loop `level` with the given tile size: the loop
/// `for v in lo..=hi` becomes
///
/// ```text
/// for vv in lo..=hi step tile
///   for v in vv ..= min(vv + tile - 1, hi)
/// ```
///
/// exactly the shape of the paper's Figure 8. The controlling loop takes
/// the name `outer_var`. Requires a unit-step loop; always legal.
pub fn strip_mine(
    nest: &LoopNest,
    level: usize,
    tile: u64,
    outer_var: &str,
) -> Result<LoopNest, String> {
    if tile == 0 {
        return Err("tile size must be positive".into());
    }
    let target = &nest.loops[level];
    if target.step != 1 {
        return Err(format!(
            "strip-mining requires unit step, loop {} has {}",
            target.var, target.step
        ));
    }
    if nest.loops.iter().any(|l| l.var == outer_var) {
        return Err(format!("variable {outer_var} already used in nest"));
    }
    let mut controlling = Loop {
        var: outer_var.to_string(),
        lowers: target.lowers.clone(),
        uppers: target.uppers.clone(),
        step: tile as i64,
    };
    // Bounds of the controlling loop must not reference the tiled variable
    // itself; they don't, by nest validity (bounds reference outer vars only).
    let mut inner = Loop {
        var: target.var.clone(),
        lowers: vec![AffineExpr::var(outer_var)],
        uppers: {
            let mut u = vec![AffineExpr::var_plus(outer_var, tile as i64 - 1)];
            u.extend(target.uppers.iter().cloned());
            u
        },
        step: 1,
    };
    // Keep bound lists tidy: the controlling loop inherits the original
    // bounds untouched; the element loop starts at the tile base.
    controlling.lowers.dedup();
    inner.uppers.dedup();

    let mut loops = nest.loops.clone();
    loops[level] = inner;
    loops.insert(level, controlling);
    Ok(LoopNest {
        name: nest.name.clone(),
        loops,
        body: nest.body.clone(),
    })
}

/// Tile a nest: strip-mine each `(level, tile)` in `spec` and hoist all the
/// controlling loops to the front (in `spec` order), as classical tiling
/// does. Levels refer to the *original* nest and must be distinct.
///
/// For the paper's Figure 8 (`do KK / do II / do J / do K / do I`), call
/// with `spec = [(k_level, W), (i_level, H)]` on the `J-K-I` matmul nest.
pub fn tile(nest: &LoopNest, spec: &[(usize, u64)]) -> Result<LoopNest, String> {
    let mut levels: Vec<usize> = spec.iter().map(|&(l, _)| l).collect();
    levels.sort_unstable();
    levels.dedup();
    if levels.len() != spec.len() {
        return Err("tile levels must be distinct".into());
    }
    // Strip-mine from innermost-listed to outermost so indices stay valid.
    let mut order: Vec<usize> = (0..spec.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(spec[k].0));
    let mut current = nest.clone();
    // Track where each controlling loop lands as we insert.
    let mut control_names: Vec<(usize, String)> = Vec::new(); // (spec idx, var)
    for &k in &order {
        let (level, t) = spec[k];
        let var = format!("{}{}", nest.loops[level].var, nest.loops[level].var); // ii, jj, kk...
        current = strip_mine(&current, adjusted_level(level, spec, &order, k), t, &var)?;
        control_names.push((k, var));
    }
    // Build permutation: controlling loops first in spec order, then the
    // rest in current order.
    let controls_in_spec_order: Vec<String> = (0..spec.len())
        .map(|k| {
            control_names
                .iter()
                .find(|(s, _)| *s == k)
                .unwrap()
                .1
                .clone()
        })
        .collect();
    let mut perm: Vec<usize> = Vec::with_capacity(current.depth());
    for name in &controls_in_spec_order {
        perm.push(current.loop_index(name).unwrap());
    }
    for (i, l) in current.loops.iter().enumerate() {
        if !controls_in_spec_order.contains(&l.var) {
            perm.push(i);
        }
    }
    // The controlling loops' bounds reference nothing (they inherit the
    // original outer-bound expressions), but the element loops reference
    // their controllers, so use a relaxed reorder that skips the bound check
    // for controller variables (they all move outward, which is safe).
    permute_unchecked_bounds(&current, &perm, &controls_in_spec_order)
}

/// Cache-oblivious recursive tiling (the PCOT baseline): repeatedly bisect
/// the largest dimension of a constant-bound iteration space until every
/// extent is at most `leaf`, and materialize the recursion as an ordered
/// sequence of constant-bound leaf nests. Unlike `euc` tiles from
/// [`tile`], no cache parameter is consulted — the recursion adapts to
/// every level of the hierarchy at once.
///
/// Requires unit-magnitude steps and constant bounds (the recursion needs
/// a box-shaped space), and a fully permutable nest: every carried
/// dependence distance must be component-wise non-negative, which makes any
/// atomic blocking of the space legal. Reversed (`step == -1`) loops
/// bisect in *execution* order, so a 1-D recursion preserves the exact
/// access sequence.
pub fn cache_oblivious(nest: &LoopNest, leaf: u64) -> Result<Vec<LoopNest>, String> {
    let dists = crate::dependence::carried_distances(nest)?;
    for d in &dists {
        if d.iter().any(|&c| c < 0) {
            return Err(format!(
                "recursive tiling needs a fully permutable nest; dependence {d:?} has a negative component"
            ));
        }
    }
    cache_oblivious_unchecked(nest, leaf)
}

/// [`cache_oblivious`] without the dependence-legality check (bounds must
/// still be constant). Like [`fuse_unchecked`], this exists for cache
/// studies over nests the distance analyzer cannot certify: the leaves
/// cover the same iteration space exactly once, so the access *multiset*
/// is always preserved even where the reordering would not be a legal
/// program transformation.
pub fn cache_oblivious_unchecked(nest: &LoopNest, leaf: u64) -> Result<Vec<LoopNest>, String> {
    if leaf == 0 {
        return Err("leaf extent must be positive".into());
    }
    let mut ranges: Vec<(i64, i64)> = Vec::with_capacity(nest.depth());
    for l in &nest.loops {
        if l.step != 1 && l.step != -1 {
            return Err(format!(
                "recursive tiling requires unit-magnitude steps, loop {} has {}",
                l.var, l.step
            ));
        }
        let lo = const_bound(&l.lowers, true)
            .ok_or_else(|| format!("loop {} has a non-constant lower bound", l.var))?;
        let hi = const_bound(&l.uppers, false)
            .ok_or_else(|| format!("loop {} has a non-constant upper bound", l.var))?;
        ranges.push((lo, hi));
    }
    let mut out = Vec::new();
    bisect(nest, &mut ranges, leaf as i64, &mut out)?;
    crate::layout::stats::COT_NESTS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(out)
}

/// [`cache_oblivious`] applied to `program.nests[at]`, splicing the leaf
/// sequence in place of the original nest.
pub fn cache_oblivious_in_program(
    program: &Program,
    at: usize,
    leaf: u64,
) -> Result<Program, String> {
    if at >= program.nests.len() {
        return Err(format!("no nest at index {at}"));
    }
    let leaves = cache_oblivious(&program.nests[at], leaf)?;
    let mut p = program.clone();
    p.nests.splice(at..=at, leaves);
    Ok(p)
}

/// Effective constant bound: max of the lower-bound list / min of the
/// upper-bound list, `None` if any expression references a variable.
fn const_bound(exprs: &[AffineExpr], lower: bool) -> Option<i64> {
    let mut acc: Option<i64> = None;
    for e in exprs {
        if !e.is_constant() {
            return None;
        }
        let c = e.constant_term();
        acc = Some(match acc {
            None => c,
            Some(a) if lower => a.max(c),
            Some(a) => a.min(c),
        });
    }
    acc
}

/// Guard against pathological recursions on fuzz-generated extents.
const MAX_COT_LEAVES: usize = 1 << 16;

fn bisect(
    nest: &LoopNest,
    ranges: &mut [(i64, i64)],
    leaf: i64,
    out: &mut Vec<LoopNest>,
) -> Result<(), String> {
    let mut best = usize::MAX;
    let mut best_trip = leaf;
    for (d, &(lo, hi)) in ranges.iter().enumerate() {
        let trip = hi - lo + 1;
        if trip > best_trip {
            best = d;
            best_trip = trip;
        }
    }
    if best == usize::MAX {
        if out.len() >= MAX_COT_LEAVES {
            return Err(format!(
                "recursive tiling would exceed {MAX_COT_LEAVES} leaves"
            ));
        }
        let loops = nest
            .loops
            .iter()
            .zip(ranges.iter())
            .map(|(l, &(lo, hi))| Loop {
                var: l.var.clone(),
                lowers: vec![AffineExpr::constant(lo)],
                uppers: vec![AffineExpr::constant(hi)],
                step: l.step,
            })
            .collect();
        out.push(LoopNest {
            name: format!("{}@cot{}", nest.name, out.len()),
            loops,
            body: nest.body.clone(),
        });
        return Ok(());
    }
    let (lo, hi) = ranges[best];
    let mid = lo + (hi - lo) / 2;
    // A reversed loop executes its high half first; bisect in execution
    // order so 1-D recursions preserve the exact sequence.
    let halves = if nest.loops[best].step >= 0 {
        [(lo, mid), (mid + 1, hi)]
    } else {
        [(mid + 1, hi), (lo, mid)]
    };
    for h in halves {
        ranges[best] = h;
        bisect(nest, ranges, leaf, out)?;
    }
    ranges[best] = (lo, hi);
    Ok(())
}

/// Where `orig_level` sits after earlier strip-mines in `order[..upto]`
/// inserted controlling loops above it.
fn adjusted_level(orig_level: usize, spec: &[(usize, u64)], order: &[usize], at: usize) -> usize {
    let mut level = orig_level;
    for &k in order {
        if k == at {
            break;
        }
        if spec[k].0 <= orig_level {
            level += 1;
        }
    }
    level
}

/// Permutation that allows element loops to reference controller variables
/// as long as every controller ends up outside its element loop. Dependence
/// legality is still enforced.
fn permute_unchecked_bounds(
    nest: &LoopNest,
    perm: &[usize],
    controllers: &[String],
) -> Result<LoopNest, String> {
    permutation_legal(nest, perm)?;
    let out = LoopNest {
        name: nest.name.clone(),
        loops: perm.iter().map(|&k| nest.loops[k].clone()).collect(),
        body: nest.body.clone(),
    };
    // Verify scoping: every variable used in a bound must be defined by an
    // outer loop of the permuted nest.
    let mut outer: Vec<&str> = Vec::new();
    for l in &out.loops {
        for e in l.lowers.iter().chain(&l.uppers) {
            for v in e.vars() {
                if !outer.contains(&v) {
                    return Err(format!(
                        "tiling scoping violation: bound of {} references {v} (controllers: {controllers:?})",
                        l.var
                    ));
                }
            }
        }
        outer.push(&l.var);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayDecl;
    use crate::expr::AffineExpr as E;
    use crate::layout::DataLayout;
    use crate::program::{figure2_example, Program};
    use crate::reference::ArrayRef;
    use crate::trace_gen::generate;
    use mlc_cache_sim::trace::RecordingSink;

    /// Collect the sorted multiset of addresses a single-nest program touches.
    fn address_multiset(p: &Program) -> Vec<u64> {
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        generate(p, &l, &mut rec);
        let mut v: Vec<u64> = rec.accesses.iter().map(|a| a.addr).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn permutation_preserves_access_multiset() {
        let p = figure2_example(20);
        let mut q = p.clone();
        q.nests[0] = permute(&p.nests[0], &[1, 0]).unwrap();
        q.nests[1] = permute(&p.nests[1], &[1, 0]).unwrap();
        assert_eq!(address_multiset(&p), address_multiset(&q));
    }

    #[test]
    fn fusion_preserves_access_multiset() {
        let p = figure2_example(20);
        let q = fuse_in_program(&p, 0).unwrap();
        assert_eq!(q.nests.len(), 1);
        assert_eq!(q.nests[0].body.len(), 10);
        assert_eq!(address_multiset(&p), address_multiset(&q));
    }

    #[test]
    fn figure6_fused_body_order() {
        let p = figure2_example(20);
        let q = fuse_in_program(&p, 0).unwrap();
        // First nest's six refs, then the second nest's four.
        let offsets: Vec<i64> = q.nests[0]
            .body
            .iter()
            .map(|r| r.subscripts[1].constant_term())
            .collect();
        assert_eq!(offsets, vec![0, 1, 0, 1, 0, 1, -1, 0, 1, 0]);
    }

    #[test]
    fn strip_mine_preserves_access_multiset() {
        let p = figure2_example(24);
        let mut q = p.clone();
        q.nests[0] = strip_mine(&p.nests[0], 1, 7, "iT").unwrap();
        let mut r = p.clone();
        r.nests[0] = p.nests[0].clone();
        assert_eq!(address_multiset(&r), address_multiset(&q));
    }

    #[test]
    fn strip_mine_shape_matches_figure8() {
        let nest = figure2_example(24).nests[0].clone();
        let sm = strip_mine(&nest, 1, 8, "ii").unwrap();
        assert_eq!(sm.depth(), 3);
        assert_eq!(sm.loops[1].var, "ii");
        assert_eq!(sm.loops[1].step, 8);
        assert_eq!(sm.loops[2].var, "i");
        // Inner loop: i from ii to min(ii+7, orig upper).
        assert_eq!(sm.loops[2].lowers, vec![E::var("ii")]);
        assert_eq!(sm.loops[2].uppers[0], E::var_plus("ii", 7));
        assert_eq!(sm.loops[2].uppers[1], E::constant(23));
    }

    fn matmul_model(n: usize) -> Program {
        // do J { do K { do I { C(I,J) += A(I,K) * B(K,J) } } }
        let mut p = Program::new("mm");
        let a = p.add_array(ArrayDecl::f64("A", vec![n, n]));
        let b = p.add_array(ArrayDecl::f64("B", vec![n, n]));
        let c = p.add_array(ArrayDecl::f64("C", vec![n, n]));
        let nn = n as i64 - 1;
        p.add_nest(LoopNest::new(
            "mm",
            vec![
                Loop::counted("J", 0, nn),
                Loop::counted("K", 0, nn),
                Loop::counted("I", 0, nn),
            ],
            vec![
                ArrayRef::read(a, vec![E::var("I"), E::var("K")]),
                ArrayRef::read(b, vec![E::var("K"), E::var("J")]),
                ArrayRef::read(c, vec![E::var("I"), E::var("J")]),
                ArrayRef::write(c, vec![E::var("I"), E::var("J")]),
            ],
        ));
        p
    }

    #[test]
    fn tiled_matmul_matches_figure8_loop_order() {
        let p = matmul_model(12);
        // Tile K by W=4 and I by H=3: KK, II, J, K, I.
        let tiled = tile(&p.nests[0], &[(1, 4), (2, 3)]).unwrap();
        let vars = tiled.loop_vars();
        assert_eq!(vars, vec!["KK", "II", "J", "K", "I"]);
        let mut q = p.clone();
        q.nests[0] = tiled;
        assert_eq!(address_multiset(&p), address_multiset(&q));
    }

    #[test]
    fn tiling_with_non_dividing_tile_still_covers() {
        let p = matmul_model(10);
        let tiled = tile(&p.nests[0], &[(1, 3), (2, 4)]).unwrap();
        let mut q = p.clone();
        q.nests[0] = tiled;
        assert_eq!(address_multiset(&p), address_multiset(&q));
    }

    #[test]
    fn reversal_flips_step_and_preserves_multiset() {
        let p = figure2_example(16);
        let rev = reverse(&p.nests[0], 1).unwrap();
        assert_eq!(rev.loops[1].step, -1);
        let mut q = p.clone();
        q.nests[0] = rev;
        assert_eq!(address_multiset(&p), address_multiset(&q));
    }

    #[test]
    fn illegal_permutation_refused() {
        let nest = LoopNest::new(
            "t",
            vec![Loop::counted("i", 1, 8), Loop::counted("j", 1, 8)],
            vec![
                ArrayRef::write(0, vec![E::var("i"), E::var("j")]),
                ArrayRef::read(0, vec![E::var_plus("i", -1), E::var_plus("j", 1)]),
            ],
        );
        assert!(permute(&nest, &[1, 0]).is_err());
    }

    #[test]
    fn permute_rejects_triangular_without_skew() {
        let nest = LoopNest::new(
            "t",
            vec![
                Loop::counted("j", 0, 9),
                Loop::new("i", E::constant(0), E::var("j")),
            ],
            vec![],
        );
        let err = permute(&nest, &[1, 0]).unwrap_err();
        assert!(err.contains("would not enclose"), "{err}");
    }

    #[test]
    fn fuse_rejects_nonadjacent_oob() {
        let p = figure2_example(16);
        assert!(fuse_in_program(&p, 1).is_err());
    }

    #[test]
    fn skew_preserves_exact_trace() {
        // Skewing renumbers iterations without reordering them: the full
        // access *sequence* (not just the multiset) is unchanged.
        let p = figure2_example(12);
        let layout = DataLayout::contiguous(&p.arrays);
        let mut before = mlc_cache_sim::trace::RecordingSink::default();
        crate::trace_gen::generate_nest(&p, &p.nests[0], &layout, &mut before);
        for factor in [1i64, 2, -1] {
            let skewed = skew(&p.nests[0], 0, 1, factor).unwrap();
            let mut after = mlc_cache_sim::trace::RecordingSink::default();
            crate::trace_gen::generate_nest(&p, &skewed, &layout, &mut after);
            assert_eq!(before.accesses, after.accesses, "factor {factor}");
        }
    }

    #[test]
    fn skew_rewrites_bounds_and_subscripts() {
        // A(i,j) = A(i-1,j) + A(i,j-1) skewed by j' = j + i: bounds of the
        // inner loop gain +i, and subscripts substitute j = j' - i. (The
        // coupled subscripts put the result outside the UGS distance
        // analyzer's domain — it conservatively refuses — but the exact
        // trace-preservation test above establishes semantics.)
        let nest = LoopNest::new(
            "wf",
            vec![Loop::counted("i", 1, 8), Loop::counted("j", 1, 8)],
            vec![
                ArrayRef::write(0, vec![E::var("i"), E::var("j")]),
                ArrayRef::read(0, vec![E::var_plus("i", -1), E::var("j")]),
                ArrayRef::read(0, vec![E::var("i"), E::var_plus("j", -1)]),
            ],
        );
        let skewed = skew(&nest, 0, 1, 1).unwrap();
        // Bounds: j' in (1 + i) ..= (8 + i).
        assert_eq!(skewed.loops[1].lowers[0], E::var("i").plus(1));
        assert_eq!(skewed.loops[1].uppers[0], E::var("i").plus(8));
        // Subscript dim 1 of the write became j' - i.
        let s = &skewed.body[0].subscripts[1];
        assert_eq!(s.coeff("j"), 1);
        assert_eq!(s.coeff("i"), -1);
        assert!(crate::dependence::carried_distances(&skewed).is_err());
    }

    #[test]
    fn skew_rejects_bad_levels() {
        let p = figure2_example(8);
        assert!(skew(&p.nests[0], 1, 1, 1).is_err());
        assert!(skew(&p.nests[0], 0, 5, 1).is_err());
    }

    /// The paper's Figure 1: transposing A turns the column-jumping
    /// A(j,i) into the unit-stride A(i,j).
    #[test]
    fn transpose_restores_unit_stride() {
        let (n, m) = (16usize, 8usize);
        let mut p = Program::new("fig1");
        let a = p.add_array(ArrayDecl::f64("A", vec![n, m]));
        let b = p.add_array(ArrayDecl::f64("B", vec![n]));
        p.add_nest(LoopNest::new(
            "orig",
            vec![
                Loop::counted("j", 0, n as i64 - 1),
                Loop::counted("i", 0, m as i64 - 1),
            ],
            vec![
                ArrayRef::read(a, vec![E::var("j"), E::var("i")]),
                ArrayRef::write(b, vec![E::var("j")]),
            ],
        ));
        let t = transpose_array(&p, a, &[1, 0]).unwrap();
        assert_eq!(t.arrays[a].dims, vec![m, n]);
        // A(j,i) became A(i,j): unit stride on the inner i loop.
        assert_eq!(t.nests[0].body[0].subscripts[0], E::var("i"));
        assert_eq!(t.nests[0].body[0].subscripts[1], E::var("j"));
        t.validate().unwrap();
        // Same number of accesses, and per-iteration addresses differ by a
        // transposition: the inner loop is now sequential.
        let layout = DataLayout::contiguous(&t.arrays);
        let mut rec = mlc_cache_sim::trace::RecordingSink::default();
        generate(&t, &layout, &mut rec);
        assert_eq!(rec.accesses[0].addr + 8, rec.accesses[2].addr);
    }

    #[test]
    fn transpose_rejects_bad_permutation() {
        let p = figure2_example(8);
        assert!(transpose_array(&p, 0, &[0]).is_err());
        assert!(transpose_array(&p, 0, &[0, 0]).is_err());
    }

    #[test]
    fn transpose_preserves_logical_access_count() {
        let p = figure2_example(12);
        let t = transpose_array(&p, 1, &[1, 0]).unwrap();
        assert_eq!(p.const_references(), t.const_references());
    }

    #[test]
    fn transpose_moves_intra_pads_with_dims() {
        let mut p = figure2_example(8);
        p.arrays[0].set_dim_pad(0, 3);
        let t = transpose_array(&p, 0, &[1, 0]).unwrap();
        assert_eq!(t.arrays[0].dim_pad, vec![0, 3]);
    }

    #[test]
    fn cache_oblivious_preserves_access_multiset() {
        for (n, leaf) in [(12usize, 4u64), (10, 3), (7, 2)] {
            let p = matmul_model(n);
            let q = cache_oblivious_in_program(&p, 0, leaf).unwrap();
            assert!(q.nests.len() > 1, "n={n} leaf={leaf}");
            assert_eq!(
                address_multiset(&p),
                address_multiset(&q),
                "n={n} leaf={leaf}"
            );
        }
    }

    #[test]
    fn cache_oblivious_small_nest_is_a_single_leaf() {
        let p = matmul_model(4);
        let leaves = cache_oblivious(&p.nests[0], 8).unwrap();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].loop_vars(), p.nests[0].loop_vars());
        assert_eq!(leaves[0].loops[0].lowers, vec![E::constant(0)]);
        assert_eq!(leaves[0].loops[0].uppers, vec![E::constant(3)]);
    }

    #[test]
    fn cache_oblivious_bisects_largest_dimension_first() {
        // 8×2 space, leaf 2: only the first dimension splits, in order.
        let nest = LoopNest::new(
            "t",
            vec![Loop::counted("i", 0, 7), Loop::counted("j", 0, 1)],
            vec![ArrayRef::read(0, vec![E::var("i"), E::var("j")])],
        );
        let leaves = cache_oblivious_unchecked(&nest, 2).unwrap();
        let spans: Vec<(i64, i64)> = leaves
            .iter()
            .map(|l| {
                (
                    l.loops[0].lowers[0].constant_term(),
                    l.loops[0].uppers[0].constant_term(),
                )
            })
            .collect();
        assert_eq!(spans, vec![(0, 1), (2, 3), (4, 5), (6, 7)]);
    }

    #[test]
    fn cache_oblivious_reversed_loop_keeps_exact_sequence() {
        let mut p = Program::new("rev");
        let a = p.add_array(ArrayDecl::f64("A", vec![16]));
        let mut l = Loop::counted("i", 0, 15);
        l.step = -1;
        p.add_nest(LoopNest::new(
            "rev",
            vec![l],
            vec![ArrayRef::read(a, vec![E::var("i")])],
        ));
        let q = cache_oblivious_in_program(&p, 0, 4).unwrap();
        assert_eq!(q.nests.len(), 4);
        let layout = DataLayout::contiguous(&p.arrays);
        let mut before = RecordingSink::default();
        generate(&p, &layout, &mut before);
        let mut after = RecordingSink::default();
        generate(&q, &layout, &mut after);
        assert_eq!(before.accesses, after.accesses);
    }

    #[test]
    fn cache_oblivious_refuses_non_permutable_nests() {
        // Distance (1, -1): blocking the space would run the source after
        // its sink.
        let nest = LoopNest::new(
            "t",
            vec![Loop::counted("i", 1, 8), Loop::counted("j", 1, 8)],
            vec![
                ArrayRef::write(0, vec![E::var("i"), E::var("j")]),
                ArrayRef::read(0, vec![E::var_plus("i", -1), E::var_plus("j", 1)]),
            ],
        );
        let err = cache_oblivious(&nest, 2).unwrap_err();
        assert!(err.contains("fully permutable"), "{err}");
        // The unchecked variant still covers the space exactly once.
        let mut p = Program::new("t");
        p.add_array(ArrayDecl::f64("A", vec![10, 10]));
        p.add_nest(nest);
        let leaves = cache_oblivious_unchecked(&p.nests[0], 2).unwrap();
        let mut q = p.clone();
        q.nests.splice(0..=0, leaves);
        assert_eq!(address_multiset(&p), address_multiset(&q));
    }

    #[test]
    fn cache_oblivious_refuses_non_constant_bounds() {
        let nest = LoopNest::new(
            "t",
            vec![
                Loop::counted("j", 0, 9),
                Loop::new("i", E::constant(0), E::var("j")),
            ],
            vec![],
        );
        let err = cache_oblivious_unchecked(&nest, 2).unwrap_err();
        assert!(err.contains("non-constant"), "{err}");
    }

    #[test]
    fn cache_oblivious_counts_nests_in_layout_stats() {
        crate::layout::stats::take_stats();
        let p = matmul_model(8);
        cache_oblivious_in_program(&p, 0, 4).unwrap();
        assert!(crate::layout::stats::take_stats().cot_nests >= 1);
    }
}
