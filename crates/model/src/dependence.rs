//! Dependence analysis for transformation legality.
//!
//! The paper's kernels are regular stencil codes whose references are
//! uniformly generated, so a distance-vector test over uniformly generated
//! pairs is exact for them; anything the test cannot model is treated
//! conservatively (unknown dependence ⇒ transformation refused when a write
//! is involved).

use crate::nest::LoopNest;
use crate::reference::ArrayRef;

/// Distance vector between two uniformly generated references, expressed
/// per loop of `vars` (outermost first): iteration `J` of the second
/// reference touches the element the first touched at iteration `I`, with
/// `J - I = distance`. `None` when the pair is not uniformly generated, a
/// subscript mixes loop variables, or the offsets are not reachable
/// (non-integral distance ⇒ no dependence, returned as `Some(None)` inner).
///
/// Returns:
/// * `Err(())` — cannot analyze (not uniformly generated / non-simple
///   subscripts); caller must be conservative.
/// * `Ok(None)` — provably no dependence (offsets unreachable).
/// * `Ok(Some(d))` — dependence with distance vector `d` over `vars`.
#[allow(clippy::result_unit_err)] // Err carries no information by design: "cannot analyze" has exactly one cause (non-UGS pair)
pub fn ugs_distance(r1: &ArrayRef, r2: &ArrayRef, vars: &[&str]) -> Result<Option<Vec<i64>>, ()> {
    if r1.array != r2.array {
        return Ok(None);
    }
    if r1.coeff_matrix(vars) != r2.coeff_matrix(vars) {
        return Err(());
    }
    let mut dist = vec![0i64; vars.len()];
    let mut pinned = vec![false; vars.len()];
    for (d, (s1, s2)) in r1.subscripts.iter().zip(&r2.subscripts).enumerate() {
        // Which loop vars appear in this dimension?
        let movers: Vec<usize> = vars
            .iter()
            .enumerate()
            .filter(|(_, v)| s1.coeff(v) != 0)
            .map(|(k, _)| k)
            .collect();
        let c1 = s1.constant_term();
        let c2 = s2.constant_term();
        match movers.len() {
            0 => {
                if c1 != c2 {
                    return Ok(None); // disjoint fixed planes: no dependence
                }
            }
            1 => {
                let k = movers[0];
                let a = s1.coeff(vars[k]);
                let delta = c1 - c2;
                if delta % a != 0 {
                    return Ok(None);
                }
                let d_k = delta / a;
                if pinned[k] && dist[k] != d_k {
                    return Ok(None); // inconsistent requirements: no solution
                }
                dist[k] = d_k;
                pinned[k] = true;
                let _ = d; // dimension index unused beyond diagnostics
            }
            _ => return Err(()), // coupled subscript: out of scope
        }
    }
    Ok(Some(dist))
}

/// Sign of a vector in lexicographic order: -1, 0, or 1.
pub fn lex_sign(v: &[i64]) -> i32 {
    for &x in v {
        if x > 0 {
            return 1;
        }
        if x < 0 {
            return -1;
        }
    }
    0
}

/// Check that fusing `second` into `first` (same loop headers, `first`'s
/// body then `second`'s per iteration) preserves every cross-nest
/// dependence.
///
/// Originally *all* of `first` executes before `second`, so for any pair
/// `(s1 ∈ first, s2 ∈ second)` touching the same location at iterations
/// `I`/`J`, `s1@I` precedes `s2@J`. After fusion `s1@I` precedes `s2@J` iff
/// `I ≤ J` lexicographically (at equal iterations `first`'s body runs
/// first). Fusion is illegal iff some dependent pair (at least one write)
/// has `J - I` lexicographically negative.
pub fn fusion_legal(first: &LoopNest, second: &LoopNest) -> Result<(), String> {
    if first.loops.len() != second.loops.len() {
        return Err("fusion requires equal nest depth".into());
    }
    for (a, b) in first.loops.iter().zip(&second.loops) {
        if a != b {
            return Err(format!("loop headers differ: {} vs {}", a.var, b.var));
        }
    }
    let vars = first.loop_vars();
    for (i, s1) in first.body.iter().enumerate() {
        for (j, s2) in second.body.iter().enumerate() {
            if s1.array != s2.array || (!s1.is_write() && !s2.is_write()) {
                continue;
            }
            match ugs_distance(s1, s2, &vars) {
                Err(()) => {
                    return Err(format!(
                        "cannot analyze dependence between ref {i} of {} and ref {j} of {}",
                        first.name, second.name
                    ))
                }
                Ok(None) => {}
                Ok(Some(d)) => {
                    if lex_sign(&d) < 0 {
                        return Err(format!(
                            "fusion reverses dependence between ref {i} of {} and ref {j} of {} (distance {d:?})",
                            first.name, second.name
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// All loop-carried dependence distance vectors within a nest, over
/// uniformly generated pairs involving at least one write. `Err` when some
/// pair cannot be analyzed.
pub fn carried_distances(nest: &LoopNest) -> Result<Vec<Vec<i64>>, String> {
    let vars = nest.loop_vars();
    let mut out = Vec::new();
    for (i, s1) in nest.body.iter().enumerate() {
        for (j, s2) in nest.body.iter().enumerate() {
            if i == j || s1.array != s2.array || (!s1.is_write() && !s2.is_write()) {
                continue;
            }
            match ugs_distance(s1, s2, &vars) {
                Err(()) => return Err(format!("cannot analyze refs {i},{j} of {}", nest.name)),
                Ok(None) => {}
                Ok(Some(d)) => {
                    // Only lexicographically positive vectors are true
                    // carried dependences (s1 at I, s2 at J = I + d, J > I).
                    if lex_sign(&d) > 0 {
                        out.push(d);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Check that permuting a nest's loops by `perm` (new position k holds old
/// loop `perm[k]`) preserves all carried dependences: every distance vector
/// must stay lexicographically positive after reordering its components.
pub fn permutation_legal(nest: &LoopNest, perm: &[usize]) -> Result<(), String> {
    let dists = carried_distances(nest)?;
    for d in &dists {
        let permuted: Vec<i64> = perm.iter().map(|&k| d[k]).collect();
        if lex_sign(&permuted) < 0 {
            return Err(format!("permutation {perm:?} reverses dependence {d:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr as E;
    use crate::nest::Loop;
    use crate::program::figure2_example;
    use crate::reference::ArrayRef;

    #[test]
    fn figure2_fusion_is_legal() {
        // All references in Figure 2 are reads: no dependences at all.
        let p = figure2_example(64);
        fusion_legal(&p.nests[0], &p.nests[1]).unwrap();
    }

    #[test]
    fn forward_flow_dep_allows_fusion() {
        // nest1: A(i) = ...; nest2: ... = A(i-1): read of an element written
        // one iteration earlier. After fusion the write still precedes the
        // read (distance +1).
        let l = vec![Loop::counted("i", 1, 30)];
        let n1 = LoopNest::new("w", l.clone(), vec![ArrayRef::write(0, vec![E::var("i")])]);
        let n2 = LoopNest::new("r", l, vec![ArrayRef::read(0, vec![E::var_plus("i", -1)])]);
        fusion_legal(&n1, &n2).unwrap();
    }

    #[test]
    fn backward_dep_blocks_fusion() {
        // nest1: A(i) = ...; nest2: ... = A(i+1). Originally the read sees
        // the new value of A(i+1); after fusion iteration i reads A(i+1)
        // before iteration i+1 writes it.
        let l = vec![Loop::counted("i", 1, 30)];
        let n1 = LoopNest::new("w", l.clone(), vec![ArrayRef::write(0, vec![E::var("i")])]);
        let n2 = LoopNest::new("r", l, vec![ArrayRef::read(0, vec![E::var_plus("i", 1)])]);
        let err = fusion_legal(&n1, &n2).unwrap_err();
        assert!(err.contains("reverses"), "{err}");
    }

    #[test]
    fn read_read_pairs_never_block() {
        let l = vec![Loop::counted("i", 1, 30)];
        let n1 = LoopNest::new(
            "a",
            l.clone(),
            vec![ArrayRef::read(0, vec![E::var_plus("i", 5)])],
        );
        let n2 = LoopNest::new("b", l, vec![ArrayRef::read(0, vec![E::var("i")])]);
        fusion_legal(&n1, &n2).unwrap();
    }

    #[test]
    fn mismatched_headers_rejected() {
        let n1 = LoopNest::new("a", vec![Loop::counted("i", 0, 9)], vec![]);
        let n2 = LoopNest::new("b", vec![Loop::counted("i", 0, 8)], vec![]);
        assert!(fusion_legal(&n1, &n2).is_err());
    }

    #[test]
    fn distance_vector_of_stencil_pair() {
        let w = ArrayRef::write(0, vec![E::var("i"), E::var("j")]);
        let r = ArrayRef::read(0, vec![E::var_plus("i", -1), E::var_plus("j", -2)]);
        // w at (i,j); r at (i',j') touches (i'-1, j'-2) = (i, j) when
        // i' = i+1, j' = j+2: distance (1, 2) in (i, j) order.
        let d = ugs_distance(&w, &r, &["i", "j"]).unwrap().unwrap();
        assert_eq!(d, vec![1, 2]);
        assert_eq!(lex_sign(&d), 1);
    }

    #[test]
    fn unreachable_offsets_mean_no_dependence() {
        let w = ArrayRef::write(0, vec![E::scaled("i", 2)]);
        let r = ArrayRef::read(0, vec![E::scaled("i", 2).plus(1)]); // odd vs even
        assert_eq!(ugs_distance(&w, &r, &["i"]).unwrap(), None);
    }

    #[test]
    fn non_ugs_pair_is_unanalyzable() {
        let w = ArrayRef::write(0, vec![E::var("i"), E::var("j")]);
        let r = ArrayRef::read(0, vec![E::var("j"), E::var("i")]);
        assert!(ugs_distance(&w, &r, &["i", "j"]).is_err());
    }

    #[test]
    fn permutation_legality_for_skewed_dep() {
        // A(i,j) = A(i-1, j+1): distance (1, -1). Legal as (i,j); swapping
        // to (j,i) gives (-1, 1): lexicographically negative ⇒ illegal.
        let nest = LoopNest::new(
            "t",
            vec![Loop::counted("i", 1, 30), Loop::counted("j", 1, 30)],
            vec![
                ArrayRef::write(0, vec![E::var("i"), E::var("j")]),
                ArrayRef::read(0, vec![E::var_plus("i", -1), E::var_plus("j", 1)]),
            ],
        );
        permutation_legal(&nest, &[0, 1]).unwrap();
        assert!(permutation_legal(&nest, &[1, 0]).is_err());
    }

    #[test]
    fn fully_parallel_nest_permutes_freely() {
        let p = figure2_example(64);
        permutation_legal(&p.nests[0], &[1, 0]).unwrap();
    }
}
