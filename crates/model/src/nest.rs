//! Loops and loop nests.
//!
//! A [`LoopNest`] is a *perfect* nest: loops wrap a single body of array
//! references. Bounds are affine in outer loop variables; upper bounds are
//! a `min` over expressions and lower bounds a `max`, which is exactly what
//! strip-mining introduces (`min(KK+W-1, N)` in the paper's Figure 8).

use crate::expr::AffineExpr;
use crate::reference::ArrayRef;

/// One loop: `for var in max(lowers)..=min(uppers) step step`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Induction variable name; must be unique within the nest.
    pub var: String,
    /// Lower bound: the maximum of these expressions (at least one).
    pub lowers: Vec<AffineExpr>,
    /// Upper bound (inclusive): the minimum of these expressions (at least one).
    pub uppers: Vec<AffineExpr>,
    /// Step; nonzero. Negative steps iterate downward from the upper bound
    /// (loop reversal flips the sign).
    pub step: i64,
}

impl Loop {
    /// `for var in lo..=hi` with unit step and constant bounds.
    pub fn counted(var: impl Into<String>, lo: i64, hi: i64) -> Self {
        Self::new(var, AffineExpr::constant(lo), AffineExpr::constant(hi))
    }

    /// `for var in lo..=hi` with unit step and affine bounds.
    pub fn new(var: impl Into<String>, lo: AffineExpr, hi: AffineExpr) -> Self {
        Self {
            var: var.into(),
            lowers: vec![lo],
            uppers: vec![hi],
            step: 1,
        }
    }

    /// Evaluate the effective (lower, upper) bounds in an environment binding
    /// all outer variables. Returns `Err(var)` on an unbound variable.
    pub fn bounds(
        &self,
        lookup: impl Fn(&str) -> Option<i64> + Copy,
    ) -> Result<(i64, i64), String> {
        let mut lo = i64::MIN;
        for e in &self.lowers {
            lo = lo.max(e.eval(lookup)?);
        }
        let mut hi = i64::MAX;
        for e in &self.uppers {
            hi = hi.min(e.eval(lookup)?);
        }
        Ok((lo, hi))
    }

    /// Trip count in an environment (0 if empty).
    pub fn trip_count(&self, lookup: impl Fn(&str) -> Option<i64> + Copy) -> Result<u64, String> {
        let (lo, hi) = self.bounds(lookup)?;
        if hi < lo {
            return Ok(0);
        }
        let span = (hi - lo) as u64 + 1;
        let step = self.step.unsigned_abs();
        Ok(span.div_ceil(step))
    }

    /// Rename the induction variable, updating the bounds expressions that
    /// mention it (none should, but stays safe) — callers must rename uses
    /// in inner loops and the body separately.
    pub fn renamed(&self, to: &str) -> Self {
        Self {
            var: to.to_string(),
            lowers: self
                .lowers
                .iter()
                .map(|e| e.rename(&self.var, to))
                .collect(),
            uppers: self
                .uppers
                .iter()
                .map(|e| e.rename(&self.var, to))
                .collect(),
            step: self.step,
        }
    }
}

/// A perfect loop nest with a straight-line body of array references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Label used in reports and diagrams ("loop nest 1" in Figure 2).
    pub name: String,
    /// Loops, outermost first.
    pub loops: Vec<Loop>,
    /// Body references in program order, executed once per innermost
    /// iteration.
    pub body: Vec<ArrayRef>,
}

impl LoopNest {
    /// Build a nest. Loops are outermost-first.
    pub fn new(name: impl Into<String>, loops: Vec<Loop>, body: Vec<ArrayRef>) -> Self {
        Self {
            name: name.into(),
            loops,
            body,
        }
    }

    /// Nest depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The innermost loop.
    pub fn innermost(&self) -> &Loop {
        self.loops.last().expect("nest has no loops")
    }

    /// Loop variable names, outermost first.
    pub fn loop_vars(&self) -> Vec<&str> {
        self.loops.iter().map(|l| l.var.as_str()).collect()
    }

    /// Index of the loop with variable `v`.
    pub fn loop_index(&self, v: &str) -> Option<usize> {
        self.loops.iter().position(|l| l.var == v)
    }

    /// Total iterations of the body for constant-bounds nests; `None` when
    /// bounds depend on outer variables (e.g. triangular or tiled nests),
    /// where the trace generator must count instead.
    pub fn const_iterations(&self) -> Option<u64> {
        let mut total = 1u64;
        for l in &self.loops {
            let t = l.trip_count(|_| None).ok()?;
            total = total.checked_mul(t)?;
        }
        Some(total)
    }

    /// Structural sanity check: unique loop vars, nonzero steps, subscripts
    /// mentioning only in-scope variables. `arrays` gives per-array ranks.
    pub fn validate(&self, ranks: &[usize]) -> Result<(), String> {
        let mut seen: Vec<&str> = Vec::new();
        for l in &self.loops {
            if l.step == 0 {
                return Err(format!("loop {} has zero step", l.var));
            }
            if seen.contains(&l.var.as_str()) {
                return Err(format!("duplicate loop variable {}", l.var));
            }
            for e in l.lowers.iter().chain(&l.uppers) {
                for v in e.vars() {
                    if !seen.contains(&v) {
                        return Err(format!("bound of loop {} uses unbound variable {v}", l.var));
                    }
                }
            }
            seen.push(&l.var);
        }
        for (i, r) in self.body.iter().enumerate() {
            if r.array >= ranks.len() {
                return Err(format!("reference {i} names undeclared array {}", r.array));
            }
            if r.subscripts.len() != ranks[r.array] {
                return Err(format!(
                    "reference {i} has {} subscripts but array {} has rank {}",
                    r.subscripts.len(),
                    r.array,
                    ranks[r.array]
                ));
            }
            for s in &r.subscripts {
                for v in s.vars() {
                    if !seen.contains(&v) {
                        return Err(format!("reference {i} uses unbound variable {v}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;

    #[test]
    fn counted_loop_bounds_and_trips() {
        let l = Loop::counted("i", 2, 10);
        assert_eq!(l.bounds(|_| None).unwrap(), (2, 10));
        assert_eq!(l.trip_count(|_| None).unwrap(), 9);
    }

    #[test]
    fn min_upper_bound_strip_mine_shape() {
        // for k in kk ..= min(kk + 31, n-1)
        let mut l = Loop::new("k", AffineExpr::var("kk"), AffineExpr::var_plus("kk", 31));
        l.uppers.push(AffineExpr::constant(99)); // n-1 with n = 100
        let env = |v: &str| (v == "kk").then_some(96);
        assert_eq!(l.bounds(env).unwrap(), (96, 99));
        assert_eq!(l.trip_count(env).unwrap(), 4);
        let env0 = |v: &str| (v == "kk").then_some(0);
        assert_eq!(l.bounds(env0).unwrap(), (0, 31));
    }

    #[test]
    fn empty_loop_has_zero_trips() {
        let l = Loop::counted("i", 5, 4);
        assert_eq!(l.trip_count(|_| None).unwrap(), 0);
    }

    #[test]
    fn non_unit_step_trip_count_rounds_up() {
        let mut l = Loop::counted("i", 0, 9);
        l.step = 4;
        assert_eq!(l.trip_count(|_| None).unwrap(), 3); // 0, 4, 8
    }

    #[test]
    fn nest_validation_catches_errors() {
        let body = vec![ArrayRef::read(0, vec![AffineExpr::var("i")])];
        let good = LoopNest::new("n", vec![Loop::counted("i", 0, 9)], body.clone());
        assert!(good.validate(&[1]).is_ok());

        let bad_var = LoopNest::new("n", vec![Loop::counted("j", 0, 9)], body.clone());
        assert!(bad_var.validate(&[1]).unwrap_err().contains("unbound"));

        let bad_rank = LoopNest::new("n", vec![Loop::counted("i", 0, 9)], body);
        assert!(bad_rank.validate(&[2]).unwrap_err().contains("rank"));
    }

    #[test]
    fn const_iterations_multiplies_trips() {
        let n = LoopNest::new(
            "n",
            vec![Loop::counted("j", 0, 9), Loop::counted("i", 0, 4)],
            vec![],
        );
        assert_eq!(n.const_iterations(), Some(50));
    }

    #[test]
    fn const_iterations_none_for_dependent_bounds() {
        let n = LoopNest::new(
            "n",
            vec![
                Loop::counted("j", 0, 9),
                Loop::new("i", AffineExpr::constant(0), AffineExpr::var("j")),
            ],
            vec![],
        );
        assert_eq!(n.const_iterations(), None);
    }
}
