//! Loop distribution (fission) and array contraction.
//!
//! The paper's related work (Section 7) notes that "loop fission
//! (distribution) and loop fusion have also been found to be helpful"
//! [McKinley, Carr & Tseng], and Section 4 cites array contraction [Gao et
//! al.] as an optimization fusion enables. Distribution is fusion's inverse
//! — splitting one nest into several — and contraction shrinks a fused
//! temporary array to a scalar.
//!
//! Legality of distribution follows the classical recipe: statements in a
//! dependence cycle must stay in one nest; acyclic components may be split
//! and are emitted in topological order of the dependence graph.

use crate::dependence::{lex_sign, ugs_distance};
use crate::nest::LoopNest;
use crate::program::Program;

/// Dependence graph edge test: does statement `i` have to execute (some
/// instance) before statement `j`? Conservative: unanalyzable pairs depend
/// both ways (forcing them into one component).
fn depends(nest: &LoopNest, vars: &[&str], i: usize, j: usize) -> (bool, bool) {
    let (s1, s2) = (&nest.body[i], &nest.body[j]);
    if s1.array != s2.array || (!s1.is_write() && !s2.is_write()) {
        return (false, false);
    }
    match ugs_distance(s1, s2, vars) {
        Err(()) => (true, true),
        Ok(None) => (false, false),
        Ok(Some(d)) => match lex_sign(&d) {
            // s2@J touches what s1@I did with J = I + d.
            1 => (true, false),  // s1 first: dep i -> j
            -1 => (false, true), // s2's instance precedes: dep j -> i
            _ => {
                // Loop-independent: body order decides.
                if i < j {
                    (true, false)
                } else {
                    (false, true)
                }
            }
        },
    }
}

/// Split a nest into the maximal number of nests allowed by its
/// dependences: strongly connected components of the statement dependence
/// graph, in topological order. A nest with no cross-statement dependences
/// distributes into one nest per statement; a recurrence stays whole.
pub fn distribute(nest: &LoopNest) -> Vec<LoopNest> {
    let n = nest.body.len();
    if n == 0 {
        return vec![nest.clone()];
    }
    let vars = nest.loop_vars();
    let mut adj = vec![vec![]; n];
    for i in 0..n {
        for j in i + 1..n {
            let (ij, ji) = depends(nest, &vars, i, j);
            if ij {
                adj[i].push(j);
            }
            if ji {
                adj[j].push(i);
            }
        }
    }
    let comps = tarjan_scc(&adj);
    // Tarjan emits SCCs in reverse topological order; reverse and sort each
    // component's statements by body order.
    comps
        .into_iter()
        .rev()
        .enumerate()
        .map(|(k, mut comp)| {
            comp.sort_unstable();
            LoopNest {
                name: format!("{}#{k}", nest.name),
                loops: nest.loops.clone(),
                body: comp.iter().map(|&s| nest.body[s].clone()).collect(),
            }
        })
        .collect()
}

/// Distribute nest `at` of a program in place.
pub fn distribute_in_program(program: &Program, at: usize) -> Program {
    let parts = distribute(&program.nests[at]);
    let mut p = program.clone();
    p.nests.splice(at..=at, parts);
    p
}

/// Tarjan's strongly-connected-components algorithm (iterative-enough for
/// the tiny statement graphs of loop bodies). Returns components in reverse
/// topological order.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(s: &mut State, v: usize) {
        s.index[v] = Some(s.next);
        s.low[v] = s.next;
        s.next += 1;
        s.stack.push(v);
        s.on_stack[v] = true;
        let adj = s.adj; // shared slice, independent of the mutable state
        for &w in &adj[v] {
            if s.index[w].is_none() {
                strongconnect(s, w);
                s.low[v] = s.low[v].min(s.low[w]);
            } else if s.on_stack[w] {
                s.low[v] = s.low[v].min(s.index[w].unwrap());
            }
        }
        if s.low[v] == s.index[v].unwrap() {
            let mut comp = Vec::new();
            loop {
                let w = s.stack.pop().unwrap();
                s.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            s.out.push(comp);
        }
    }
    let n = adj.len();
    let mut s = State {
        adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if s.index[v].is_none() {
            strongconnect(&mut s, v);
        }
    }
    s.out
}

/// Contract a temporary array to a scalar (Section 4's "array
/// contraction", enabled by fusion): legal when every reference to the
/// array lives in **one** nest, all references use **identical**
/// subscripts (each iteration touches exactly one element, dead afterward),
/// and the first reference in body order is the write that defines it.
///
/// The array's declaration shrinks to a single element and all its
/// subscripts become constant zero — the model-level image of replacing the
/// temporary with a register.
pub fn contract_array(program: &Program, array: usize) -> Result<Program, String> {
    let name = &program.arrays[array].name;
    let mut home: Option<usize> = None;
    for (k, nest) in program.nests.iter().enumerate() {
        if nest.body.iter().any(|r| r.array == array) && home.replace(k).is_some() {
            return Err(format!("{name} is referenced in more than one nest"));
        }
    }
    let Some(home) = home else {
        return Err(format!("{name} is never referenced"));
    };
    let nest = &program.nests[home];
    let refs: Vec<usize> = (0..nest.body.len())
        .filter(|&i| nest.body[i].array == array)
        .collect();
    let first = &nest.body[refs[0]];
    if !first.is_write() {
        return Err(format!("{name} is read before it is written"));
    }
    for &i in &refs[1..] {
        if nest.body[i].subscripts != first.subscripts {
            return Err(format!(
                "{name} is used at more than one offset per iteration"
            ));
        }
    }
    let mut p = program.clone();
    let rank = p.arrays[array].rank();
    p.arrays[array].dims = vec![1; rank];
    p.arrays[array].dim_pad = vec![0; rank];
    for r in &mut p.nests[home].body {
        if r.array == array {
            for s in &mut r.subscripts {
                *s = crate::expr::AffineExpr::constant(0);
            }
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr as E;
    use crate::layout::DataLayout;
    use crate::nest::Loop;
    use crate::prelude::*;
    use crate::program::figure2_example;
    use crate::transform::fuse_in_program;
    use mlc_cache_sim::trace::RecordingSink;

    fn multiset(p: &Program) -> Vec<u64> {
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        crate::trace_gen::generate(p, &l, &mut rec);
        let mut v: Vec<u64> = rec.accesses.iter().map(|a| a.addr).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn read_only_nest_fully_distributes() {
        // Figure 2's first nest: six reads, no dependences: six nests.
        let p = figure2_example(32);
        let parts = distribute(&p.nests[0]);
        assert_eq!(parts.len(), 6);
        let mut q = Program::new("dist");
        q.arrays = p.arrays.clone();
        q.nests = parts;
        let mut only_first = p.clone();
        only_first.nests.truncate(1);
        assert_eq!(multiset(&only_first), multiset(&q));
    }

    #[test]
    fn anti_and_flow_dependences_order_the_parts() {
        // Per iteration: W = write A(i), Ra = read A(i-1) (flow: after W),
        // Rb = read A(i+1) (anti: must read the OLD value, so its nest must
        // run before W's). Distribution may split all three, but only in
        // the order Rb, W, Ra.
        let nest = LoopNest::new(
            "ordered",
            vec![Loop::counted("i", 1, 30)],
            vec![
                ArrayRef::write(0, vec![E::var("i")]),
                ArrayRef::read(0, vec![E::var_plus("i", -1)]),
                ArrayRef::read(0, vec![E::var_plus("i", 1)]),
            ],
        );
        let parts = distribute(&nest);
        let pos = |pred: &dyn Fn(&ArrayRef) -> bool| {
            parts.iter().position(|n| n.body.iter().any(pred)).unwrap()
        };
        let p_w = pos(&|r| r.is_write());
        let p_flow = pos(&|r| !r.is_write() && r.subscripts[0].constant_term() == -1);
        let p_anti = pos(&|r| !r.is_write() && r.subscripts[0].constant_term() == 1);
        assert!(p_anti <= p_w && p_w <= p_flow, "{parts:?}");
    }

    #[test]
    fn unanalyzable_pairs_stay_in_one_nest() {
        // Coupled (transposed) subscripts defeat the distance test, so the
        // conservative both-way edges keep the pair together.
        let nest = LoopNest::new(
            "opaque",
            vec![Loop::counted("i", 0, 7), Loop::counted("j", 0, 7)],
            vec![
                ArrayRef::write(0, vec![E::var("i"), E::var("j")]),
                ArrayRef::read(0, vec![E::var("j"), E::var("i")]),
                ArrayRef::read(1, vec![E::var("i"), E::var("j")]),
            ],
        );
        let parts = distribute(&nest);
        assert_eq!(parts.len(), 2, "{parts:?}");
        let together = parts.iter().find(|n| n.body.len() == 2).unwrap();
        assert!(together.body.iter().all(|r| r.array == 0));
    }

    #[test]
    fn distribution_respects_topological_order() {
        // T(i) = X(i); Y(i) = T(i): flow dep forces T's writer before its
        // reader, in that order, but they may be in separate nests.
        let nest = LoopNest::new(
            "seq",
            vec![Loop::counted("i", 0, 15)],
            vec![
                ArrayRef::read(0, vec![E::var("i")]),
                ArrayRef::write(1, vec![E::var("i")]),
                ArrayRef::read(1, vec![E::var("i")]),
                ArrayRef::write(2, vec![E::var("i")]),
            ],
        );
        let parts = distribute(&nest);
        // The writer of array 1 must come no later than its reader.
        let pos_write = parts
            .iter()
            .position(|n| n.body.iter().any(|r| r.array == 1 && r.is_write()))
            .unwrap();
        let pos_read = parts
            .iter()
            .position(|n| n.body.iter().any(|r| r.array == 1 && !r.is_write()))
            .unwrap();
        assert!(pos_write <= pos_read, "{parts:?}");
    }

    #[test]
    fn distribute_then_fuse_roundtrips_addresses() {
        let p = figure2_example(24);
        let q = distribute_in_program(&p, 0);
        assert!(q.nests.len() > p.nests.len());
        assert_eq!(multiset(&p), multiset(&q));
        // Re-fusing adjacent read-only nests is legal and converges back.
        let mut r = q.clone();
        while r.nests.len() > 1 {
            match fuse_in_program(&r, 0) {
                Ok(next) => r = next,
                Err(_) => break,
            }
        }
        assert_eq!(multiset(&p), multiset(&r));
    }

    #[test]
    fn contraction_shrinks_a_fused_temporary() {
        // nest1: T(i) = A(i); nest2: B(i) = T(i). Fused, T is written and
        // read at the same iteration: contractible.
        let mut p = Program::new("ct");
        let a = p.add_array(ArrayDecl::f64("A", vec![64]));
        let t = p.add_array(ArrayDecl::f64("T", vec![64]));
        let b = p.add_array(ArrayDecl::f64("B", vec![64]));
        let l = || vec![Loop::counted("i", 0, 63)];
        p.add_nest(LoopNest::new(
            "w",
            l(),
            vec![
                ArrayRef::read(a, vec![E::var("i")]),
                ArrayRef::write(t, vec![E::var("i")]),
            ],
        ));
        p.add_nest(LoopNest::new(
            "r",
            l(),
            vec![
                ArrayRef::read(t, vec![E::var("i")]),
                ArrayRef::write(b, vec![E::var("i")]),
            ],
        ));
        // Before fusion, contraction must refuse (two nests use T).
        assert!(contract_array(&p, t).is_err());
        let fused = fuse_in_program(&p, 0).unwrap();
        let contracted = contract_array(&fused, t).unwrap();
        assert_eq!(contracted.arrays[t].dims, vec![1]);
        // The temporary's footprint dropped from 512 bytes to 8.
        assert_eq!(contracted.arrays[t].size_bytes(), 8);
        contracted.validate().unwrap();
    }

    #[test]
    fn contraction_refuses_stencil_temporaries() {
        // T is read at offset -1: a real array, not contractible.
        let mut p = Program::new("ct2");
        let t = p.add_array(ArrayDecl::f64("T", vec![64]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("i", 1, 62)],
            vec![
                ArrayRef::write(t, vec![E::var("i")]),
                ArrayRef::read(t, vec![E::var_plus("i", -1)]),
            ],
        ));
        assert!(contract_array(&p, t).is_err());
    }

    #[test]
    fn contraction_refuses_read_before_write() {
        let mut p = Program::new("ct3");
        let t = p.add_array(ArrayDecl::f64("T", vec![64]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("i", 0, 63)],
            vec![
                ArrayRef::read(t, vec![E::var("i")]),
                ArrayRef::write(t, vec![E::var("i")]),
            ],
        ));
        assert!(contract_array(&p, t).is_err());
    }
}
