//! Line-oriented serialization of [`Case`]s: the regression-corpus file
//! format and the `mlc-serve` wire format.
//!
//! Shrunk fuzz reproducers are committed under `tests/corpus/*.case` and
//! replayed by the tier-1 suite forever, and the same text is what clients
//! POST to the `mlc-serve` HTTP endpoints (`docs/SERVING.md`). The format
//! is deliberately hand-editable — whitespace-separated fields, one
//! construct per line, `#` comments — and restricted to what the
//! generators produce: constant loop bounds, affine subscripts, LRU
//! replacement.
//!
//! ```text
//! # severe-count mismatch, found by seed 1234, shrunk from 4a/3n/14r/3L
//! seed 1234
//! oracle severe-count-differential
//! level 1024 32 1 6
//! level 8192 64 1 50
//! array A 8 16,18 0,0 32
//! nest n0
//! loop i 2 9 1
//! ref r 0 0,i,1;3
//! end
//! ```
//!
//! `array` fields are name, element size, comma-joined extents, comma-joined
//! intra-variable pads, and the inter-variable pad in bytes. A subscript is
//! `constant[,var,coeff]...`; subscripts are `;`-joined on the `ref` line.
//!
//! An optional `layout <array-index> morton <word>` line (after the array
//! declarations) switches that array to a generalized Morton layout with
//! the given comma-joined interleave word (`docs/LAYOUTS.md`); arrays
//! without a `layout` line stay row-of-columns linear.

use crate::case::Case;
use crate::expr::AffineExpr;
use crate::layout::LayoutFamily;
use crate::nest::{Loop, LoopNest};
use crate::{ArrayDecl, ArrayRef, Program};
use mlc_cache_sim::{CacheConfig, HierarchyConfig, ReplacementPolicy};
use std::path::Path;

/// Serialize a case (with the oracle that fired on it, when known).
///
/// Errors when the case uses a shape the format cannot express — today
/// that is only non-constant loop bounds.
pub fn write_case(case: &Case, oracle: Option<&str>) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(&format!(
        "# mlc-fuzz reproducer ({})\n",
        case.size_summary()
    ));
    out.push_str(&format!("seed {}\n", case.seed));
    out.push_str(&format!("program {}\n", case.program.name));
    if let Some(o) = oracle {
        out.push_str(&format!("oracle {o}\n"));
    }
    for (c, &pen) in case
        .hierarchy
        .levels
        .iter()
        .zip(&case.hierarchy.miss_penalty)
    {
        out.push_str(&format!(
            "level {} {} {} {}\n",
            c.size, c.line, c.associativity, pen
        ));
    }
    for (a, &pad) in case.program.arrays.iter().zip(&case.pads) {
        out.push_str(&format!(
            "array {} {} {} {} {}\n",
            a.name,
            a.elem_size,
            join(&a.dims),
            join(&a.dim_pad),
            pad
        ));
    }
    for (i, fam) in case.families.iter().enumerate() {
        if let LayoutFamily::Morton(word) = fam {
            out.push_str(&format!("layout {i} morton {}\n", join(word)));
        }
    }
    for nest in &case.program.nests {
        out.push_str(&format!("nest {}\n", nest.name));
        for l in &nest.loops {
            let (lo, hi) = const_bounds(l).ok_or_else(|| {
                format!(
                    "loop {} of nest {} has non-constant bounds",
                    l.var, nest.name
                )
            })?;
            out.push_str(&format!("loop {} {} {} {}\n", l.var, lo, hi, l.step));
        }
        for r in &nest.body {
            let subs: Vec<String> = r.subscripts.iter().map(expr_to_string).collect();
            out.push_str(&format!(
                "ref {} {} {}\n",
                if r.is_write() { "w" } else { "r" },
                r.array,
                subs.join(";")
            ));
        }
        out.push_str("end\n");
    }
    Ok(out)
}

/// Parse a case; returns it with the recorded oracle name, if any.
pub fn parse_case(text: &str) -> Result<(Case, Option<String>), String> {
    let mut seed = 0u64;
    let mut oracle = None;
    let mut levels: Vec<CacheConfig> = Vec::new();
    let mut penalties: Vec<f64> = Vec::new();
    let mut program = Program::new("corpus");
    let mut pads: Vec<u64> = Vec::new();
    let mut families: Vec<LayoutFamily> = Vec::new();
    let mut nest: Option<(String, Vec<Loop>, Vec<ArrayRef>)> = None;
    let mut names: Vec<String> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", ln + 1);
        let mut f = line.split_whitespace();
        let keyword = f.next().unwrap();
        let rest: Vec<&str> = f.collect();
        match keyword {
            "seed" => {
                seed = field(&rest, 0, "seed").map_err(err)?;
            }
            "program" => {
                program.name = rest
                    .first()
                    .ok_or_else(|| err("program needs a name".into()))?
                    .to_string();
            }
            "oracle" => {
                oracle = Some(
                    rest.first()
                        .ok_or_else(|| err("oracle needs a name".into()))?
                        .to_string(),
                );
            }
            "level" => {
                let size: usize = field(&rest, 0, "size").map_err(&err)?;
                let l: usize = field(&rest, 1, "line").map_err(&err)?;
                let assoc: usize = field(&rest, 2, "associativity").map_err(&err)?;
                let pen: f64 = field(&rest, 3, "penalty").map_err(&err)?;
                // Pre-check the constructor invariants so a hand-edited
                // file yields a parse error, not a panic.
                if !size.is_power_of_two()
                    || !l.is_power_of_two()
                    || l == 0
                    || l > size
                    || assoc == 0
                    || !(size / l).is_multiple_of(assoc)
                {
                    return Err(err(format!("illegal cache geometry {size}/{l}/{assoc}")));
                }
                levels.push(CacheConfig::new(size, l, assoc, ReplacementPolicy::Lru));
                penalties.push(pen);
            }
            "array" => {
                let name = *rest
                    .first()
                    .ok_or_else(|| err("array needs a name".into()))?;
                let elem: usize = field(&rest, 1, "element size").map_err(&err)?;
                let dims = list(&rest, 2, "dims").map_err(&err)?;
                let dim_pad: Vec<usize> = list(&rest, 3, "dim pads").map_err(&err)?;
                let pad: u64 = field(&rest, 4, "inter-pad").map_err(&err)?;
                if elem == 0 || dims.is_empty() || dims.contains(&0) {
                    return Err(err(format!("array {name}: illegal shape")));
                }
                if names.iter().any(|n| n == name) {
                    return Err(err(format!("duplicate array name {name}")));
                }
                names.push(name.to_string());
                let mut decl = ArrayDecl::new(name, elem, dims);
                if dim_pad.len() != decl.rank() {
                    return Err(err(format!(
                        "array {name}: {} dim pads for rank {}",
                        dim_pad.len(),
                        decl.rank()
                    )));
                }
                for (d, p) in dim_pad.into_iter().enumerate() {
                    decl.set_dim_pad(d, p);
                }
                program.add_array(decl);
                pads.push(pad);
            }
            "layout" => {
                let array: usize = field(&rest, 0, "array index").map_err(&err)?;
                if array >= program.arrays.len() {
                    return Err(err(format!(
                        "layout names array {array} before its declaration"
                    )));
                }
                let family = *rest
                    .get(1)
                    .ok_or_else(|| err("layout needs a family".into()))?;
                match family {
                    "morton" => {
                        let word: Vec<u8> = list(&rest, 2, "interleave word").map_err(&err)?;
                        families.resize(program.arrays.len(), LayoutFamily::Linear);
                        families[array] = LayoutFamily::Morton(word);
                    }
                    other => return Err(err(format!("unknown layout family {other}"))),
                }
            }
            "nest" => {
                if nest.is_some() {
                    return Err(err("nest without closing `end`".into()));
                }
                let name = *rest
                    .first()
                    .ok_or_else(|| err("nest needs a name".into()))?;
                nest = Some((name.to_string(), Vec::new(), Vec::new()));
            }
            "loop" => {
                let (_, loops, _) = nest
                    .as_mut()
                    .ok_or_else(|| err("loop outside a nest".into()))?;
                let var = *rest.first().ok_or_else(|| err("loop needs a var".into()))?;
                let lo: i64 = field(&rest, 1, "lower bound").map_err(&err)?;
                let hi: i64 = field(&rest, 2, "upper bound").map_err(&err)?;
                let step: i64 = field(&rest, 3, "step").map_err(&err)?;
                let mut l = Loop::counted(var, lo, hi);
                l.step = step;
                loops.push(l);
            }
            "ref" => {
                let (_, _, body) = nest
                    .as_mut()
                    .ok_or_else(|| err("ref outside a nest".into()))?;
                let kind = *rest.first().ok_or_else(|| err("ref needs r|w".into()))?;
                let array: usize = field(&rest, 1, "array index").map_err(&err)?;
                let subs_txt = rest
                    .get(2)
                    .ok_or_else(|| err("ref needs subscripts".into()))?;
                let subs: Vec<AffineExpr> = subs_txt
                    .split(';')
                    .map(parse_expr)
                    .collect::<Result<_, _>>()
                    .map_err(&err)?;
                body.push(match kind {
                    "w" => ArrayRef::write(array, subs),
                    "r" => ArrayRef::read(array, subs),
                    other => return Err(err(format!("unknown access kind {other}"))),
                });
            }
            "end" => {
                let (name, loops, body) = nest
                    .take()
                    .ok_or_else(|| err("end without a nest".into()))?;
                program.add_nest(LoopNest::new(name, loops, body));
            }
            other => return Err(err(format!("unknown keyword {other}"))),
        }
    }
    if nest.is_some() {
        return Err("unterminated nest at end of file".to_string());
    }
    if levels.is_empty() {
        return Err("case declares no cache levels".to_string());
    }
    for (i, w) in levels.windows(2).enumerate() {
        let (inner, outer) = (w[0], w[1]);
        if outer.size < inner.size
            || !outer.size.is_multiple_of(inner.size)
            || outer.line < inner.line
        {
            return Err(format!(
                "levels {} and {} violate the nesting invariants",
                i + 1,
                i + 2
            ));
        }
    }
    if !families.is_empty() {
        families.resize(program.arrays.len(), LayoutFamily::Linear);
    }
    let case = Case {
        seed,
        program,
        pads,
        families,
        hierarchy: HierarchyConfig::new(levels, penalties),
    };
    case.validate()?;
    Ok((case, oracle))
}

/// Read and parse one corpus file.
pub fn read_case(path: &Path) -> Result<(Case, Option<String>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_case(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn join<T: std::fmt::Display>(xs: &[T]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn field<T: std::str::FromStr>(rest: &[&str], i: usize, what: &str) -> Result<T, String> {
    rest.get(i)
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}: {}", rest[i]))
}

fn list<T: std::str::FromStr>(rest: &[&str], i: usize, what: &str) -> Result<Vec<T>, String> {
    rest.get(i)
        .ok_or_else(|| format!("missing {what}"))?
        .split(',')
        .map(|x| x.parse().map_err(|_| format!("bad {what} entry: {x}")))
        .collect()
}

/// `constant[,var,coeff]...` — e.g. `-1,i,1` for `i - 1`, `3` for `3`.
fn expr_to_string(e: &AffineExpr) -> String {
    let mut s = e.constant_term().to_string();
    for (v, c) in e.terms() {
        s.push_str(&format!(",{v},{c}"));
    }
    s
}

fn parse_expr(text: &str) -> Result<AffineExpr, String> {
    let parts: Vec<&str> = text.split(',').collect();
    if parts.len() % 2 != 1 {
        return Err(format!("subscript {text} is not constant[,var,coeff]..."));
    }
    let c: i64 = parts[0]
        .parse()
        .map_err(|_| format!("bad subscript constant {}", parts[0]))?;
    let mut e = AffineExpr::constant(c);
    for pair in parts[1..].chunks(2) {
        let coeff: i64 = pair[1]
            .parse()
            .map_err(|_| format!("bad coefficient {}", pair[1]))?;
        e = e.add(&AffineExpr::scaled(pair[0], coeff));
    }
    Ok(e)
}

fn const_bounds(l: &Loop) -> Option<(i64, i64)> {
    if l.lowers.len() == 1
        && l.uppers.len() == 1
        && l.lowers[0].is_constant()
        && l.uppers[0].is_constant()
    {
        Some((l.lowers[0].constant_term(), l.uppers[0].constant_term()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::CaseConfig;

    #[test]
    fn generated_cases_round_trip() {
        for seed in 0..60 {
            let case = Case::generate(seed, &CaseConfig::default());
            let text = write_case(&case, Some("fastpath-parity")).unwrap();
            let (back, oracle) =
                parse_case(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(back, case, "seed {seed}");
            assert_eq!(oracle.as_deref(), Some("fastpath-parity"));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let case = Case::generate(4, &CaseConfig::default());
        let text = write_case(&case, None).unwrap();
        let noisy = format!("# header\n\n{text}\n# trailer\n");
        let (back, oracle) = parse_case(&noisy).unwrap();
        assert_eq!(back, case);
        assert_eq!(oracle, None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_case("").is_err(), "no levels");
        assert!(parse_case("level 1000 32 1 6\n").is_err(), "size not a power of two is a panic domain; 1000 parses but construction must be caught upstream"
        );
    }

    #[test]
    fn parse_reports_unknown_keyword_with_line() {
        let err = parse_case("level 1024 32 1 6\nfrobnicate\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn morton_layout_lines_round_trip() {
        for seed in 0..30 {
            let mut case = Case::generate(seed, &CaseConfig::default());
            case.families = case
                .program
                .arrays
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    if i % 2 == 0 {
                        LayoutFamily::morton_round_robin(a)
                    } else {
                        LayoutFamily::Linear
                    }
                })
                .collect();
            case.validate().unwrap();
            let text = write_case(&case, Some("layout-parity")).unwrap();
            let (back, oracle) =
                parse_case(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(back, case, "seed {seed}");
            assert_eq!(oracle.as_deref(), Some("layout-parity"));
        }
    }

    #[test]
    fn layout_line_is_validated() {
        let header = "level 1024 32 1 6\narray A 8 8,8 0,0 0\n";
        // Word too small for the extents.
        let err = parse_case(&format!("{header}layout 0 morton 0,1\n")).unwrap_err();
        assert!(err.contains("array A"), "{err}");
        // Unknown family name.
        let err = parse_case(&format!("{header}layout 0 hilbert 0,1\n")).unwrap_err();
        assert!(err.contains("unknown layout family"), "{err}");
        // Array index out of range.
        let err = parse_case(&format!("{header}layout 3 morton 0,1\n")).unwrap_err();
        assert!(err.contains("before its declaration"), "{err}");
        // A valid word parses and materializes a Morton layout.
        let (case, _) = parse_case(&format!("{header}layout 0 morton 0,1,0,1,0,1\n")).unwrap();
        assert!(!case.layout().fully_affine());
    }

    #[test]
    fn negative_offsets_survive_round_trip() {
        let e = AffineExpr::var_plus("i", -2);
        let s = expr_to_string(&e);
        assert_eq!(parse_expr(&s).unwrap(), e);
    }
}
