//! Whole programs: a shared set of arrays plus a sequence of loop nests.
//!
//! This mirrors the paper's experimental setup after the SUIF pre-passes
//! promote every optimizable variable into "a single global variable
//! containing all of the variables to be optimized" (Section 6.1): the
//! program owns the declarations, a [`crate::layout::DataLayout`] assigns
//! them base addresses, and nests execute in order.

use crate::array::{ArrayDecl, ArrayId};
use crate::nest::LoopNest;

/// A program: arrays + nests, executed nest 0 first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name for reports.
    pub name: String,
    /// Declared arrays (the optimizable variables).
    pub arrays: Vec<ArrayDecl>,
    /// Loop nests in execution order.
    pub nests: Vec<LoopNest>,
}

impl Program {
    /// An empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            arrays: Vec::new(),
            nests: Vec::new(),
        }
    }

    /// Declare an array, returning its id.
    pub fn add_array(&mut self, decl: ArrayDecl) -> ArrayId {
        assert!(
            self.arrays.iter().all(|a| a.name != decl.name),
            "duplicate array name {}",
            decl.name
        );
        self.arrays.push(decl);
        self.arrays.len() - 1
    }

    /// Append a nest.
    pub fn add_nest(&mut self, nest: LoopNest) -> usize {
        self.nests.push(nest);
        self.nests.len() - 1
    }

    /// Find an array by name.
    pub fn array_id(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name)
    }

    /// The declaration of an array.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id]
    }

    /// Per-array ranks (for nest validation).
    pub fn ranks(&self) -> Vec<usize> {
        self.arrays.iter().map(|a| a.rank()).collect()
    }

    /// Validate every nest against the declarations.
    pub fn validate(&self) -> Result<(), String> {
        let ranks = self.ranks();
        for nest in &self.nests {
            nest.validate(&ranks)
                .map_err(|e| format!("nest {}: {e}", nest.name))?;
        }
        Ok(())
    }

    /// Total references executed, when all nests have constant bounds.
    pub fn const_references(&self) -> Option<u64> {
        let mut total = 0u64;
        for n in &self.nests {
            total = total.checked_add(n.const_iterations()? * n.body.len() as u64)?;
        }
        Some(total)
    }

    /// Apply intra-variable padding to an array's leading dimension,
    /// returning a modified copy of the program (Section 6.1 applies this
    /// to ADI32 and ERLE64 before the inter-variable passes).
    pub fn with_dim_pad(&self, id: ArrayId, dim: usize, pad: usize) -> Self {
        let mut p = self.clone();
        p.arrays[id].set_dim_pad(dim, pad);
        p
    }
}

/// Build the paper's Figure 2 example program:
///
/// ```fortran
/// real A(N,N), B(N,N), C(N,N)
/// do j = 2,N-1            ! loop nest 1
///   do i = 1,N
///     .. = A(i,j) + A(i,j+1)
///     .. = B(i,j) + B(i,j+1)
///     .. = C(i,j) + C(i,j+1)
/// do j = 2,N-1            ! loop nest 2
///   do i = 1,N
///     .. = B(i,j-1) + B(i,j) + B(i,j+1)
///     .. = C(i,j)
/// ```
///
/// Indices are shifted to 0-based: `j = 1..=n-2`, `i = 0..=n-1`.
/// This program is the running example for PAD (Figure 3), GROUPPAD
/// (Figure 4), L2MAXPAD (Figure 5), and the fusion accounting (Figures 6-7).
pub fn figure2_example(n: usize) -> Program {
    use crate::expr::AffineExpr as E;
    use crate::nest::Loop;
    use crate::reference::ArrayRef;

    let mut p = Program::new("figure2");
    let a = p.add_array(ArrayDecl::f64("A", vec![n, n]));
    let b = p.add_array(ArrayDecl::f64("B", vec![n, n]));
    let c = p.add_array(ArrayDecl::f64("C", vec![n, n]));

    let loops = || {
        vec![
            Loop::counted("j", 1, n as i64 - 2),
            Loop::counted("i", 0, n as i64 - 1),
        ]
    };
    let ij = |x: i64| vec![E::var("i"), E::var_plus("j", x)];

    p.add_nest(LoopNest::new(
        "nest1",
        loops(),
        vec![
            ArrayRef::read(a, ij(0)),
            ArrayRef::read(a, ij(1)),
            ArrayRef::read(b, ij(0)),
            ArrayRef::read(b, ij(1)),
            ArrayRef::read(c, ij(0)),
            ArrayRef::read(c, ij(1)),
        ],
    ));
    p.add_nest(LoopNest::new(
        "nest2",
        loops(),
        vec![
            ArrayRef::read(b, ij(-1)),
            ArrayRef::read(b, ij(0)),
            ArrayRef::read(b, ij(1)),
            ArrayRef::read(c, ij(0)),
        ],
    ));
    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape() {
        let p = figure2_example(512);
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.nests.len(), 2);
        assert_eq!(p.nests[0].body.len(), 6);
        assert_eq!(p.nests[1].body.len(), 4);
        p.validate().unwrap();
        // (N-2)*N iterations per nest; 6 + 4 refs.
        let iters = (512 - 2) * 512u64;
        assert_eq!(p.const_references(), Some(iters * 10));
    }

    #[test]
    fn array_lookup_by_name() {
        let p = figure2_example(16);
        assert_eq!(p.array_id("B"), Some(1));
        assert_eq!(p.array_id("Z"), None);
        assert_eq!(p.array(2).name, "C");
    }

    #[test]
    #[should_panic(expected = "duplicate array name")]
    fn duplicate_names_rejected() {
        let mut p = Program::new("t");
        p.add_array(ArrayDecl::f64("A", vec![4]));
        p.add_array(ArrayDecl::f64("A", vec![4]));
    }

    #[test]
    fn with_dim_pad_leaves_original_untouched() {
        let p = figure2_example(16);
        let q = p.with_dim_pad(0, 0, 3);
        assert_eq!(p.arrays[0].dim_pad[0], 0);
        assert_eq!(q.arrays[0].dim_pad[0], 3);
    }
}
