//! Exact address-trace generation.
//!
//! Walks a program's iteration spaces in execution order and emits one
//! [`Access`] per array reference into any [`AccessSink`] — usually a
//! [`mlc_cache_sim::Hierarchy`]. This reproduces the paper's trace-driven
//! cache simulations.
//!
//! Nests are compiled first: every reference's byte address is affine in the
//! loop variables (see [`crate::layout::DataLayout::address_expr`]), so the
//! walker keeps per-reference partial sums per loop level and the innermost
//! loop advances each reference by a constant stride. The figure-11 sweep
//! pushes several billion accesses through this path, so it allocates
//! nothing per iteration.

use crate::layout::DataLayout;
use crate::nest::LoopNest;
use crate::program::Program;
use mlc_cache_sim::stats::MissRateReport;
use mlc_cache_sim::trace::{Access, AccessKind, AccessSink};
use mlc_cache_sim::{Hierarchy, HierarchyConfig};

/// A bound expression resolved to loop-level indices.
#[derive(Debug, Clone)]
struct CompiledExpr {
    constant: i64,
    /// (outer-loop index, coefficient) pairs.
    terms: Vec<(usize, i64)>,
}

impl CompiledExpr {
    #[inline]
    fn eval(&self, vals: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(l, c) in &self.terms {
            acc += c * vals[l];
        }
        acc
    }
}

#[derive(Debug, Clone)]
struct CompiledLoop {
    lowers: Vec<CompiledExpr>,
    uppers: Vec<CompiledExpr>,
    step: i64,
}

impl CompiledLoop {
    #[inline]
    fn bounds(&self, vals: &[i64]) -> (i64, i64) {
        let lo = self.lowers.iter().map(|e| e.eval(vals)).max().unwrap();
        let hi = self.uppers.iter().map(|e| e.eval(vals)).min().unwrap();
        (lo, hi)
    }
}

#[derive(Debug, Clone)]
struct CompiledRef {
    /// Base byte address (constant part of the affine address function).
    base: i64,
    /// Byte stride per loop level, outermost first.
    strides: Vec<i64>,
    kind: AccessKind,
}

/// A nest compiled against a layout, ready to stream.
#[derive(Debug, Clone)]
pub struct CompiledNest {
    loops: Vec<CompiledLoop>,
    refs: Vec<CompiledRef>,
}

impl CompiledNest {
    /// Compile `nest` over `program`'s arrays under `layout`.
    ///
    /// # Panics
    /// Panics if a bound or subscript mentions a variable that is not an
    /// enclosing loop of the nest (run [`Program::validate`] first).
    pub fn new(program: &Program, nest: &LoopNest, layout: &DataLayout) -> Self {
        let var_index = |v: &str| -> usize {
            nest.loop_index(v)
                .unwrap_or_else(|| panic!("variable {v} not bound by nest {}", nest.name))
        };
        let compile_expr = |e: &crate::expr::AffineExpr| CompiledExpr {
            constant: e.constant_term(),
            terms: e.terms().map(|(v, c)| (var_index(v), c)).collect(),
        };
        let loops = nest
            .loops
            .iter()
            .map(|l| {
                assert!(l.step != 0, "zero step in {}", nest.name);
                CompiledLoop {
                    lowers: l.lowers.iter().map(compile_expr).collect(),
                    uppers: l.uppers.iter().map(compile_expr).collect(),
                    step: l.step,
                }
            })
            .collect();
        let refs = nest
            .body
            .iter()
            .map(|r| {
                let addr = layout.address_expr(&program.arrays, r);
                CompiledRef {
                    base: addr.constant_term(),
                    strides: nest.loops.iter().map(|l| addr.coeff(&l.var)).collect(),
                    kind: r.kind,
                }
            })
            .collect();
        Self { loops, refs }
    }

    /// Stream the nest's accesses into `sink`; returns the number emitted.
    pub fn run(&self, sink: &mut impl AccessSink) -> u64 {
        if self.loops.is_empty() {
            for r in &self.refs {
                sink.access(Access {
                    addr: r.base as u64,
                    kind: r.kind,
                });
            }
            return self.refs.len() as u64;
        }
        let depth = self.loops.len();
        let nrefs = self.refs.len();
        // partials[l * nrefs + r] = base + Σ_{k<l} stride_k * v_k for ref r.
        let mut partials = vec![0i64; depth * nrefs];
        for (r, cr) in self.refs.iter().enumerate() {
            partials[r] = cr.base;
        }
        let mut vals = vec![0i64; depth];
        let mut count = 0u64;
        self.walk(0, &mut vals, &mut partials, sink, &mut count);
        count
    }

    fn walk(
        &self,
        level: usize,
        vals: &mut [i64],
        partials: &mut [i64],
        sink: &mut impl AccessSink,
        count: &mut u64,
    ) {
        let nrefs = self.refs.len();
        let depth = self.loops.len();
        let lp = &self.loops[level];
        let (lo, hi) = lp.bounds(&vals[..level]);
        if hi < lo {
            return;
        }
        let (start, step) = if lp.step > 0 {
            (lo, lp.step)
        } else {
            (hi, lp.step)
        };
        let trips = ((hi - lo) / step.abs() + 1) as u64;

        if level == depth - 1 {
            // Innermost loop: advance each reference by its stride.
            if nrefs == 0 {
                *count += 0;
                return;
            }
            let base = &partials[(depth - 1) * nrefs..depth * nrefs];
            let mut cur: Vec<i64> = self
                .refs
                .iter()
                .enumerate()
                .map(|(r, cr)| base[r] + cr.strides[level] * start)
                .collect();
            let deltas: Vec<i64> = self
                .refs
                .iter()
                .map(|cr| cr.strides[level] * step)
                .collect();
            for _ in 0..trips {
                for (r, cr) in self.refs.iter().enumerate() {
                    debug_assert!(cur[r] >= 0, "negative address generated");
                    sink.access(Access {
                        addr: cur[r] as u64,
                        kind: cr.kind,
                    });
                    cur[r] += deltas[r];
                }
            }
            *count += trips * nrefs as u64;
            return;
        }

        let mut v = start;
        for _ in 0..trips {
            vals[level] = v;
            for r in 0..nrefs {
                partials[(level + 1) * nrefs + r] =
                    partials[level * nrefs + r] + self.refs[r].strides[level] * v;
            }
            self.walk(level + 1, vals, partials, sink, count);
            v += step;
        }
    }
}

/// Stream one nest's trace.
pub fn generate_nest(
    program: &Program,
    nest: &LoopNest,
    layout: &DataLayout,
    sink: &mut impl AccessSink,
) -> u64 {
    CompiledNest::new(program, nest, layout).run(sink)
}

/// Stream the whole program's trace in execution order; returns the number
/// of references emitted.
pub fn generate(program: &Program, layout: &DataLayout, sink: &mut impl AccessSink) -> u64 {
    program
        .nests
        .iter()
        .map(|n| generate_nest(program, n, layout, sink))
        .sum()
}

/// Convenience: simulate a program on a cold hierarchy and return the
/// paper-style miss-rate report.
pub fn simulate(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
) -> MissRateReport {
    let mut hier = Hierarchy::new(config.clone());
    generate(program, layout, &mut hier);
    hier.report()
}

/// [`simulate`] with a 3C miss classification attached: every access also
/// drives one fully-associative LRU shadow cache per level, splitting each
/// real miss into compulsory/capacity/conflict. Returns the report plus the
/// loaded classifier (use
/// [`mlc_telemetry::MissClassifier::install_metrics`] to export it).
pub fn simulate_classified(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
) -> (MissRateReport, mlc_telemetry::MissClassifier) {
    let mut hier = Hierarchy::new(config.clone());
    let mut classifier = config.miss_classifier();
    generate(program, layout, &mut hier.probed(&mut classifier));
    (hier.report(), classifier)
}

/// Simulate with `warmup` full program sweeps before counting, then `timed`
/// counted sweeps — the outer "time-step" loop of the iterative kernels.
pub fn simulate_steady(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
    warmup: usize,
    timed: usize,
) -> MissRateReport {
    let mut hier = Hierarchy::new(config.clone());
    for _ in 0..warmup {
        generate(program, layout, &mut hier);
    }
    hier.reset_stats();
    for _ in 0..timed {
        generate(program, layout, &mut hier);
    }
    hier.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayDecl;
    use crate::expr::AffineExpr as E;
    use crate::nest::Loop;
    use crate::program::figure2_example;
    use crate::reference::ArrayRef;
    use mlc_cache_sim::trace::{CountingSink, RecordingSink};

    fn simple_program(n: usize) -> Program {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![n]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("i", 0, n as i64 - 1)],
            vec![ArrayRef::read(a, vec![E::var("i")])],
        ));
        p
    }

    #[test]
    fn sequential_walk_addresses() {
        let p = simple_program(4);
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        let n = generate(&p, &l, &mut rec);
        assert_eq!(n, 4);
        let addrs: Vec<u64> = rec.accesses.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 8, 16, 24]);
    }

    #[test]
    fn body_order_is_program_order() {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![8]));
        let b = p.add_array(ArrayDecl::f64("B", vec![8]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("i", 0, 1)],
            vec![
                ArrayRef::read(a, vec![E::var("i")]),
                ArrayRef::write(b, vec![E::var("i")]),
            ],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        generate(&p, &l, &mut rec);
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        assert_eq!(addrs, vec![0, 64, 8, 72]);
        assert_eq!(rec.accesses[1].kind, AccessKind::Write);
    }

    #[test]
    fn reference_count_matches_const_estimate() {
        let p = figure2_example(64);
        let l = DataLayout::contiguous(&p.arrays);
        let mut c = CountingSink::default();
        let n = generate(&p, &l, &mut c);
        assert_eq!(n, p.const_references().unwrap());
        assert_eq!(c.total, n);
    }

    #[test]
    fn two_level_nest_column_major_order() {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![2, 2]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("j", 0, 1), Loop::counted("i", 0, 1)],
            vec![ArrayRef::read(a, vec![E::var("i"), E::var("j")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        generate(&p, &l, &mut rec);
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        // j outer, i inner, column-major: 0, 8, 16, 24 — perfectly sequential.
        assert_eq!(addrs, vec![0, 8, 16, 24]);
    }

    #[test]
    fn reversed_loop_walks_backward() {
        let mut p = simple_program(4);
        p.nests[0].loops[0].step = -1;
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        generate(&p, &l, &mut rec);
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        assert_eq!(addrs, vec![24, 16, 8, 0]);
    }

    #[test]
    fn triangular_bounds() {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![4, 4]));
        p.add_nest(LoopNest::new(
            "n",
            vec![
                Loop::counted("j", 0, 3),
                Loop::new("i", E::constant(0), E::var("j")),
            ],
            vec![ArrayRef::read(a, vec![E::var("i"), E::var("j")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let mut c = CountingSink::default();
        let n = generate(&p, &l, &mut c);
        assert_eq!(n, 1 + 2 + 3 + 4);
    }

    #[test]
    fn strip_mined_bounds_with_min() {
        // for ii in (0..10 step 4) { for i in ii..=min(ii+3, 9) }
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![10]));
        let mut outer = Loop::counted("ii", 0, 9);
        outer.step = 4;
        let mut inner = Loop::new("i", E::var("ii"), E::var_plus("ii", 3));
        inner.uppers.push(E::constant(9));
        p.add_nest(LoopNest::new(
            "n",
            vec![outer, inner],
            vec![ArrayRef::read(a, vec![E::var("i")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        let n = generate(&p, &l, &mut rec);
        assert_eq!(n, 10); // 4 + 4 + 2
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        assert_eq!(addrs, (0..10).map(|i| i * 8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_emits_nothing() {
        let mut p = simple_program(4);
        p.nests[0].loops[0] = Loop::counted("i", 3, 2);
        let l = DataLayout::contiguous(&p.arrays);
        let mut c = CountingSink::default();
        assert_eq!(generate(&p, &l, &mut c), 0);
    }

    #[test]
    fn simulate_figure2_contiguous_has_severe_conflicts() {
        // With N a multiple of the cache column capacity, the contiguous
        // layout makes all three arrays coincide on the cache: L1 miss rate
        // should be near 100% (every access conflicts).
        let n = 512; // 512*512*8 = 2 MiB arrays; bases 0, 2 MiB, 4 MiB
        let p = figure2_example(n);
        let l = DataLayout::contiguous(&p.arrays);
        let cfg = HierarchyConfig::ultrasparc_i();
        let r = simulate(&p, &l, &cfg);
        // Nest 1: all six refs ping-pong (rate ~1); nest 2 only B(i,j)/C(i,j)
        // conflict, so the blended rate sits near (6·1 + 2·1 + 2·¼)/10.
        assert!(
            r.miss_rate(0) > 0.8,
            "expected severe conflicts, got L1 rate {}",
            r.miss_rate(0)
        );
    }

    #[test]
    fn steady_state_resets_warmup_counts() {
        let p = simple_program(64);
        let l = DataLayout::contiguous(&p.arrays);
        let cfg = HierarchyConfig::ultrasparc_i();
        let r = simulate_steady(&p, &l, &cfg, 1, 1);
        // Array is 512 bytes: fits L1; second sweep all hits.
        assert_eq!(r.levels[0].misses(), 0);
        assert_eq!(r.total_references, 64);
    }
}
