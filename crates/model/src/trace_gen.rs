//! Exact address-trace generation.
//!
//! Walks a program's iteration spaces in execution order and emits one
//! [`Access`] per array reference into any [`AccessSink`] — usually a
//! [`mlc_cache_sim::Hierarchy`]. This reproduces the paper's trace-driven
//! cache simulations.
//!
//! Nests are compiled first: every reference's byte address is affine in the
//! loop variables (see [`crate::layout::DataLayout::address_expr`]), so the
//! walker keeps per-reference partial sums per loop level and the innermost
//! loop advances each reference by a constant stride. The figure-11 sweep
//! pushes several billion accesses through this path, so it allocates
//! nothing per iteration.

use crate::layout::{morton_index, DataLayout, LayoutFamily};
use crate::nest::LoopNest;
use crate::program::Program;
use mlc_cache_sim::stats::MissRateReport;
use mlc_cache_sim::trace::{Access, AccessKind, AccessSink, NestDescriptor, RefDescriptor, Run};
use mlc_cache_sim::{Hierarchy, HierarchyConfig};

/// Why a nest could not be compiled or streamed.
///
/// The historical API `panic!`ed on these; the panicking entry points
/// ([`CompiledNest::new`], [`generate`], [`simulate`], ...) still do, with
/// the same messages, but every condition is now a typed, matchable error
/// surfaced by the `try_*` variants. Differential-testing harnesses run
/// *generated* (untrusted) programs through the model, and a malformed
/// case must come back as a reportable value, not an abort — the same
/// motivation as `mlc-core`'s `PadError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A bound or subscript mentions a variable no enclosing loop binds.
    UnboundVariable {
        /// Nest name.
        nest: String,
        /// The unbound variable.
        var: String,
    },
    /// A loop has step 0 and would never terminate.
    ZeroStep {
        /// Nest name.
        nest: String,
        /// The offending loop variable.
        var: String,
    },
    /// A loop has no lower or no upper bound expression.
    EmptyBounds {
        /// Nest name.
        nest: String,
        /// The offending loop variable.
        var: String,
    },
    /// A reference provably generates a negative byte address (a layout
    /// bug): detected statically for constant-bound nests, or at the first
    /// offending innermost-loop invocation otherwise.
    NegativeAddress {
        /// Nest name.
        nest: String,
        /// Referenced array's name.
        array: String,
        /// The provable minimum address (negative).
        min: i64,
    },
    /// A subscript of a Morton-layout reference leaves the interleave
    /// word's per-dimension bit envelope `[0, 2^bits)` — bit interleaving
    /// has no meaning outside it. Detected statically for constant-bound
    /// nests, at the offending innermost invocation otherwise.
    MortonOutOfRange {
        /// Nest name.
        nest: String,
        /// Referenced array's name.
        array: String,
        /// Offending dimension.
        dim: usize,
        /// The out-of-envelope subscript value.
        value: i64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UnboundVariable { nest, var } => {
                write!(f, "variable {var} not bound by nest {nest}")
            }
            TraceError::ZeroStep { nest, var } => {
                write!(f, "nest {nest}: loop {var} has zero step")
            }
            TraceError::EmptyBounds { nest, var } => {
                write!(f, "nest {nest}: loop {var} has no bound expressions")
            }
            TraceError::NegativeAddress { nest, array, min } => write!(
                f,
                "nest {nest}: reference to array {array} generates a negative \
                 byte address (minimum {min}); check the data layout's base \
                 offsets and subscript bounds"
            ),
            TraceError::MortonOutOfRange {
                nest,
                array,
                dim,
                value,
            } => write!(
                f,
                "nest {nest}: reference to morton-layout array {array} \
                 generates subscript {value} on dimension {dim}, outside the \
                 interleave word's bit envelope; check subscript offsets \
                 against the array extents"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A bound expression resolved to loop-level indices.
#[derive(Debug, Clone, PartialEq)]
struct CompiledExpr {
    constant: i64,
    /// (outer-loop index, coefficient) pairs.
    terms: Vec<(usize, i64)>,
}

impl CompiledExpr {
    #[inline]
    fn eval(&self, vals: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(l, c) in &self.terms {
            acc += c * vals[l];
        }
        acc
    }
}

#[derive(Debug, Clone, PartialEq)]
struct CompiledLoop {
    lowers: Vec<CompiledExpr>,
    uppers: Vec<CompiledExpr>,
    step: i64,
}

impl CompiledLoop {
    #[inline]
    fn bounds(&self, vals: &[i64]) -> (i64, i64) {
        let lo = self.lowers.iter().map(|e| e.eval(vals)).max().unwrap();
        let hi = self.uppers.iter().map(|e| e.eval(vals)).min().unwrap();
        (lo, hi)
    }
}

/// Compiled form of a reference into a Morton-layout array: the address is
/// `base + morton_index(word, idx) * elem`, where each dimension's index is
/// affine in the loop variables. Affine in every *dimension*, not in the
/// address — which is why these refs bypass the single-stride machinery.
#[derive(Debug, Clone, PartialEq)]
struct CompiledMorton {
    /// The interleave word (LSB-first dimension ids).
    word: Vec<u8>,
    /// Per-dimension bit budget; indices must stay in `[0, 1 << bits[d])`.
    bits: Vec<u32>,
    /// Constant part of each dimension's index function.
    dim_base: Vec<i64>,
    /// `dim_strides[d][l]`: dimension `d`'s index coefficient of loop `l`.
    dim_strides: Vec<Vec<i64>>,
    /// Array base byte address.
    base: i64,
    /// Element size in bytes.
    elem: i64,
}

impl CompiledMorton {
    /// Byte address for the given per-dimension index values.
    #[inline]
    fn addr(&self, idx: &[i64]) -> i64 {
        self.base + morton_index(&self.word, idx) * self.elem
    }
}

#[derive(Debug, Clone, PartialEq)]
struct CompiledRef {
    /// Base byte address (constant part of the affine address function).
    /// For Morton refs this is the array base; the full address comes from
    /// `morton`.
    base: i64,
    /// Byte stride per loop level, outermost first (all zero for Morton
    /// refs — their addresses are not affine in the loop variables).
    strides: Vec<i64>,
    kind: AccessKind,
    /// Array name, for diagnostics.
    label: String,
    /// Present iff the referenced array uses a Morton family.
    morton: Option<CompiledMorton>,
}

/// A nest compiled against a layout, ready to stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNest {
    name: String,
    loops: Vec<CompiledLoop>,
    refs: Vec<CompiledRef>,
}

impl CompiledNest {
    /// Compile `nest` over `program`'s arrays under `layout`.
    ///
    /// # Panics
    /// Panics if a bound or subscript mentions a variable that is not an
    /// enclosing loop of the nest (run [`Program::validate`] first), or if
    /// the nest provably generates a negative byte address (a layout bug).
    /// Use [`CompiledNest::try_new`] to get the condition as a value.
    pub fn new(program: &Program, nest: &LoopNest, layout: &DataLayout) -> Self {
        Self::try_new(program, nest, layout).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`CompiledNest::new`]: every malformed-nest condition
    /// comes back as a [`TraceError`].
    pub fn try_new(
        program: &Program,
        nest: &LoopNest,
        layout: &DataLayout,
    ) -> Result<Self, TraceError> {
        let var_index = |v: &str| -> Result<usize, TraceError> {
            nest.loop_index(v)
                .ok_or_else(|| TraceError::UnboundVariable {
                    nest: nest.name.clone(),
                    var: v.to_string(),
                })
        };
        let compile_expr = |e: &crate::expr::AffineExpr| -> Result<CompiledExpr, TraceError> {
            Ok(CompiledExpr {
                constant: e.constant_term(),
                terms: e
                    .terms()
                    .map(|(v, c)| Ok((var_index(v)?, c)))
                    .collect::<Result<_, TraceError>>()?,
            })
        };
        let mut loops = Vec::with_capacity(nest.loops.len());
        for l in &nest.loops {
            if l.step == 0 {
                return Err(TraceError::ZeroStep {
                    nest: nest.name.clone(),
                    var: l.var.clone(),
                });
            }
            if l.lowers.is_empty() || l.uppers.is_empty() {
                return Err(TraceError::EmptyBounds {
                    nest: nest.name.clone(),
                    var: l.var.clone(),
                });
            }
            loops.push(CompiledLoop {
                lowers: l
                    .lowers
                    .iter()
                    .map(compile_expr)
                    .collect::<Result<_, _>>()?,
                uppers: l
                    .uppers
                    .iter()
                    .map(compile_expr)
                    .collect::<Result<_, _>>()?,
                step: l.step,
            });
        }
        let mut refs = Vec::with_capacity(nest.body.len());
        for r in &nest.body {
            let decl = &program.arrays[r.array];
            if let LayoutFamily::Morton(word) = layout.family(r.array) {
                // Compile each dimension's subscript independently: the
                // address is non-affine, but every dimension index is.
                let mut dim_base = Vec::with_capacity(decl.rank());
                let mut dim_strides = Vec::with_capacity(decl.rank());
                for s in &r.subscripts {
                    for (v, _) in s.terms() {
                        var_index(v)?;
                    }
                    dim_base.push(s.constant_term());
                    dim_strides.push(
                        nest.loops
                            .iter()
                            .map(|l| s.coeff(&l.var))
                            .collect::<Vec<i64>>(),
                    );
                }
                let fam = LayoutFamily::Morton(word.clone());
                refs.push(CompiledRef {
                    base: layout.base(r.array) as i64,
                    strides: vec![0; nest.loops.len()],
                    kind: r.kind,
                    label: decl.name.clone(),
                    morton: Some(CompiledMorton {
                        word: word.clone(),
                        bits: fam.dim_bits(decl.rank()),
                        dim_base,
                        dim_strides,
                        base: layout.base(r.array) as i64,
                        elem: decl.elem_size as i64,
                    }),
                });
                continue;
            }
            let addr = layout.address_expr(&program.arrays, r);
            let mut strides = Vec::with_capacity(nest.loops.len());
            for l in &nest.loops {
                strides.push(addr.coeff(&l.var));
            }
            for (v, _) in addr.terms() {
                var_index(v)?; // subscript vars must be loop variables
            }
            refs.push(CompiledRef {
                base: addr.constant_term(),
                strides,
                kind: r.kind,
                label: decl.name.clone(),
                morton: None,
            });
        }
        let compiled = Self {
            name: nest.name.clone(),
            loops,
            refs,
        };
        compiled.validate_min_addresses()?;
        Ok(compiled)
    }

    /// Static negative-address check: when every loop bound is a constant
    /// (the rectangular nests all experiments use), the minimum byte address
    /// each reference can generate is computable exactly from bounds ×
    /// strides, so a layout that would emit a negative address is rejected
    /// here — at compile time, in release builds too — instead of silently
    /// wrapping to a huge `u64` and corrupting miss counts. Nests with
    /// outer-variable-dependent bounds (triangular, strip-mined) are skipped
    /// here because interval reasoning over-approximates them; they are
    /// still covered exactly by the endpoint check in the innermost walk.
    fn validate_min_addresses(&self) -> Result<(), TraceError> {
        let mut ranges: Vec<(i64, i64)> = Vec::with_capacity(self.loops.len());
        for lp in &self.loops {
            let constant_only = lp
                .lowers
                .iter()
                .chain(&lp.uppers)
                .all(|e| e.terms.is_empty());
            if !constant_only {
                return Ok(());
            }
            let lo = lp.lowers.iter().map(|e| e.constant).max().unwrap();
            let hi = lp.uppers.iter().map(|e| e.constant).min().unwrap();
            if hi < lo {
                return Ok(()); // provably empty loop: the nest emits nothing
            }
            // The values actually visited are lo, lo+|step|, ..;
            // the extreme reachable values are exact for constant bounds.
            let last = lo + (hi - lo) / lp.step.abs() * lp.step.abs();
            ranges.push((lo, last));
        }
        for r in &self.refs {
            if let Some(m) = &r.morton {
                // Exact per-dimension interval check: each dimension index
                // is affine in the loop values, so its extremes over a
                // rectangular space come from per-loop endpoint picks.
                for d in 0..m.dim_base.len() {
                    let mut min = m.dim_base[d] as i128;
                    let mut max = min;
                    for (l, &(lo, hi)) in ranges.iter().enumerate() {
                        let s = m.dim_strides[d][l] as i128;
                        min += (s * lo as i128).min(s * hi as i128);
                        max += (s * lo as i128).max(s * hi as i128);
                    }
                    let limit = 1i128 << m.bits[d];
                    if min < 0 || max >= limit {
                        return Err(TraceError::MortonOutOfRange {
                            nest: self.name.clone(),
                            array: r.label.clone(),
                            dim: d,
                            value: if min < 0 { min as i64 } else { max as i64 },
                        });
                    }
                }
                continue;
            }
            let mut min = r.base as i128;
            for (l, &(lo, hi)) in ranges.iter().enumerate() {
                let s = r.strides[l] as i128;
                min += (s * lo as i128).min(s * hi as i128);
            }
            if min < 0 {
                return Err(TraceError::NegativeAddress {
                    nest: self.name.clone(),
                    array: r.label.clone(),
                    min: min as i64,
                });
            }
        }
        Ok(())
    }

    /// True when any reference targets a Morton-layout array.
    #[inline]
    fn has_morton(&self) -> bool {
        self.refs.iter().any(|r| r.morton.is_some())
    }

    /// Stream the nest's accesses into `sink`; returns the number emitted.
    ///
    /// The innermost loop is emitted as run-length-encoded [`Run`] groups
    /// (one [`Run`] per reference, interleaved per trip), so sinks that
    /// batch line-resident accesses — notably [`Hierarchy`] — skip the
    /// per-access work. Sinks without a `run` override expand the runs
    /// through the default per-access loop, so the observable access stream
    /// is identical either way. Use [`CompiledNest::run_scalar`] to force
    /// per-access emission.
    pub fn run(&self, sink: &mut impl AccessSink) -> u64 {
        self.run_with(sink, true)
    }

    /// [`CompiledNest::run`] forced down the per-access scalar path: every
    /// reference of every trip goes through [`AccessSink::access`]
    /// individually. The differential-parity tests (and the experiment
    /// binaries' `--no-fast-path` flag) compare this against the run path.
    pub fn run_scalar(&self, sink: &mut impl AccessSink) -> u64 {
        self.run_with(sink, false)
    }

    /// The nest as a closed-form [`NestDescriptor`], when it has one: a
    /// non-empty rectangular iteration space (every bound constant) with at
    /// least one reference. Trip-space normalization folds each loop's
    /// start value and step into per-reference start addresses and per-trip
    /// deltas, so the descriptor is layout-resolved and self-contained.
    /// Start addresses are guaranteed non-negative — constant-bound nests
    /// passed [`CompiledNest::try_new`]'s exact minimum-address check.
    pub fn descriptor(&self) -> Option<NestDescriptor> {
        if self.loops.is_empty() || self.refs.is_empty() {
            return None;
        }
        let mut trips = Vec::with_capacity(self.loops.len());
        let mut starts = Vec::with_capacity(self.loops.len());
        for lp in &self.loops {
            let constant_only = lp
                .lowers
                .iter()
                .chain(&lp.uppers)
                .all(|e| e.terms.is_empty());
            if !constant_only {
                return None;
            }
            let lo = lp.lowers.iter().map(|e| e.constant).max().unwrap();
            let hi = lp.uppers.iter().map(|e| e.constant).min().unwrap();
            if hi < lo {
                return None; // empty loop: the nest emits nothing
            }
            trips.push(((hi - lo) / lp.step.abs() + 1) as u64);
            starts.push(if lp.step > 0 { lo } else { hi });
        }
        if self.has_morton() {
            // The trip space is rectangular, but at least one reference's
            // address function is not affine in it, so no `RefDescriptor`
            // can describe the stream. Offer the marked descriptor anyway:
            // closed-form sinks decline it (counting the decline), and
            // streaming proceeds through the Morton-aware walk.
            return Some(NestDescriptor {
                trips,
                refs: Vec::new(),
                non_affine: true,
            });
        }
        let refs = self
            .refs
            .iter()
            .map(|cr| {
                let start = cr.base
                    + cr.strides
                        .iter()
                        .zip(&starts)
                        .map(|(&s, &v)| s * v)
                        .sum::<i64>();
                debug_assert!(start >= 0, "validated min address went negative");
                RefDescriptor {
                    start: start as u64,
                    deltas: cr
                        .strides
                        .iter()
                        .zip(&self.loops)
                        .map(|(&s, lp)| s * lp.step)
                        .collect(),
                    kind: cr.kind,
                }
            })
            .collect();
        Some(NestDescriptor {
            trips,
            refs,
            non_affine: false,
        })
    }

    /// Stream the nest, choosing run-length (`fast`) or per-access emission.
    pub fn run_with(&self, sink: &mut impl AccessSink, fast: bool) -> u64 {
        self.try_run_with(sink, fast)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`CompiledNest::run`].
    pub fn try_run(&self, sink: &mut impl AccessSink) -> Result<u64, TraceError> {
        self.try_run_with(sink, true)
    }

    /// Non-panicking [`CompiledNest::run_with`]: a runtime negative-address
    /// detection comes back as [`TraceError::NegativeAddress`] instead of a
    /// panic. On error, accesses emitted before the offending innermost-loop
    /// invocation have already reached `sink` — callers treating the sink's
    /// state as meaningful must discard it.
    pub fn try_run_with(&self, sink: &mut impl AccessSink, fast: bool) -> Result<u64, TraceError> {
        // Offer the whole nest in closed form first (fast path only: the
        // scalar path keeps its strict per-access promise). Sinks without an
        // analytic backend decline at zero cost.
        if fast {
            if let Some(desc) = self.descriptor() {
                if let Some(n) = sink.nest(&desc) {
                    return Ok(n);
                }
            }
        }
        if self.loops.is_empty() {
            for r in &self.refs {
                let addr = match &r.morton {
                    Some(m) => {
                        for (d, &v) in m.dim_base.iter().enumerate() {
                            if v < 0 || v >= 1i64 << m.bits[d] {
                                return Err(self.morton_oob(r, d, v));
                            }
                        }
                        m.addr(&m.dim_base)
                    }
                    None => r.base,
                };
                if addr < 0 {
                    return Err(self.negative_addr(r, addr));
                }
                sink.access(Access {
                    addr: addr as u64,
                    kind: r.kind,
                });
            }
            return Ok(self.refs.len() as u64);
        }
        if self.has_morton() {
            use std::sync::atomic::Ordering;
            crate::layout::stats::MORTON_NESTS.fetch_add(1, Ordering::Relaxed);
            let mut vals = vec![0i64; self.loops.len()];
            let mut count = 0u64;
            self.walk_morton(0, &mut vals, sink, fast, &mut count)?;
            return Ok(count);
        }
        let depth = self.loops.len();
        let nrefs = self.refs.len();
        // partials[l * nrefs + r] = base + Σ_{k<l} stride_k * v_k for ref r.
        let mut partials = vec![0i64; depth * nrefs];
        for (r, cr) in self.refs.iter().enumerate() {
            partials[r] = cr.base;
        }
        let mut vals = vec![0i64; depth];
        let mut runs = Vec::with_capacity(nrefs);
        let mut count = 0u64;
        self.walk(
            0,
            &mut vals,
            &mut partials,
            sink,
            fast,
            &mut runs,
            &mut count,
        )?;
        Ok(count)
    }

    /// Exact negative-address guard for one innermost-loop invocation.
    ///
    /// Each reference's address is linear in the trip index, so its minimum
    /// over the invocation is at the first or last trip; checking those two
    /// endpoints is exact and O(refs), cheap enough to keep in release
    /// builds (it replaces a per-access `debug_assert!` that release builds
    /// compiled away, letting negative addresses wrap to huge `u64`s).
    #[inline]
    fn check_run_addrs(&self, cur: &[i64], deltas: &[i64], trips: u64) -> Result<(), TraceError> {
        for (r, (&first, &delta)) in cur.iter().zip(deltas).enumerate() {
            let last = first + delta * (trips as i64 - 1);
            if first.min(last) < 0 {
                return Err(self.negative_addr(&self.refs[r], first.min(last)));
            }
        }
        Ok(())
    }

    #[cold]
    #[inline(never)]
    fn negative_addr(&self, r: &CompiledRef, addr: i64) -> TraceError {
        TraceError::NegativeAddress {
            nest: self.name.clone(),
            array: r.label.clone(),
            min: addr,
        }
    }

    #[cold]
    #[inline(never)]
    fn morton_oob(&self, r: &CompiledRef, dim: usize, value: i64) -> TraceError {
        TraceError::MortonOutOfRange {
            nest: self.name.clone(),
            array: r.label.clone(),
            dim,
            value,
        }
    }

    /// Iteration-space walk for nests with at least one Morton reference.
    /// Loop bounds and order are handled exactly like [`CompiledNest::walk`];
    /// only innermost emission differs (no single-stride partials exist).
    fn walk_morton(
        &self,
        level: usize,
        vals: &mut [i64],
        sink: &mut impl AccessSink,
        fast: bool,
        count: &mut u64,
    ) -> Result<(), TraceError> {
        let lp = &self.loops[level];
        let (lo, hi) = lp.bounds(&vals[..level]);
        if hi < lo {
            return Ok(());
        }
        let (start, step) = if lp.step > 0 {
            (lo, lp.step)
        } else {
            (hi, lp.step)
        };
        let trips = ((hi - lo) / step.abs() + 1) as u64;
        if level == self.loops.len() - 1 {
            return self.emit_morton_innermost(vals, start, step, trips, sink, fast, count);
        }
        let mut v = start;
        for _ in 0..trips {
            vals[level] = v;
            self.walk_morton(level + 1, vals, sink, fast, count)?;
            v += step;
        }
        Ok(())
    }

    /// One innermost invocation of a Morton-bearing nest.
    ///
    /// The run-length fast path holds in exactly one shape: a single
    /// (necessarily Morton) reference, whose address sequence is re-encoded
    /// greedily into maximal constant-stride [`Run`]s — batching stays
    /// correct *across* Morton tiles because runs break exactly where the
    /// stride does. Any multi-reference body bails to per-access scalar
    /// emission (`layout.morton_scalar_bails`): interleaving affine and
    /// non-affine streams into `run_group`s would need equal-count
    /// constant-stride runs that Morton addresses do not provide.
    #[allow(clippy::too_many_arguments)]
    fn emit_morton_innermost(
        &self,
        vals: &[i64],
        start: i64,
        step: i64,
        trips: u64,
        sink: &mut impl AccessSink,
        fast: bool,
        count: &mut u64,
    ) -> Result<(), TraceError> {
        use std::sync::atomic::Ordering;
        let inner = self.loops.len() - 1;
        let nrefs = self.refs.len();
        if nrefs == 0 {
            return Ok(());
        }
        // Resolve each reference's per-invocation state: affine refs get
        // (address, byte delta); Morton refs get per-dimension (index,
        // index delta), endpoint-checked against the bit envelope.
        let mut aff: Vec<(i64, i64)> = Vec::with_capacity(nrefs);
        let mut mort: Vec<(Vec<i64>, Vec<i64>)> = Vec::with_capacity(nrefs);
        for r in &self.refs {
            match &r.morton {
                Some(m) => {
                    let rank = m.dim_base.len();
                    let mut idx = Vec::with_capacity(rank);
                    let mut dd = Vec::with_capacity(rank);
                    for d in 0..rank {
                        let s = &m.dim_strides[d];
                        let mut v0 = m.dim_base[d] + s[inner] * start;
                        for (l, &val) in vals[..inner].iter().enumerate() {
                            v0 += s[l] * val;
                        }
                        let delta = s[inner] * step;
                        let last = v0 + delta * (trips as i64 - 1);
                        let (min, max) = (v0.min(last), v0.max(last));
                        if min < 0 {
                            return Err(self.morton_oob(r, d, min));
                        }
                        if max >= 1i64 << m.bits[d] {
                            return Err(self.morton_oob(r, d, max));
                        }
                        idx.push(v0);
                        dd.push(delta);
                    }
                    aff.push((0, 0));
                    mort.push((idx, dd));
                }
                None => {
                    let mut cur = r.base + r.strides[inner] * start;
                    for (l, &val) in vals[..inner].iter().enumerate() {
                        cur += r.strides[l] * val;
                    }
                    let delta = r.strides[inner] * step;
                    let last = cur + delta * (trips as i64 - 1);
                    if cur.min(last) < 0 {
                        return Err(self.negative_addr(r, cur.min(last)));
                    }
                    aff.push((cur, delta));
                    mort.push((Vec::new(), Vec::new()));
                }
            }
        }
        if fast && nrefs == 1 {
            // Single Morton reference: greedy run re-encoding.
            let r = &self.refs[0];
            let m = r.morton.as_ref().expect("has_morton nest with one ref");
            let (idx, dd) = &mut mort[0];
            let mut prev = m.addr(idx);
            let (mut run_start, mut stride, mut n) = (prev, 0i64, 1u64);
            for _ in 1..trips {
                for (v, d) in idx.iter_mut().zip(dd.iter()) {
                    *v += d;
                }
                let a = m.addr(idx);
                if n == 1 {
                    stride = a - prev;
                    n = 2;
                } else if a - prev == stride {
                    n += 1;
                } else {
                    sink.run(Run {
                        start: run_start as u64,
                        stride,
                        count: n,
                        kind: r.kind,
                    });
                    crate::layout::stats::MORTON_RUNS.fetch_add(1, Ordering::Relaxed);
                    run_start = a;
                    stride = 0;
                    n = 1;
                }
                prev = a;
            }
            sink.run(Run {
                start: run_start as u64,
                stride,
                count: n,
                kind: r.kind,
            });
            crate::layout::stats::MORTON_RUNS.fetch_add(1, Ordering::Relaxed);
        } else {
            if fast {
                crate::layout::stats::MORTON_SCALAR_BAILS.fetch_add(1, Ordering::Relaxed);
            }
            for _ in 0..trips {
                for (r, cr) in self.refs.iter().enumerate() {
                    let addr = match &cr.morton {
                        Some(m) => {
                            let (idx, dd) = &mut mort[r];
                            let a = m.addr(idx);
                            for (v, d) in idx.iter_mut().zip(dd.iter()) {
                                *v += *d;
                            }
                            a
                        }
                        None => {
                            let a = aff[r].0;
                            aff[r].0 += aff[r].1;
                            a
                        }
                    };
                    sink.access(Access {
                        addr: addr as u64,
                        kind: cr.kind,
                    });
                }
            }
        }
        *count += trips * nrefs as u64;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        level: usize,
        vals: &mut [i64],
        partials: &mut [i64],
        sink: &mut impl AccessSink,
        fast: bool,
        runs: &mut Vec<Run>,
        count: &mut u64,
    ) -> Result<(), TraceError> {
        let nrefs = self.refs.len();
        let depth = self.loops.len();
        let lp = &self.loops[level];
        let (lo, hi) = lp.bounds(&vals[..level]);
        if hi < lo {
            return Ok(());
        }
        let (start, step) = if lp.step > 0 {
            (lo, lp.step)
        } else {
            (hi, lp.step)
        };
        let trips = ((hi - lo) / step.abs() + 1) as u64;

        if level == depth - 1 {
            // Innermost loop: advance each reference by its stride.
            if nrefs == 0 {
                return Ok(());
            }
            let base = &partials[(depth - 1) * nrefs..depth * nrefs];
            let cur: Vec<i64> = self
                .refs
                .iter()
                .enumerate()
                .map(|(r, cr)| base[r] + cr.strides[level] * start)
                .collect();
            let deltas: Vec<i64> = self
                .refs
                .iter()
                .map(|cr| cr.strides[level] * step)
                .collect();
            self.check_run_addrs(&cur, &deltas, trips)?;
            if fast {
                runs.clear();
                runs.extend(self.refs.iter().enumerate().map(|(r, cr)| Run {
                    start: cur[r] as u64,
                    stride: deltas[r],
                    count: trips,
                    kind: cr.kind,
                }));
                if let [run] = runs.as_slice() {
                    sink.run(*run);
                } else {
                    sink.run_group(runs);
                }
            } else {
                let mut cur = cur;
                for _ in 0..trips {
                    for (r, cr) in self.refs.iter().enumerate() {
                        sink.access(Access {
                            addr: cur[r] as u64,
                            kind: cr.kind,
                        });
                        cur[r] += deltas[r];
                    }
                }
            }
            *count += trips * nrefs as u64;
            return Ok(());
        }

        let mut v = start;
        for _ in 0..trips {
            vals[level] = v;
            for r in 0..nrefs {
                partials[(level + 1) * nrefs + r] =
                    partials[level * nrefs + r] + self.refs[r].strides[level] * v;
            }
            self.walk(level + 1, vals, partials, sink, fast, runs, count)?;
            v += step;
        }
        Ok(())
    }
}

/// Stream one nest's trace.
pub fn generate_nest(
    program: &Program,
    nest: &LoopNest,
    layout: &DataLayout,
    sink: &mut impl AccessSink,
) -> u64 {
    CompiledNest::new(program, nest, layout).run(sink)
}

/// Stream the whole program's trace in execution order; returns the number
/// of references emitted.
pub fn generate(program: &Program, layout: &DataLayout, sink: &mut impl AccessSink) -> u64 {
    generate_with(program, layout, sink, true)
}

/// [`generate`] with an explicit fast-path choice: `fast = false` forces
/// per-access emission through [`AccessSink::access`].
pub fn generate_with(
    program: &Program,
    layout: &DataLayout,
    sink: &mut impl AccessSink,
    fast: bool,
) -> u64 {
    try_generate_with(program, layout, sink, fast).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`generate_with`]: compilation and streaming failures come
/// back as [`TraceError`]s. On error, accesses from earlier nests (and the
/// failing nest's earlier iterations) have already reached `sink`.
pub fn try_generate_with(
    program: &Program,
    layout: &DataLayout,
    sink: &mut impl AccessSink,
    fast: bool,
) -> Result<u64, TraceError> {
    let mut total = 0u64;
    for n in &program.nests {
        total += CompiledNest::try_new(program, n, layout)?.try_run_with(sink, fast)?;
    }
    Ok(total)
}

/// Convenience: simulate a program on a cold hierarchy and return the
/// paper-style miss-rate report.
pub fn simulate(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
) -> MissRateReport {
    simulate_with(program, layout, config, true)
}

/// [`simulate`] with an explicit fast-path choice.
pub fn simulate_with(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
    fast: bool,
) -> MissRateReport {
    try_simulate_with(program, layout, config, fast).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_with`]: a malformed program or a layout that
/// generates negative addresses yields a [`TraceError`] instead of a panic.
pub fn try_simulate_with(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
    fast: bool,
) -> Result<MissRateReport, TraceError> {
    let mut hier = Hierarchy::new(config.clone());
    try_generate_with(program, layout, &mut hier, fast)?;
    Ok(hier.report())
}

/// [`simulate`] with a 3C miss classification attached: every access also
/// drives one fully-associative LRU shadow cache per level, splitting each
/// real miss into compulsory/capacity/conflict. Returns the report plus the
/// loaded classifier (use
/// [`mlc_telemetry::MissClassifier::install_metrics`] to export it).
pub fn simulate_classified(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
) -> (MissRateReport, mlc_telemetry::MissClassifier) {
    let mut hier = Hierarchy::new(config.clone());
    let mut classifier = config.miss_classifier();
    generate(program, layout, &mut hier.probed(&mut classifier));
    (hier.report(), classifier)
}

/// Simulate with `warmup` full program sweeps before counting, then `timed`
/// counted sweeps — the outer "time-step" loop of the iterative kernels.
pub fn simulate_steady(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
    warmup: usize,
    timed: usize,
) -> MissRateReport {
    simulate_steady_with(program, layout, config, warmup, timed, true)
}

/// [`simulate_steady`] with an explicit fast-path choice.
pub fn simulate_steady_with(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
    warmup: usize,
    timed: usize,
    fast: bool,
) -> MissRateReport {
    try_simulate_steady_with(program, layout, config, warmup, timed, fast)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_steady_with`].
pub fn try_simulate_steady_with(
    program: &Program,
    layout: &DataLayout,
    config: &HierarchyConfig,
    warmup: usize,
    timed: usize,
    fast: bool,
) -> Result<MissRateReport, TraceError> {
    let mut hier = Hierarchy::new(config.clone());
    for _ in 0..warmup {
        try_generate_with(program, layout, &mut hier, fast)?;
    }
    hier.reset_stats();
    for _ in 0..timed {
        try_generate_with(program, layout, &mut hier, fast)?;
    }
    Ok(hier.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayDecl;
    use crate::expr::AffineExpr as E;
    use crate::nest::Loop;
    use crate::program::figure2_example;
    use crate::reference::ArrayRef;
    use mlc_cache_sim::trace::{CountingSink, RecordingSink};

    fn simple_program(n: usize) -> Program {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![n]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("i", 0, n as i64 - 1)],
            vec![ArrayRef::read(a, vec![E::var("i")])],
        ));
        p
    }

    #[test]
    fn sequential_walk_addresses() {
        let p = simple_program(4);
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        let n = generate(&p, &l, &mut rec);
        assert_eq!(n, 4);
        let addrs: Vec<u64> = rec.accesses.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 8, 16, 24]);
    }

    #[test]
    fn body_order_is_program_order() {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![8]));
        let b = p.add_array(ArrayDecl::f64("B", vec![8]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("i", 0, 1)],
            vec![
                ArrayRef::read(a, vec![E::var("i")]),
                ArrayRef::write(b, vec![E::var("i")]),
            ],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        generate(&p, &l, &mut rec);
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        assert_eq!(addrs, vec![0, 64, 8, 72]);
        assert_eq!(rec.accesses[1].kind, AccessKind::Write);
    }

    #[test]
    fn reference_count_matches_const_estimate() {
        let p = figure2_example(64);
        let l = DataLayout::contiguous(&p.arrays);
        let mut c = CountingSink::default();
        let n = generate(&p, &l, &mut c);
        assert_eq!(n, p.const_references().unwrap());
        assert_eq!(c.total, n);
    }

    #[test]
    fn two_level_nest_column_major_order() {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![2, 2]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("j", 0, 1), Loop::counted("i", 0, 1)],
            vec![ArrayRef::read(a, vec![E::var("i"), E::var("j")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        generate(&p, &l, &mut rec);
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        // j outer, i inner, column-major: 0, 8, 16, 24 — perfectly sequential.
        assert_eq!(addrs, vec![0, 8, 16, 24]);
    }

    #[test]
    fn reversed_loop_walks_backward() {
        let mut p = simple_program(4);
        p.nests[0].loops[0].step = -1;
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        generate(&p, &l, &mut rec);
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        assert_eq!(addrs, vec![24, 16, 8, 0]);
    }

    #[test]
    fn triangular_bounds() {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![4, 4]));
        p.add_nest(LoopNest::new(
            "n",
            vec![
                Loop::counted("j", 0, 3),
                Loop::new("i", E::constant(0), E::var("j")),
            ],
            vec![ArrayRef::read(a, vec![E::var("i"), E::var("j")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let mut c = CountingSink::default();
        let n = generate(&p, &l, &mut c);
        assert_eq!(n, 1 + 2 + 3 + 4);
    }

    #[test]
    fn strip_mined_bounds_with_min() {
        // for ii in (0..10 step 4) { for i in ii..=min(ii+3, 9) }
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![10]));
        let mut outer = Loop::counted("ii", 0, 9);
        outer.step = 4;
        let mut inner = Loop::new("i", E::var("ii"), E::var_plus("ii", 3));
        inner.uppers.push(E::constant(9));
        p.add_nest(LoopNest::new(
            "n",
            vec![outer, inner],
            vec![ArrayRef::read(a, vec![E::var("i")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        let n = generate(&p, &l, &mut rec);
        assert_eq!(n, 10); // 4 + 4 + 2
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        assert_eq!(addrs, (0..10).map(|i| i * 8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_emits_nothing() {
        let mut p = simple_program(4);
        p.nests[0].loops[0] = Loop::counted("i", 3, 2);
        let l = DataLayout::contiguous(&p.arrays);
        let mut c = CountingSink::default();
        assert_eq!(generate(&p, &l, &mut c), 0);
    }

    #[test]
    fn simulate_figure2_contiguous_has_severe_conflicts() {
        // With N a multiple of the cache column capacity, the contiguous
        // layout makes all three arrays coincide on the cache: L1 miss rate
        // should be near 100% (every access conflicts).
        let n = 512; // 512*512*8 = 2 MiB arrays; bases 0, 2 MiB, 4 MiB
        let p = figure2_example(n);
        let l = DataLayout::contiguous(&p.arrays);
        let cfg = HierarchyConfig::ultrasparc_i();
        let r = simulate(&p, &l, &cfg);
        // Nest 1: all six refs ping-pong (rate ~1); nest 2 only B(i,j)/C(i,j)
        // conflict, so the blended rate sits near (6·1 + 2·1 + 2·¼)/10.
        assert!(
            r.miss_rate(0) > 0.8,
            "expected severe conflicts, got L1 rate {}",
            r.miss_rate(0)
        );
    }

    #[test]
    fn steady_state_resets_warmup_counts() {
        let p = simple_program(64);
        let l = DataLayout::contiguous(&p.arrays);
        let cfg = HierarchyConfig::ultrasparc_i();
        let r = simulate_steady(&p, &l, &cfg, 1, 1);
        // Array is 512 bytes: fits L1; second sweep all hits.
        assert_eq!(r.levels[0].misses(), 0);
        assert_eq!(r.total_references, 64);
    }

    #[test]
    fn steady_with_zero_warmup_matches_cold_simulate() {
        let p = figure2_example(64);
        let l = DataLayout::contiguous(&p.arrays);
        let cfg = HierarchyConfig::ultrasparc_i();
        let cold = simulate(&p, &l, &cfg);
        let steady = simulate_steady(&p, &l, &cfg, 0, 1);
        assert_eq!(cold, steady);
        let steady_scalar = simulate_steady_with(&p, &l, &cfg, 0, 1, false);
        assert_eq!(cold, steady_scalar);
    }

    #[test]
    fn run_and_scalar_paths_emit_identical_streams() {
        // RecordingSink has no run override, so the run path expands through
        // the trait default; both paths must produce the same access list.
        for p in [figure2_example(32), simple_program(100)] {
            let l = DataLayout::contiguous(&p.arrays);
            let mut fast = RecordingSink::default();
            let nf = generate_with(&p, &l, &mut fast, true);
            let mut slow = RecordingSink::default();
            let ns = generate_with(&p, &l, &mut slow, false);
            assert_eq!(nf, ns);
            assert_eq!(fast.accesses, slow.accesses);
        }
    }

    #[test]
    fn empty_body_emits_zero_through_both_paths() {
        let mut p = Program::new("t");
        p.add_array(ArrayDecl::f64("A", vec![8]));
        p.add_nest(LoopNest::new(
            "empty",
            vec![Loop::counted("i", 0, 63)],
            vec![],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        for fast in [true, false] {
            let mut c = CountingSink::default();
            assert_eq!(generate_with(&p, &l, &mut c, fast), 0);
            assert_eq!(c.total, 0);
            let mut h = Hierarchy::new(HierarchyConfig::ultrasparc_i());
            generate_with(&p, &l, &mut h, fast);
            assert_eq!(h.stats()[0].accesses(), 0);
        }
    }

    fn negative_base_program() -> (Program, DataLayout) {
        // A(i - 4) over i in 0..=7: addresses -32..=24, negative at first.
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![8]));
        p.add_nest(LoopNest::new(
            "neg",
            vec![Loop::counted("i", 0, 7)],
            vec![ArrayRef::read(a, vec![E::var_plus("i", -4)])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        (p, l)
    }

    #[test]
    #[should_panic(expected = "negative byte address")]
    fn negative_address_rejected_at_compile_time() {
        let (p, l) = negative_base_program();
        CompiledNest::new(&p, &p.nests[0], &l);
    }

    #[test]
    #[should_panic(expected = "nest tri: reference to array A")]
    fn negative_address_caught_at_runtime_for_triangular_bounds() {
        // Bounds depend on an outer variable, so the static check cannot
        // prove anything and the endpoint check in the walk must fire —
        // in release builds too.
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![8, 8]));
        p.add_nest(LoopNest::new(
            "tri",
            vec![
                Loop::counted("j", 0, 3),
                Loop::new("i", E::var("j"), E::constant(3)),
            ],
            vec![ArrayRef::read(a, vec![E::var_plus("i", -2), E::var("j")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let nest = CompiledNest::new(&p, &p.nests[0], &l); // static check passes
        let mut c = CountingSink::default();
        nest.run(&mut c);
    }

    #[test]
    fn try_new_reports_negative_address_as_value() {
        let (p, l) = negative_base_program();
        match CompiledNest::try_new(&p, &p.nests[0], &l) {
            Err(TraceError::NegativeAddress { nest, array, min }) => {
                assert_eq!(nest, "neg");
                assert_eq!(array, "A");
                assert_eq!(min, -32);
            }
            other => panic!("expected NegativeAddress, got {other:?}"),
        }
    }

    #[test]
    fn try_new_reports_unbound_variable() {
        let mut p = simple_program(4);
        p.nests[0].body[0].subscripts[0] = E::var("k");
        let l = DataLayout::contiguous(&p.arrays);
        assert_eq!(
            CompiledNest::try_new(&p, &p.nests[0], &l),
            Err(TraceError::UnboundVariable {
                nest: "n".into(),
                var: "k".into()
            })
        );
    }

    #[test]
    fn try_new_reports_zero_step_and_empty_bounds() {
        let mut p = simple_program(4);
        p.nests[0].loops[0].step = 0;
        let l = DataLayout::contiguous(&p.arrays);
        assert_eq!(
            CompiledNest::try_new(&p, &p.nests[0], &l),
            Err(TraceError::ZeroStep {
                nest: "n".into(),
                var: "i".into()
            })
        );
        p.nests[0].loops[0] = Loop::counted("i", 0, 3);
        p.nests[0].loops[0].uppers.clear();
        assert_eq!(
            CompiledNest::try_new(&p, &p.nests[0], &l),
            Err(TraceError::EmptyBounds {
                nest: "n".into(),
                var: "i".into()
            })
        );
    }

    #[test]
    fn try_run_reports_runtime_negative_address() {
        // Same triangular case as the should_panic test above, through the
        // non-panicking API: the error is a value and the sink keeps the
        // accesses emitted before detection.
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![8, 8]));
        p.add_nest(LoopNest::new(
            "tri",
            vec![
                Loop::counted("j", 0, 3),
                Loop::new("i", E::var("j"), E::constant(3)),
            ],
            vec![ArrayRef::read(a, vec![E::var_plus("i", -2), E::var("j")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let nest = CompiledNest::try_new(&p, &p.nests[0], &l).unwrap();
        let mut c = CountingSink::default();
        match nest.try_run(&mut c) {
            Err(TraceError::NegativeAddress { nest, array, .. }) => {
                assert_eq!(nest, "tri");
                assert_eq!(array, "A");
            }
            other => panic!("expected NegativeAddress, got {other:?}"),
        }
    }

    #[test]
    fn try_simulate_matches_panicking_simulate_on_valid_input() {
        let p = figure2_example(64);
        let l = DataLayout::contiguous(&p.arrays);
        let cfg = HierarchyConfig::ultrasparc_i();
        let ok = try_simulate_with(&p, &l, &cfg, true).unwrap();
        assert_eq!(ok, simulate(&p, &l, &cfg));
        let steady = try_simulate_steady_with(&p, &l, &cfg, 1, 1, true).unwrap();
        assert_eq!(steady, simulate_steady(&p, &l, &cfg, 1, 1));
    }

    #[test]
    fn trace_error_display_is_stable() {
        // The panicking wrappers print these; tests elsewhere pin the
        // substrings "negative byte address" and "not bound by nest".
        let e = TraceError::NegativeAddress {
            nest: "n".into(),
            array: "A".into(),
            min: -8,
        };
        assert!(e.to_string().contains("negative byte address"));
        let e = TraceError::UnboundVariable {
            nest: "n".into(),
            var: "k".into(),
        };
        assert_eq!(e.to_string(), "variable k not bound by nest n");
    }

    fn morton_program(n: usize) -> (Program, DataLayout) {
        // B(i,j) = A(i,j) with A morton-laid-out, B linear.
        let mut p = Program::new("mz");
        let a = p.add_array(ArrayDecl::f64("A", vec![n, n]));
        let b = p.add_array(ArrayDecl::f64("B", vec![n, n]));
        let nn = n as i64 - 1;
        p.add_nest(LoopNest::new(
            "mz",
            vec![Loop::counted("j", 0, nn), Loop::counted("i", 0, nn)],
            vec![
                ArrayRef::read(a, vec![E::var("i"), E::var("j")]),
                ArrayRef::write(b, vec![E::var("i"), E::var("j")]),
            ],
        ));
        let fams = vec![
            crate::layout::LayoutFamily::morton_round_robin(&p.arrays[0]),
            crate::layout::LayoutFamily::Linear,
        ];
        let l = DataLayout::with_pads_and_families(&p.arrays, &[0, 0], &fams).unwrap();
        (p, l)
    }

    #[test]
    fn morton_fast_and_scalar_emit_identical_streams() {
        for n in [4usize, 7, 16] {
            let (p, l) = morton_program(n);
            let mut fast = RecordingSink::default();
            let nf = generate_with(&p, &l, &mut fast, true);
            let mut slow = RecordingSink::default();
            let ns = generate_with(&p, &l, &mut slow, false);
            assert_eq!(nf, ns, "n={n}");
            assert_eq!(nf, (n * n * 2) as u64);
            assert_eq!(fast.accesses, slow.accesses, "n={n}");
        }
    }

    #[test]
    fn morton_addresses_interleave_bits() {
        // Single morton ref, i innermost: addresses follow the interleave.
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![4, 4]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("j", 0, 3), Loop::counted("i", 0, 3)],
            vec![ArrayRef::read(a, vec![E::var("i"), E::var("j")])],
        ));
        let fams = vec![crate::layout::LayoutFamily::Morton(vec![0, 1, 0, 1])];
        let l = DataLayout::with_pads_and_families(&p.arrays, &[0], &fams).unwrap();
        let mut rec = RecordingSink::default();
        generate(&p, &l, &mut rec);
        let addrs: Vec<u64> = rec.accesses.iter().map(|x| x.addr).collect();
        // j=0: i interleaves into offsets 0,1,4,5 (x bits at even positions).
        assert_eq!(&addrs[..4], &[0, 8, 32, 40]);
        // j=1: y bit 0 set -> offset bit 1.
        assert_eq!(&addrs[4..8], &[16, 24, 48, 56]);
    }

    #[test]
    fn morton_single_ref_fast_path_batches_runs() {
        // A 1-D morton family is linear-in-disguise: the whole innermost
        // sweep must coalesce into runs, not per-access emissions.
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![64]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("i", 0, 63)],
            vec![ArrayRef::read(a, vec![E::var("i")])],
        ));
        let fams = vec![crate::layout::LayoutFamily::morton_round_robin(
            &p.arrays[0],
        )];
        let l = DataLayout::with_pads_and_families(&p.arrays, &[0], &fams).unwrap();
        crate::layout::stats::take_stats(); // reset
        let mut c = CountingSink::default();
        assert_eq!(generate(&p, &l, &mut c), 64);
        assert_eq!(c.total, 64);
        let s = crate::layout::stats::take_stats();
        assert_eq!(s.morton_nests, 1);
        assert_eq!(s.morton_runs, 1, "sequential morton sweep is one run");
        assert_eq!(s.morton_scalar_bails, 0);
    }

    #[test]
    fn morton_multi_ref_body_bails_to_scalar() {
        let (p, l) = morton_program(8);
        crate::layout::stats::take_stats(); // reset
        let mut c = CountingSink::default();
        generate(&p, &l, &mut c);
        let s = crate::layout::stats::take_stats();
        assert_eq!(s.morton_nests, 1);
        assert_eq!(s.morton_runs, 0);
        assert_eq!(
            s.morton_scalar_bails, 8,
            "one bail per innermost invocation"
        );
    }

    #[test]
    fn morton_subscript_outside_envelope_is_rejected_statically() {
        let mut p = Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![4, 4]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("j", 0, 3), Loop::counted("i", 0, 3)],
            vec![ArrayRef::read(a, vec![E::var_plus("i", 1), E::var("j")])],
        ));
        let fams = vec![crate::layout::LayoutFamily::Morton(vec![0, 1, 0, 1])];
        let l = DataLayout::with_pads_and_families(&p.arrays, &[0], &fams).unwrap();
        match CompiledNest::try_new(&p, &p.nests[0], &l) {
            Err(TraceError::MortonOutOfRange {
                array, dim, value, ..
            }) => {
                assert_eq!(array, "A");
                assert_eq!(dim, 0);
                assert_eq!(value, 4);
            }
            other => panic!("expected MortonOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn morton_nest_offers_marked_descriptor() {
        let (p, l) = morton_program(4);
        let nest = CompiledNest::try_new(&p, &p.nests[0], &l).unwrap();
        let desc = nest.descriptor().expect("constant bounds have descriptors");
        assert!(desc.non_affine);
        assert!(desc.refs.is_empty());
        assert_eq!(desc.trips, vec![4, 4]);
        // Affine nests stay unmarked.
        let p3 = simple_program(4);
        let l3 = DataLayout::contiguous(&p3.arrays);
        let d3 = CompiledNest::try_new(&p3, &p3.nests[0], &l3)
            .unwrap()
            .descriptor()
            .unwrap();
        assert!(!d3.non_affine);
    }

    #[test]
    fn morton_simulation_matches_scalar_replay_on_hierarchy() {
        let (p, l) = morton_program(16);
        let cfg = HierarchyConfig::ultrasparc_i();
        let fast = simulate_with(&p, &l, &cfg, true);
        let slow = simulate_with(&p, &l, &cfg, false);
        assert_eq!(fast, slow);
        let steady_f = simulate_steady_with(&p, &l, &cfg, 1, 2, true);
        let steady_s = simulate_steady_with(&p, &l, &cfg, 1, 2, false);
        assert_eq!(steady_f, steady_s);
    }

    #[test]
    fn provably_empty_loop_skips_static_validation() {
        // The nest would generate negative addresses, but its loop is
        // provably empty so it can never emit anything: compiling and
        // running it is fine.
        let (mut p, _) = negative_base_program();
        p.nests[0].loops[0] = Loop::counted("i", 3, 2);
        let l = DataLayout::contiguous(&p.arrays);
        let nest = CompiledNest::new(&p, &p.nests[0], &l);
        let mut c = CountingSink::default();
        assert_eq!(nest.run(&mut c), 0);
    }
}
