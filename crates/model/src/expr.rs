//! Affine expressions over loop variables.
//!
//! Every subscript and loop bound in the model is affine:
//! `c0 + c1*v1 + ... + cn*vn`. This is exactly the class the paper's
//! analyses handle (uniformly generated references differ only in `c0`).

use std::collections::BTreeMap;
use std::fmt;

/// An affine expression: a constant plus integer-scaled loop variables.
///
/// Terms are kept sorted by variable name with no zero coefficients, so
/// structural equality means mathematical equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// (variable, coefficient) pairs, sorted by variable, coefficients != 0.
    terms: Vec<(String, i64)>,
    /// The constant term.
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        Self {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The expression `v` (a bare loop variable).
    pub fn var(v: impl Into<String>) -> Self {
        Self {
            terms: vec![(v.into(), 1)],
            constant: 0,
        }
    }

    /// The expression `coeff * v`.
    pub fn scaled(v: impl Into<String>, coeff: i64) -> Self {
        if coeff == 0 {
            return Self::constant(0);
        }
        Self {
            terms: vec![(v.into(), coeff)],
            constant: 0,
        }
    }

    /// The expression `v + c` — the workhorse for stencil subscripts like
    /// `A(i, j+1)`.
    pub fn var_plus(v: impl Into<String>, c: i64) -> Self {
        Self {
            terms: vec![(v.into(), 1)],
            constant: c,
        }
    }

    /// This expression plus a constant.
    pub fn plus(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Sum of two affine expressions.
    pub fn add(&self, other: &Self) -> Self {
        let mut map: BTreeMap<&str, i64> = BTreeMap::new();
        for (v, c) in self.terms.iter().chain(&other.terms) {
            *map.entry(v.as_str()).or_insert(0) += c;
        }
        Self {
            terms: map
                .into_iter()
                .filter(|&(_, c)| c != 0)
                .map(|(v, c)| (v.to_string(), c))
                .collect(),
            constant: self.constant + other.constant,
        }
    }

    /// Difference of two affine expressions.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.scale(-1))
    }

    /// This expression times an integer.
    pub fn scale(&self, k: i64) -> Self {
        if k == 0 {
            return Self::constant(0);
        }
        Self {
            terms: self.terms.iter().map(|(v, c)| (v.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// The constant term.
    #[inline]
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Coefficient of variable `v` (0 if absent).
    pub fn coeff(&self, v: &str) -> i64 {
        self.terms
            .binary_search_by(|(name, _)| name.as_str().cmp(v))
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// Iterator over the nonzero (variable, coefficient) terms.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(v, c)| (v.as_str(), *c))
    }

    /// True iff the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Variables mentioned, in sorted order.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(|(v, _)| v.as_str())
    }

    /// Evaluate with a lookup for variable values.
    ///
    /// Returns `Err(var)` naming the first unbound variable.
    pub fn eval(&self, lookup: impl Fn(&str) -> Option<i64>) -> Result<i64, String> {
        let mut acc = self.constant;
        for (v, c) in &self.terms {
            let val = lookup(v).ok_or_else(|| v.clone())?;
            acc += c * val;
        }
        Ok(acc)
    }

    /// Substitute variable `v` with expression `e`.
    pub fn substitute(&self, v: &str, e: &AffineExpr) -> Self {
        let mut out = Self::constant(self.constant);
        for (name, c) in &self.terms {
            if name == v {
                out = out.add(&e.scale(*c));
            } else {
                out = out.add(&Self::scaled(name.clone(), *c));
            }
        }
        out
    }

    /// Rename variable `from` to `to` everywhere.
    pub fn rename(&self, from: &str, to: &str) -> Self {
        self.substitute(from, &Self::var(to))
    }
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        Self::constant(c)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.constant);
        }
        let mut first = true;
        for (v, c) in &self.terms {
            match (*c, first) {
                (1, true) => write!(f, "{v}")?,
                (-1, true) => write!(f, "-{v}")?,
                (c, true) => write!(f, "{c}*{v}")?,
                (1, false) => write!(f, " + {v}")?,
                (-1, false) => write!(f, " - {v}")?,
                (c, false) if c > 0 => write!(f, " + {c}*{v}")?,
                (c, false) => write!(f, " - {}*{v}", -c)?,
            }
            first = false;
        }
        match self.constant {
            0 => Ok(()),
            c if c > 0 => write!(f, " + {c}"),
            c => write!(f, " - {}", -c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let e = AffineExpr::var("i")
            .add(&AffineExpr::scaled("j", 3))
            .plus(-2);
        let env = |v: &str| match v {
            "i" => Some(5),
            "j" => Some(2),
            _ => None,
        };
        assert_eq!(e.eval(env).unwrap(), 5 + 6 - 2);
        assert_eq!(e.coeff("i"), 1);
        assert_eq!(e.coeff("j"), 3);
        assert_eq!(e.coeff("k"), 0);
        assert_eq!(e.constant_term(), -2);
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = AffineExpr::var("i");
        assert_eq!(e.eval(|_| None), Err("i".to_string()));
    }

    #[test]
    fn cancellation_normalizes() {
        let e = AffineExpr::var("i").sub(&AffineExpr::var("i"));
        assert!(e.is_constant());
        assert_eq!(e, AffineExpr::constant(0));
    }

    #[test]
    fn substitution_strip_mine_shape() {
        // i -> ii + t : the substitution strip-mining performs.
        let sub = AffineExpr::var("ii").add(&AffineExpr::var("t"));
        let e = AffineExpr::scaled("i", 2).plus(1).substitute("i", &sub);
        assert_eq!(e.coeff("ii"), 2);
        assert_eq!(e.coeff("t"), 2);
        assert_eq!(e.constant_term(), 1);
        assert_eq!(e.coeff("i"), 0);
    }

    #[test]
    fn rename_keeps_structure() {
        let e = AffineExpr::var_plus("j", 1).rename("j", "jj");
        assert_eq!(e, AffineExpr::var_plus("jj", 1));
    }

    #[test]
    fn display_is_readable() {
        let e = AffineExpr::var("i")
            .add(&AffineExpr::scaled("j", -2))
            .plus(3);
        assert_eq!(e.to_string(), "i - 2*j + 3");
        assert_eq!(AffineExpr::constant(-4).to_string(), "-4");
        assert_eq!(AffineExpr::var("k").to_string(), "k");
    }

    #[test]
    fn equality_is_structural_and_canonical() {
        let a = AffineExpr::var("i").add(&AffineExpr::var("j"));
        let b = AffineExpr::var("j").add(&AffineExpr::var("i"));
        assert_eq!(a, b);
    }

    #[test]
    fn scale_by_zero_is_zero() {
        let e = AffineExpr::var("i").plus(7).scale(0);
        assert_eq!(e, AffineExpr::constant(0));
    }
}
