//! Data layouts: base addresses for every array in one address space.
//!
//! The SUIF pre-passes in Section 6.1 collect all optimizable variables into
//! one global structure so that "optimizing passes may now modify the base
//! addresses of variables by reordering fields in the structure and
//! inserting pad variables". A [`DataLayout`] is that structure: array `k`
//! starts at byte `bases[k]`, and inter-variable padding inserts bytes
//! before an array, shifting it (and everything after it) upward.
//!
//! Beyond the paper's padded column-major layouts, each array carries a
//! [`LayoutFamily`]: the default [`LayoutFamily::Linear`] is the classic
//! column-major mapping, and [`LayoutFamily::Morton`] is a generalized
//! Morton / Z-order mapping parameterized by a per-dimension bit-interleave
//! word (see `docs/LAYOUTS.md`). Non-linear families make the element →
//! address function non-affine, so every affine analysis must gate on
//! [`DataLayout::fully_affine`]; trace generation handles both.

use crate::array::{ArrayDecl, ArrayId};
use crate::expr::AffineExpr;
use crate::reference::ArrayRef;

/// How one array maps multi-indices to byte offsets from its base.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LayoutFamily {
    /// Column-major (Fortran) order through [`ArrayDecl::strides`] — the
    /// affine mapping every paper algorithm assumes.
    Linear,
    /// Generalized Morton / Z-order: the word lists, LSB first, which
    /// dimension contributes each bit of the element offset. `word[p] = d`
    /// means bit `p` of the offset is the next-unconsumed bit of the
    /// dimension-`d` index. The array allocates `2^word.len()` elements.
    Morton(Vec<u8>),
}

impl LayoutFamily {
    /// True for the affine column-major family.
    #[inline]
    pub fn is_linear(&self) -> bool {
        matches!(self, LayoutFamily::Linear)
    }

    /// Bits per dimension the word grants (occurrence counts), for `rank`
    /// dimensions.
    pub fn dim_bits(&self, rank: usize) -> Vec<u32> {
        let mut bits = vec![0u32; rank];
        if let LayoutFamily::Morton(word) = self {
            for &d in word {
                if (d as usize) < rank {
                    bits[d as usize] += 1;
                }
            }
        }
        bits
    }

    /// Check the family against a declaration: every word entry must name a
    /// dimension, the per-dimension bits must cover the allocated extent
    /// (so every in-allocation index is encodable), and the allocation must
    /// stay addressable.
    pub fn validate(&self, decl: &ArrayDecl) -> Result<(), String> {
        let LayoutFamily::Morton(word) = self else {
            return Ok(());
        };
        if decl.rank() > 8 {
            return Err(format!(
                "array {}: morton layouts support rank <= 8, got {}",
                decl.name,
                decl.rank()
            ));
        }
        if word.len() >= 48 {
            return Err(format!(
                "array {}: morton word of {} bits allocates beyond the address model",
                decl.name,
                word.len()
            ));
        }
        if let Some(&d) = word.iter().find(|&&d| (d as usize) >= decl.rank()) {
            return Err(format!(
                "array {}: morton word names dimension {d} of a rank-{} array",
                decl.name,
                decl.rank()
            ));
        }
        let bits = self.dim_bits(decl.rank());
        for (d, &got) in bits.iter().enumerate() {
            let need = min_bits(decl.alloc_dim(d));
            if got < need {
                return Err(format!(
                    "array {}: morton word grants {got} bits to dimension {d}, \
                     extent {} needs {need}",
                    decl.name,
                    decl.alloc_dim(d)
                ));
            }
        }
        Ok(())
    }

    /// Allocated bytes under this family: the exact column-major size for
    /// [`LayoutFamily::Linear`], the power-of-two envelope
    /// `2^word.len() × elem_size` for [`LayoutFamily::Morton`].
    pub fn alloc_bytes(&self, decl: &ArrayDecl) -> u64 {
        match self {
            LayoutFamily::Linear => decl.size_bytes() as u64,
            LayoutFamily::Morton(word) => (1u64 << word.len()) * decl.elem_size as u64,
        }
    }

    /// The canonical Morton family for a declaration: minimal bits per
    /// dimension, interleaved round-robin from the LSB (dimension 0 first,
    /// so short runs keep the unit-stride dimension in the low bits).
    pub fn morton_round_robin(decl: &ArrayDecl) -> Self {
        let bits: Vec<u32> = (0..decl.rank())
            .map(|d| min_bits(decl.alloc_dim(d)))
            .collect();
        LayoutFamily::Morton(round_robin_word(&bits))
    }
}

/// Bits needed to encode indices `0..extent`.
pub fn min_bits(extent: usize) -> u32 {
    if extent <= 1 {
        0
    } else {
        usize::BITS - (extent - 1).leading_zeros()
    }
}

/// Build an interleave word that deals bits round-robin across dimensions
/// (dimension 0 first) until each dimension has consumed its budget.
pub fn round_robin_word(bits: &[u32]) -> Vec<u8> {
    let mut left = bits.to_vec();
    let mut word = Vec::with_capacity(bits.iter().sum::<u32>() as usize);
    while left.iter().any(|&b| b > 0) {
        for (d, l) in left.iter_mut().enumerate() {
            if *l > 0 {
                word.push(d as u8);
                *l -= 1;
            }
        }
    }
    word
}

/// Build an interleave word from alternating blocks: `g[d]` consecutive
/// bits of dimension `d` per round, dimension 0 first, until every
/// dimension has consumed `bits[d]`. `g[d] == 0` falls back to 1. With
/// `g = bits` this degenerates to the affine-like all-dim-0-then-dim-1
/// word; with `g = [1,1,..]` it is the round-robin word.
pub fn blocked_word(bits: &[u32], g: &[u32]) -> Vec<u8> {
    let mut left = bits.to_vec();
    let mut word = Vec::with_capacity(bits.iter().sum::<u32>() as usize);
    while left.iter().any(|&b| b > 0) {
        for (d, l) in left.iter_mut().enumerate() {
            let take = g.get(d).copied().unwrap_or(1).max(1).min(*l);
            for _ in 0..take {
                word.push(d as u8);
            }
            *l -= take;
        }
    }
    word
}

/// Interleave a multi-index through a Morton word: bit `p` of the result
/// is bit `consumed_so_far(word[p])` of `idx[word[p]]`. Indices must be
/// non-negative and within `2^bits` per dimension (the trace generator
/// range-checks before calling).
#[inline]
pub fn morton_index(word: &[u8], idx: &[i64]) -> i64 {
    let mut cursor = [0u32; 8];
    let mut out = 0i64;
    for (p, &d) in word.iter().enumerate() {
        let d = d as usize;
        out |= ((idx[d] >> cursor[d]) & 1) << p;
        cursor[d] += 1;
    }
    out
}

/// Byte base addresses for a program's arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    /// Base byte address of each array (parallel to the program's arrays).
    pub bases: Vec<u64>,
    /// One byte past the end of the last array.
    pub total_size: u64,
    /// Per-array layout family (parallel to `bases`); all
    /// [`LayoutFamily::Linear`] for every paper-era constructor.
    pub families: Vec<LayoutFamily>,
}

impl DataLayout {
    /// Lay arrays out back-to-back in declaration order starting at 0 — the
    /// original, unpadded layout. With power-of-two-ish array sizes this is
    /// the layout where "all base addresses in the original sample program
    /// coincide on the cache" (Section 3.1.1).
    pub fn contiguous(arrays: &[ArrayDecl]) -> Self {
        Self::with_pads(arrays, &vec![0; arrays.len()])
    }

    /// Lay arrays out in declaration order with `pads[k]` bytes of padding
    /// inserted *before* array `k`.
    pub fn with_pads(arrays: &[ArrayDecl], pads: &[u64]) -> Self {
        Self::with_pads_and_families(arrays, pads, &vec![LayoutFamily::Linear; arrays.len()])
            .expect("linear families always validate")
    }

    /// Lay arrays out with per-array pads *and* per-array layout families.
    /// Non-linear families change an array's allocated size (a Morton array
    /// occupies its `2^word.len()`-element envelope), which shifts every
    /// subsequent base — exactly like a pad would.
    pub fn with_pads_and_families(
        arrays: &[ArrayDecl],
        pads: &[u64],
        families: &[LayoutFamily],
    ) -> Result<Self, String> {
        assert_eq!(arrays.len(), pads.len(), "one pad per array");
        assert_eq!(arrays.len(), families.len(), "one family per array");
        let mut bases = Vec::with_capacity(arrays.len());
        let mut cursor = 0u64;
        for ((a, &p), fam) in arrays.iter().zip(pads).zip(families) {
            fam.validate(a)?;
            cursor += p;
            bases.push(cursor);
            cursor += fam.alloc_bytes(a);
        }
        Ok(Self {
            bases,
            total_size: cursor,
            families: families.to_vec(),
        })
    }

    /// The pads this layout implies, given the declarations it was built for
    /// (inverse of [`DataLayout::with_pads`]).
    pub fn pads(&self, arrays: &[ArrayDecl]) -> Vec<u64> {
        let mut pads = Vec::with_capacity(arrays.len());
        let mut cursor = 0u64;
        for (k, &b) in self.bases.iter().enumerate() {
            pads.push(b - cursor);
            cursor = b + self.family(k).alloc_bytes(&arrays[k]);
        }
        pads
    }

    /// Base address of array `id`.
    #[inline]
    pub fn base(&self, id: ArrayId) -> u64 {
        self.bases[id]
    }

    /// The layout family of array `id` (layouts predating families — there
    /// are none in-tree — would read as linear).
    #[inline]
    pub fn family(&self, id: ArrayId) -> &LayoutFamily {
        self.families.get(id).unwrap_or(&LayoutFamily::Linear)
    }

    /// True when every array uses the affine column-major family, i.e. all
    /// the paper's affine analyses (and [`DataLayout::address_expr`]) apply.
    pub fn fully_affine(&self) -> bool {
        self.families.iter().all(LayoutFamily::is_linear)
    }

    /// Byte address of element `idx` (0-based multi-index) of array `id`.
    pub fn addr(&self, arrays: &[ArrayDecl], id: ArrayId, idx: &[i64]) -> u64 {
        let a = &arrays[id];
        let elems = match self.family(id) {
            LayoutFamily::Linear => a.linear_index(idx),
            LayoutFamily::Morton(word) => morton_index(word, idx),
        };
        self.bases[id] + (elems as u64) * a.elem_size as u64
    }

    /// Total padding bytes added relative to the contiguous layout — the
    /// space overhead the padding experiments report.
    pub fn padding_overhead(&self, arrays: &[ArrayDecl]) -> u64 {
        let data: u64 = arrays.iter().map(|a| a.size_bytes() as u64).sum();
        self.total_size - data
    }

    /// Resolve a reference to the affine byte-address function it denotes
    /// under this layout: `addr(env) = c0 + Σ c_v · v`, returned as an
    /// [`AffineExpr`] in the loop variables (coefficients in **bytes**).
    ///
    /// This is the compile step behind both trace generation and every
    /// conflict/reuse analysis: once subscripts are folded through the
    /// column-major strides and the base address, all cache questions are
    /// questions about one affine function per reference.
    ///
    /// # Panics
    /// Panics if the referenced array uses a non-affine family (gate on
    /// [`DataLayout::fully_affine`], or let `trace_gen` compile the
    /// reference — it handles Morton refs natively).
    pub fn address_expr(&self, arrays: &[ArrayDecl], r: &ArrayRef) -> AffineExpr {
        assert!(
            self.family(r.array).is_linear(),
            "address_expr on non-affine layout family for array {}",
            arrays[r.array].name
        );
        let a = &arrays[r.array];
        let strides = a.strides();
        let elem = a.elem_size as i64;
        let mut e = AffineExpr::constant(self.bases[r.array] as i64);
        for (d, s) in r.subscripts.iter().enumerate() {
            e = e.add(&s.scale(strides[d] * elem));
        }
        e
    }
}

// ---------------------------------------------------------------------------
// layout.* telemetry.
// ---------------------------------------------------------------------------

/// Process-wide counters for non-affine layout handling in the trace
/// generator, mirroring `mlc_core::analytic`'s fallback telemetry: every
/// Morton nest either batches into runs or certifiably bails to scalar
/// emission, and both outcomes are observable.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static MORTON_NESTS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static MORTON_RUNS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static MORTON_SCALAR_BAILS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static COT_NESTS: AtomicU64 = AtomicU64::new(0);

    /// Drained snapshot of the process-wide layout counters.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct LayoutStats {
        /// Nests containing at least one Morton reference streamed.
        pub morton_nests: u64,
        /// Coalesced constant-stride runs emitted for Morton references
        /// (the fast path batching across Morton tiles).
        pub morton_runs: u64,
        /// Innermost invocations that certifiably bailed to per-access
        /// scalar emission (multi-reference Morton bodies).
        pub morton_scalar_bails: u64,
        /// Cache-obliviously tiled nests materialized by
        /// [`crate::transform::cache_oblivious_in_program`].
        pub cot_nests: u64,
    }

    /// Drain and return the counters (they reset to zero).
    pub fn take_stats() -> LayoutStats {
        LayoutStats {
            morton_nests: MORTON_NESTS.swap(0, Ordering::Relaxed),
            morton_runs: MORTON_RUNS.swap(0, Ordering::Relaxed),
            morton_scalar_bails: MORTON_SCALAR_BAILS.swap(0, Ordering::Relaxed),
            cot_nests: COT_NESTS.swap(0, Ordering::Relaxed),
        }
    }

    /// Drain the counters into a [`mlc_telemetry::MetricsRegistry`] as
    /// `layout.*` counters (zero values are skipped).
    pub fn install_metrics(reg: &mut mlc_telemetry::MetricsRegistry) {
        let s = take_stats();
        for (name, v) in [
            ("layout.morton_nests", s.morton_nests),
            ("layout.morton_runs", s.morton_runs),
            ("layout.morton_scalar_bails", s.morton_scalar_bails),
            ("layout.cot_nests", s.cot_nests),
        ] {
            if v > 0 {
                reg.count(name, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayDecl;
    use crate::expr::AffineExpr as E;

    fn two_arrays() -> Vec<ArrayDecl> {
        vec![
            ArrayDecl::f64("A", vec![10, 10]),
            ArrayDecl::f64("B", vec![10]),
        ]
    }

    #[test]
    fn contiguous_layout_packs_in_order() {
        let arrays = two_arrays();
        let l = DataLayout::contiguous(&arrays);
        assert_eq!(l.bases, vec![0, 800]);
        assert_eq!(l.total_size, 880);
        assert_eq!(l.padding_overhead(&arrays), 0);
    }

    #[test]
    fn pads_shift_subsequent_arrays() {
        let arrays = two_arrays();
        let l = DataLayout::with_pads(&arrays, &[32, 64]);
        assert_eq!(l.bases, vec![32, 32 + 800 + 64]);
        assert_eq!(l.padding_overhead(&arrays), 96);
        assert_eq!(l.pads(&arrays), vec![32, 64]);
    }

    #[test]
    fn element_addressing_is_column_major() {
        let arrays = two_arrays();
        let l = DataLayout::contiguous(&arrays);
        assert_eq!(l.addr(&arrays, 0, &[0, 0]), 0);
        assert_eq!(l.addr(&arrays, 0, &[1, 0]), 8);
        assert_eq!(l.addr(&arrays, 0, &[0, 1]), 80);
        assert_eq!(l.addr(&arrays, 1, &[3]), 800 + 24);
    }

    #[test]
    fn address_expr_matches_pointwise_eval() {
        let arrays = two_arrays();
        let l = DataLayout::with_pads(&arrays, &[16, 8]);
        let r = ArrayRef::read(0, vec![E::var("i"), E::var_plus("j", 1)]);
        let e = l.address_expr(&arrays, &r);
        for (i, j) in [(0i64, 0i64), (3, 2), (9, 8)] {
            let env = |v: &str| match v {
                "i" => Some(i),
                "j" => Some(j),
                _ => None,
            };
            assert_eq!(e.eval(env).unwrap() as u64, l.addr(&arrays, 0, &[i, j + 1]));
        }
    }

    #[test]
    fn min_bits_is_ceil_log2() {
        assert_eq!(min_bits(1), 0);
        assert_eq!(min_bits(2), 1);
        assert_eq!(min_bits(3), 2);
        assert_eq!(min_bits(4), 2);
        assert_eq!(min_bits(5), 3);
        assert_eq!(min_bits(1024), 10);
        assert_eq!(min_bits(1025), 11);
    }

    #[test]
    fn round_robin_word_interleaves_then_drains() {
        assert_eq!(round_robin_word(&[2, 2]), vec![0, 1, 0, 1]);
        assert_eq!(round_robin_word(&[3, 1]), vec![0, 1, 0, 0]);
        assert_eq!(round_robin_word(&[0, 2]), vec![1, 1]);
    }

    #[test]
    fn blocked_word_groups_bits() {
        assert_eq!(blocked_word(&[4, 2], &[2, 1]), vec![0, 0, 1, 0, 0, 1]);
        assert_eq!(blocked_word(&[2, 2], &[2, 2]), vec![0, 0, 1, 1]);
        // Zero group sizes fall back to one bit per round.
        assert_eq!(blocked_word(&[1, 1], &[0, 0]), vec![0, 1]);
    }

    #[test]
    fn morton_index_interleaves_classically() {
        // Classic 2-D Z-order with word [0,1,0,1,...]: interleave x and y.
        let word = round_robin_word(&[2, 2]);
        // (x,y) = (3,0) -> binary x bits at even positions: 0b0101 = 5.
        assert_eq!(morton_index(&word, &[3, 0]), 5);
        assert_eq!(morton_index(&word, &[0, 3]), 10);
        assert_eq!(morton_index(&word, &[3, 3]), 15);
        assert_eq!(morton_index(&word, &[1, 2]), 0b1001);
    }

    #[test]
    fn morton_index_is_a_bijection_on_the_envelope() {
        let word = blocked_word(&[3, 2], &[2, 1]);
        let mut seen = [false; 32];
        for x in 0..8i64 {
            for y in 0..4i64 {
                let k = morton_index(&word, &[x, y]) as usize;
                assert!(!seen[k], "collision at ({x},{y})");
                seen[k] = true;
            }
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 32);
    }

    #[test]
    fn morton_family_validates_against_extents() {
        let a = ArrayDecl::f64("A", vec![10, 10]);
        // 4+4 bits cover 10x10.
        LayoutFamily::Morton(round_robin_word(&[4, 4]))
            .validate(&a)
            .unwrap();
        // 3 bits cannot encode index 9.
        assert!(LayoutFamily::Morton(round_robin_word(&[3, 4]))
            .validate(&a)
            .is_err());
        // Word naming a missing dimension.
        assert!(LayoutFamily::Morton(vec![0, 2]).validate(&a).is_err());
        let canonical = LayoutFamily::morton_round_robin(&a);
        canonical.validate(&a).unwrap();
        assert_eq!(canonical.alloc_bytes(&a), 256 * 8);
    }

    #[test]
    fn morton_family_shifts_subsequent_bases() {
        let arrays = two_arrays(); // A(10,10), B(10)
        let fams = vec![
            LayoutFamily::morton_round_robin(&arrays[0]),
            LayoutFamily::Linear,
        ];
        let l = DataLayout::with_pads_and_families(&arrays, &[0, 0], &fams).unwrap();
        // A's Morton envelope is 16x16 elements = 2048 bytes, not 800.
        assert_eq!(l.bases, vec![0, 2048]);
        assert_eq!(l.total_size, 2048 + 80);
        assert!(!l.fully_affine());
        assert_eq!(l.pads(&arrays), vec![0, 0]);
    }

    #[test]
    fn morton_addr_matches_interleave() {
        let arrays = two_arrays();
        let word = round_robin_word(&[4, 4]);
        let fams = vec![LayoutFamily::Morton(word.clone()), LayoutFamily::Linear];
        let l = DataLayout::with_pads_and_families(&arrays, &[8, 0], &fams).unwrap();
        for (i, j) in [(0i64, 0i64), (3, 2), (9, 9)] {
            assert_eq!(
                l.addr(&arrays, 0, &[i, j]),
                8 + morton_index(&word, &[i, j]) as u64 * 8
            );
        }
        // B stays linear.
        assert_eq!(l.addr(&arrays, 1, &[3]), l.bases[1] + 24);
    }

    #[test]
    #[should_panic(expected = "non-affine layout family")]
    fn address_expr_refuses_morton_arrays() {
        let arrays = two_arrays();
        let fams = vec![
            LayoutFamily::morton_round_robin(&arrays[0]),
            LayoutFamily::Linear,
        ];
        let l = DataLayout::with_pads_and_families(&arrays, &[0, 0], &fams).unwrap();
        let r = ArrayRef::read(0, vec![E::var("i"), E::var("j")]);
        l.address_expr(&arrays, &r);
    }

    #[test]
    fn address_expr_respects_intra_pad() {
        let mut arrays = two_arrays();
        arrays[0].set_dim_pad(0, 2); // columns now 12 elements apart
        let l = DataLayout::contiguous(&arrays);
        let r = ArrayRef::read(0, vec![E::var("i"), E::var("j")]);
        let e = l.address_expr(&arrays, &r);
        assert_eq!(e.coeff("i"), 8);
        assert_eq!(e.coeff("j"), 12 * 8);
    }
}
