//! Data layouts: base addresses for every array in one address space.
//!
//! The SUIF pre-passes in Section 6.1 collect all optimizable variables into
//! one global structure so that "optimizing passes may now modify the base
//! addresses of variables by reordering fields in the structure and
//! inserting pad variables". A [`DataLayout`] is that structure: array `k`
//! starts at byte `bases[k]`, and inter-variable padding inserts bytes
//! before an array, shifting it (and everything after it) upward.

use crate::array::{ArrayDecl, ArrayId};
use crate::expr::AffineExpr;
use crate::reference::ArrayRef;

/// Byte base addresses for a program's arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    /// Base byte address of each array (parallel to the program's arrays).
    pub bases: Vec<u64>,
    /// One byte past the end of the last array.
    pub total_size: u64,
}

impl DataLayout {
    /// Lay arrays out back-to-back in declaration order starting at 0 — the
    /// original, unpadded layout. With power-of-two-ish array sizes this is
    /// the layout where "all base addresses in the original sample program
    /// coincide on the cache" (Section 3.1.1).
    pub fn contiguous(arrays: &[ArrayDecl]) -> Self {
        Self::with_pads(arrays, &vec![0; arrays.len()])
    }

    /// Lay arrays out in declaration order with `pads[k]` bytes of padding
    /// inserted *before* array `k`.
    pub fn with_pads(arrays: &[ArrayDecl], pads: &[u64]) -> Self {
        assert_eq!(arrays.len(), pads.len(), "one pad per array");
        let mut bases = Vec::with_capacity(arrays.len());
        let mut cursor = 0u64;
        for (a, &p) in arrays.iter().zip(pads) {
            cursor += p;
            bases.push(cursor);
            cursor += a.size_bytes() as u64;
        }
        Self {
            bases,
            total_size: cursor,
        }
    }

    /// The pads this layout implies, given the declarations it was built for
    /// (inverse of [`DataLayout::with_pads`]).
    pub fn pads(&self, arrays: &[ArrayDecl]) -> Vec<u64> {
        let mut pads = Vec::with_capacity(arrays.len());
        let mut cursor = 0u64;
        for (a, &b) in arrays.iter().zip(&self.bases) {
            pads.push(b - cursor);
            cursor = b + a.size_bytes() as u64;
        }
        pads
    }

    /// Base address of array `id`.
    #[inline]
    pub fn base(&self, id: ArrayId) -> u64 {
        self.bases[id]
    }

    /// Byte address of element `idx` (0-based multi-index) of array `id`.
    pub fn addr(&self, arrays: &[ArrayDecl], id: ArrayId, idx: &[i64]) -> u64 {
        let a = &arrays[id];
        self.bases[id] + (a.linear_index(idx) as u64) * a.elem_size as u64
    }

    /// Total padding bytes added relative to the contiguous layout — the
    /// space overhead the padding experiments report.
    pub fn padding_overhead(&self, arrays: &[ArrayDecl]) -> u64 {
        let data: u64 = arrays.iter().map(|a| a.size_bytes() as u64).sum();
        self.total_size - data
    }

    /// Resolve a reference to the affine byte-address function it denotes
    /// under this layout: `addr(env) = c0 + Σ c_v · v`, returned as an
    /// [`AffineExpr`] in the loop variables (coefficients in **bytes**).
    ///
    /// This is the compile step behind both trace generation and every
    /// conflict/reuse analysis: once subscripts are folded through the
    /// column-major strides and the base address, all cache questions are
    /// questions about one affine function per reference.
    pub fn address_expr(&self, arrays: &[ArrayDecl], r: &ArrayRef) -> AffineExpr {
        let a = &arrays[r.array];
        let strides = a.strides();
        let elem = a.elem_size as i64;
        let mut e = AffineExpr::constant(self.bases[r.array] as i64);
        for (d, s) in r.subscripts.iter().enumerate() {
            e = e.add(&s.scale(strides[d] * elem));
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayDecl;
    use crate::expr::AffineExpr as E;

    fn two_arrays() -> Vec<ArrayDecl> {
        vec![
            ArrayDecl::f64("A", vec![10, 10]),
            ArrayDecl::f64("B", vec![10]),
        ]
    }

    #[test]
    fn contiguous_layout_packs_in_order() {
        let arrays = two_arrays();
        let l = DataLayout::contiguous(&arrays);
        assert_eq!(l.bases, vec![0, 800]);
        assert_eq!(l.total_size, 880);
        assert_eq!(l.padding_overhead(&arrays), 0);
    }

    #[test]
    fn pads_shift_subsequent_arrays() {
        let arrays = two_arrays();
        let l = DataLayout::with_pads(&arrays, &[32, 64]);
        assert_eq!(l.bases, vec![32, 32 + 800 + 64]);
        assert_eq!(l.padding_overhead(&arrays), 96);
        assert_eq!(l.pads(&arrays), vec![32, 64]);
    }

    #[test]
    fn element_addressing_is_column_major() {
        let arrays = two_arrays();
        let l = DataLayout::contiguous(&arrays);
        assert_eq!(l.addr(&arrays, 0, &[0, 0]), 0);
        assert_eq!(l.addr(&arrays, 0, &[1, 0]), 8);
        assert_eq!(l.addr(&arrays, 0, &[0, 1]), 80);
        assert_eq!(l.addr(&arrays, 1, &[3]), 800 + 24);
    }

    #[test]
    fn address_expr_matches_pointwise_eval() {
        let arrays = two_arrays();
        let l = DataLayout::with_pads(&arrays, &[16, 8]);
        let r = ArrayRef::read(0, vec![E::var("i"), E::var_plus("j", 1)]);
        let e = l.address_expr(&arrays, &r);
        for (i, j) in [(0i64, 0i64), (3, 2), (9, 8)] {
            let env = |v: &str| match v {
                "i" => Some(i),
                "j" => Some(j),
                _ => None,
            };
            assert_eq!(e.eval(env).unwrap() as u64, l.addr(&arrays, 0, &[i, j + 1]));
        }
    }

    #[test]
    fn address_expr_respects_intra_pad() {
        let mut arrays = two_arrays();
        arrays[0].set_dim_pad(0, 2); // columns now 12 elements apart
        let l = DataLayout::contiguous(&arrays);
        let r = ArrayRef::read(0, vec![E::var("i"), E::var("j")]);
        let e = l.address_expr(&arrays, &r);
        assert_eq!(e.coeff("i"), 8);
        assert_eq!(e.coeff("j"), 12 * 8);
    }
}
