//! Array variable declarations.
//!
//! Arrays are column-major ("arrays are column-major in Fortran", Section 2),
//! so the *first* subscript is the unit-stride dimension. Intra-variable
//! padding (used by ADI and ERLE in Section 6.1, and by the eucPad tiling
//! algorithm) pads the leading dimension: elements stay where the subscripts
//! say, but columns get farther apart.

/// Index of an array within its [`crate::program::Program`].
pub type ArrayId = usize;

/// A declared array variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name (used in diagrams and reports).
    pub name: String,
    /// Element size in bytes (8 for the double-precision data of the
    /// experiments; the paper's capacity arithmetic — "3 to 8 columns" of an
    /// N=250..520 array in a 16 KB L1 — matches 8-byte elements).
    pub elem_size: usize,
    /// Extent of each dimension, leading (unit-stride) dimension first.
    pub dims: Vec<usize>,
    /// Extra elements of padding appended to each dimension's extent when
    /// computing strides (intra-variable padding). `pad[d]` widens the
    /// allocated extent of dimension `d` without changing the logical size.
    pub dim_pad: Vec<usize>,
}

impl ArrayDecl {
    /// Declare an unpadded array.
    pub fn new(name: impl Into<String>, elem_size: usize, dims: Vec<usize>) -> Self {
        assert!(elem_size > 0, "element size must be positive");
        assert!(!dims.is_empty(), "arrays need at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        let rank = dims.len();
        Self {
            name: name.into(),
            elem_size,
            dims,
            dim_pad: vec![0; rank],
        }
    }

    /// Double-precision (8-byte) array — the experiments' default.
    pub fn f64(name: impl Into<String>, dims: Vec<usize>) -> Self {
        Self::new(name, 8, dims)
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Allocated extent of dimension `d` (logical extent plus intra-pad).
    #[inline]
    pub fn alloc_dim(&self, d: usize) -> usize {
        self.dims[d] + self.dim_pad[d]
    }

    /// Set intra-variable padding on dimension `d` (replacing any previous
    /// pad on that dimension).
    pub fn set_dim_pad(&mut self, d: usize, pad: usize) {
        self.dim_pad[d] = pad;
    }

    /// Column-major element strides, in elements. `strides()[0] == 1`.
    pub fn strides(&self) -> Vec<i64> {
        let mut s = Vec::with_capacity(self.rank());
        let mut acc = 1i64;
        for d in 0..self.rank() {
            s.push(acc);
            acc *= self.alloc_dim(d) as i64;
        }
        s
    }

    /// Total allocated elements (including intra-pad).
    pub fn alloc_elems(&self) -> usize {
        (0..self.rank()).map(|d| self.alloc_dim(d)).product()
    }

    /// Total allocated size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.alloc_elems() * self.elem_size
    }

    /// Linear element offset of a (0-based) multi-index. Indices may sit in
    /// the intra-pad region of a dimension (models sometimes walk the halo),
    /// but must be non-negative and within the allocated extent.
    ///
    /// # Panics
    /// Panics in debug builds on rank mismatch or out-of-allocation indices.
    #[inline]
    pub fn linear_index(&self, idx: &[i64]) -> i64 {
        debug_assert_eq!(idx.len(), self.rank(), "rank mismatch for {}", self.name);
        let mut acc = 0i64;
        let mut stride = 1i64;
        #[allow(clippy::needless_range_loop)] // `d` indexes idx and the allocated extents together
        for d in 0..self.rank() {
            debug_assert!(
                idx[d] >= 0 && (idx[d] as usize) < self.alloc_dim(d),
                "index {} out of bounds for dim {} of {} (alloc extent {})",
                idx[d],
                d,
                self.name,
                self.alloc_dim(d)
            );
            acc += idx[d] * stride;
            stride *= self.alloc_dim(d) as i64;
        }
        acc
    }

    /// The byte distance between consecutive columns (stride of dimension 1),
    /// or the full array for 1-D arrays. This is the arc length ("distance
    /// of N, the column size") in the paper's layout diagrams.
    pub fn column_bytes(&self) -> usize {
        if self.rank() >= 2 {
            self.alloc_dim(0) * self.elem_size
        } else {
            self.size_bytes()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_strides() {
        let a = ArrayDecl::f64("A", vec![100, 50]);
        assert_eq!(a.strides(), vec![1, 100]);
        assert_eq!(a.alloc_elems(), 5000);
        assert_eq!(a.size_bytes(), 40_000);
    }

    #[test]
    fn linear_index_matches_fortran_order() {
        let a = ArrayDecl::f64("A", vec![10, 4]);
        assert_eq!(a.linear_index(&[0, 0]), 0);
        assert_eq!(a.linear_index(&[1, 0]), 1); // unit stride on dim 0
        assert_eq!(a.linear_index(&[0, 1]), 10); // one column over
        assert_eq!(a.linear_index(&[3, 2]), 23);
    }

    #[test]
    fn intra_pad_widens_columns() {
        let mut a = ArrayDecl::f64("A", vec![100, 50]);
        a.set_dim_pad(0, 4);
        assert_eq!(a.strides(), vec![1, 104]);
        assert_eq!(a.column_bytes(), 104 * 8);
        assert_eq!(a.alloc_elems(), 104 * 50);
        // Logical extents unchanged.
        assert_eq!(a.dims, vec![100, 50]);
    }

    #[test]
    fn one_dim_column_is_whole_array() {
        let b = ArrayDecl::f64("B", vec![256]);
        assert_eq!(b.column_bytes(), 2048);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_dim() {
        ArrayDecl::f64("A", vec![0]);
    }

    #[test]
    fn three_d_strides() {
        let a = ArrayDecl::f64("A", vec![8, 4, 2]);
        assert_eq!(a.strides(), vec![1, 8, 32]);
        assert_eq!(a.linear_index(&[1, 2, 1]), 1 + 16 + 32);
    }
}
