//! One self-contained test/service case: a program, a layout for its
//! arrays, and a hierarchy.
//!
//! Originally this lived in `mlc-fuzz` as "one fuzz case"; it moved here
//! when the [`crate::corpus`] text serialization became the wire format of
//! the `mlc-serve` HTTP API — a case is now equally a shrunk fuzz
//! reproducer, a committed regression input, and a service request body,
//! and every consumer (fuzzer, tier-1 replay, server) needs the same type
//! below the fuzzing layer.

use crate::arbitrary::{arbitrary_layout, arbitrary_program, ProgramGenConfig};
use crate::{DataLayout, LayoutFamily, Program};
use mlc_cache_sim::arbitrary::{arbitrary_hierarchy, HierarchyGenConfig};
use mlc_cache_sim::rng::DetRng;
use mlc_cache_sim::HierarchyConfig;

/// Generation bounds for a whole case.
#[derive(Debug, Clone, Default)]
pub struct CaseConfig {
    /// Program-side bounds.
    pub program: ProgramGenConfig,
    /// Hierarchy-side bounds.
    pub hierarchy: HierarchyGenConfig,
}

/// One generated (or shrunk, or replayed) test case. The layout is kept as
/// per-array pads so shrinking and serialization stay trivial; use
/// [`Case::layout`] for the materialized [`DataLayout`].
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// The seed this case was generated from (provenance only — a shrunk
    /// case no longer matches its seed's generator output).
    pub seed: u64,
    /// The program under test.
    pub program: Program,
    /// Inter-variable pad (bytes) before each array, in declaration order.
    pub pads: Vec<u64>,
    /// Per-array layout family, in declaration order. Empty means
    /// all-[`LayoutFamily::Linear`] (the pre-family corpus format).
    pub families: Vec<LayoutFamily>,
    /// The cache hierarchy under test.
    pub hierarchy: HierarchyConfig,
}

impl Case {
    /// Deterministically generate the case for `seed`.
    pub fn generate(seed: u64, cfg: &CaseConfig) -> Self {
        let mut rng = DetRng::new(seed);
        let program = arbitrary_program(&mut rng, &cfg.program);
        let layout = arbitrary_layout(&mut rng, &program.arrays);
        let pads = layout.pads(&program.arrays);
        let hierarchy = arbitrary_hierarchy(&mut rng, &cfg.hierarchy);
        Self {
            seed,
            program,
            pads,
            families: Vec::new(),
            hierarchy,
        }
    }

    /// The case's data layout (pads and families materialized into base
    /// addresses). Infallible because [`Case::validate`] already checked
    /// the family vector against the declarations.
    pub fn layout(&self) -> DataLayout {
        if self.families.is_empty() {
            DataLayout::with_pads(&self.program.arrays, &self.pads)
        } else {
            DataLayout::with_pads_and_families(&self.program.arrays, &self.pads, &self.families)
                .expect("validated case has a consistent family vector")
        }
    }

    /// Structural sanity: the program validates, the pad vector covers
    /// every array, and any layout families fit their declarations. Shrink
    /// steps and corpus parsing gate on this.
    pub fn validate(&self) -> Result<(), String> {
        self.program.validate()?;
        if self.pads.len() != self.program.arrays.len() {
            return Err(format!(
                "{} pads for {} arrays",
                self.pads.len(),
                self.program.arrays.len()
            ));
        }
        if !self.families.is_empty() {
            if self.families.len() != self.program.arrays.len() {
                return Err(format!(
                    "{} layout families for {} arrays",
                    self.families.len(),
                    self.program.arrays.len()
                ));
            }
            for (fam, a) in self.families.iter().zip(&self.program.arrays) {
                fam.validate(a)
                    .map_err(|e| format!("array {}: {e}", a.name))?;
            }
        }
        Ok(())
    }

    /// A terse human-readable size summary (`arrays/nests/refs/levels`),
    /// used in fuzzer progress lines and shrink reports.
    pub fn size_summary(&self) -> String {
        let refs: usize = self.program.nests.iter().map(|n| n.body.len()).sum();
        format!(
            "{}a/{}n/{}r/{}L",
            self.program.arrays.len(),
            self.program.nests.len(),
            refs,
            self.hierarchy.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let cfg = CaseConfig::default();
        for seed in 0..100 {
            let a = Case::generate(seed, &cfg);
            let b = Case::generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed}");
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn layout_round_trips_through_pads() {
        let c = Case::generate(7, &CaseConfig::default());
        let layout = c.layout();
        assert_eq!(layout.pads(&c.program.arrays), c.pads);
    }

    #[test]
    fn validate_catches_pad_length_mismatch() {
        let mut c = Case::generate(1, &CaseConfig::default());
        c.pads.push(64);
        assert!(c.validate().is_err());
    }

    #[test]
    fn families_flow_into_the_layout() {
        let mut c = Case::generate(3, &CaseConfig::default());
        assert!(c.families.is_empty());
        assert!(c.layout().fully_affine());
        c.families = c
            .program
            .arrays
            .iter()
            .map(LayoutFamily::morton_round_robin)
            .collect();
        c.validate().unwrap();
        let l = c.layout();
        assert!(!l.fully_affine());
        assert_eq!(l.families.len(), c.program.arrays.len());
    }

    #[test]
    fn validate_catches_bad_family_vectors() {
        let mut c = Case::generate(3, &CaseConfig::default());
        // Wrong length.
        c.families = vec![LayoutFamily::Linear];
        c.families
            .resize(c.program.arrays.len() + 1, LayoutFamily::Linear);
        assert!(c.validate().is_err());
        // Word too short for the extents.
        c.families = vec![LayoutFamily::Morton(vec![0]); c.program.arrays.len()];
        assert!(c.validate().is_err());
    }
}
