//! Reuse analysis: the Wolf–Lam vocabulary of Section 2.
//!
//! * **Self-temporal** reuse of a reference on a loop: the reference is
//!   invariant in that loop (`B(j)` on the `i` loop of Figure 1).
//! * **Self-spatial** reuse: consecutive iterations of the loop move the
//!   reference by less than a cache line (`A(j,i)`/`B(j)` on the `j` loop).
//! * **Group** reuse: reuse between *different* references to the same
//!   variable. The paper's padding and fusion analyses work on *uniformly
//!   generated sets* — references to one array whose subscripts have
//!   identical loop coefficients and differ only in constant terms, like
//!   `B(i,j-1)`, `B(i,j)`, `B(i,j+1)`. Members are a constant memory
//!   distance apart forever ("these relative positions do not change over
//!   loop iterations"), which is what makes the layout diagrams and the arc
//!   accounting well-defined.

use crate::array::{ArrayDecl, ArrayId};
use crate::nest::LoopNest;

/// Self-reuse of one reference with respect to one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfReuse {
    /// Invariant in the loop: every iteration touches the same element.
    pub temporal: bool,
    /// Moves by less than a cache line per iteration (and is not invariant).
    pub spatial: bool,
}

/// Classify the self-reuse of `nest.body[r]` on loop `level`, for a cache
/// with `line`-byte lines.
pub fn self_reuse(
    nest: &LoopNest,
    arrays: &[ArrayDecl],
    r: usize,
    level: usize,
    line: usize,
) -> SelfReuse {
    let rf = &nest.body[r];
    let a = &arrays[rf.array];
    let v = &nest.loops[level].var;
    let strides = a.strides();
    // Byte movement of the reference per unit step of the loop variable.
    let mut delta = 0i64;
    for (d, s) in rf.subscripts.iter().enumerate() {
        delta += s.coeff(v) * strides[d] * a.elem_size as i64;
    }
    delta *= nest.loops[level].step;
    if delta == 0 {
        return SelfReuse {
            temporal: true,
            spatial: false,
        };
    }
    SelfReuse {
        temporal: false,
        spatial: delta.unsigned_abs() < line as u64,
    }
}

/// A member of a uniformly generated set: which body reference, and its
/// linearized element offset (the constant part of its address function, in
/// elements, with the shared base removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UgsMember {
    /// Index into the nest body.
    pub body_index: usize,
    /// Linearized constant offset in elements. Members of a group are
    /// sorted ascending by this; the *last* member is the "leading"
    /// reference that first touches new data as the carrying loop advances
    /// upward.
    pub offset_elems: i64,
}

/// A uniformly generated set within one nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UgsGroup {
    /// The shared array.
    pub array: ArrayId,
    /// Members sorted ascending by `offset_elems` (ties keep body order —
    /// duplicate references arise after fusion, Figure 7).
    pub members: Vec<UgsMember>,
}

impl UgsGroup {
    /// Arcs between memory-adjacent members, as (trailing, leading) pairs of
    /// body indices — the arcs of the paper's layout diagrams. Duplicate
    /// offsets produce a zero-length arc, which the group-reuse accounting
    /// treats as register/L1 reuse ("only the first may cause a cache
    /// fault").
    pub fn arcs(&self) -> Vec<(UgsMember, UgsMember)> {
        self.members.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// The leading member (largest offset).
    pub fn leader(&self) -> UgsMember {
        *self.members.last().expect("group has at least one member")
    }
}

/// Partition a nest's body into uniformly generated sets.
///
/// Two references are grouped iff they name the same array and have equal
/// coefficient matrices over the nest's loop variables. Singleton groups are
/// included (they simply have no arcs).
pub fn uniformly_generated_sets(nest: &LoopNest, arrays: &[ArrayDecl]) -> Vec<UgsGroup> {
    let vars = nest.loop_vars();
    // Key: (array, coefficient matrix).
    let mut groups: Vec<(ArrayId, Vec<Vec<i64>>, Vec<UgsMember>)> = Vec::new();
    for (i, r) in nest.body.iter().enumerate() {
        let key = r.coeff_matrix(&vars);
        let strides = arrays[r.array].strides();
        let offset: i64 = r
            .subscripts
            .iter()
            .enumerate()
            .map(|(d, s)| s.constant_term() * strides[d])
            .sum();
        let member = UgsMember {
            body_index: i,
            offset_elems: offset,
        };
        if let Some(g) = groups
            .iter_mut()
            .find(|(a, k, _)| *a == r.array && *k == key)
        {
            g.2.push(member);
        } else {
            groups.push((r.array, key, vec![member]));
        }
    }
    groups
        .into_iter()
        .map(|(array, _, mut members)| {
            members.sort_by_key(|m| (m.offset_elems, m.body_index));
            UgsGroup { array, members }
        })
        .collect()
}

/// The iteration distance at which group reuse between two members is
/// realized, if a single loop of the nest carries it: find the loop whose
/// per-iteration element movement evenly divides the offset difference and
/// is the only mover. Returns `(loop level, iterations)` for simple
/// stencil-style groups (the common case in the paper), else `None`.
pub fn carrying_loop(
    nest: &LoopNest,
    arrays: &[ArrayDecl],
    g: &UgsGroup,
    from: UgsMember,
    to: UgsMember,
) -> Option<(usize, i64)> {
    let delta = to.offset_elems - from.offset_elems;
    if delta == 0 {
        return Some((nest.depth() - 1, 0));
    }
    let a = &arrays[g.array];
    let strides = a.strides();
    let rf = &nest.body[from.body_index];
    for (level, l) in nest.loops.iter().enumerate() {
        let mut move_per_iter = 0i64;
        for (d, s) in rf.subscripts.iter().enumerate() {
            move_per_iter += s.coeff(&l.var) * strides[d];
        }
        move_per_iter *= l.step;
        if move_per_iter != 0 && delta % move_per_iter == 0 {
            let iters = delta / move_per_iter;
            if iters > 0 {
                return Some((level, iters));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr as E;
    use crate::nest::Loop;
    use crate::program::figure2_example;
    use crate::reference::ArrayRef;

    #[test]
    fn figure1_self_reuse() {
        // do j { do i { B(j) = A(j,i) } }  (original order, 0-based)
        let arrays = vec![
            crate::array::ArrayDecl::f64("A", vec![64, 16]),
            crate::array::ArrayDecl::f64("B", vec![64]),
        ];
        let nest = LoopNest::new(
            "fig1",
            vec![Loop::counted("j", 0, 63), Loop::counted("i", 0, 15)],
            vec![
                ArrayRef::read(0, vec![E::var("j"), E::var("i")]),
                ArrayRef::write(1, vec![E::var("j")]),
            ],
        );
        // B(j) has temporal reuse on i, spatial on j.
        let b_on_i = self_reuse(&nest, &arrays, 1, 1, 32);
        assert!(b_on_i.temporal);
        let b_on_j = self_reuse(&nest, &arrays, 1, 0, 32);
        assert!(b_on_j.spatial && !b_on_j.temporal);
        // A(j,i) has spatial reuse on j (unit stride), none on i (column jump).
        let a_on_j = self_reuse(&nest, &arrays, 0, 0, 32);
        assert!(a_on_j.spatial);
        let a_on_i = self_reuse(&nest, &arrays, 0, 1, 32);
        assert!(!a_on_i.spatial && !a_on_i.temporal);
    }

    #[test]
    fn figure2_ugs_groups() {
        let p = figure2_example(512);
        let groups = uniformly_generated_sets(&p.nests[0], &p.arrays);
        // Nest 1: {A(i,j), A(i,j+1)}, {B...}, {C...}.
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.members.len(), 2);
            let arc = g.arcs();
            assert_eq!(arc.len(), 1);
            // Distance of one column = 512 elements.
            assert_eq!(arc[0].1.offset_elems - arc[0].0.offset_elems, 512);
        }
        // Nest 2: B group of 3, C group of 1.
        let groups2 = uniformly_generated_sets(&p.nests[1], &p.arrays);
        assert_eq!(groups2.len(), 2);
        assert_eq!(groups2[0].members.len(), 3);
        assert_eq!(groups2[0].leader().offset_elems, 512);
        assert_eq!(groups2[1].members.len(), 1);
        assert!(groups2[1].arcs().is_empty());
    }

    #[test]
    fn different_coefficients_split_groups() {
        let arrays = vec![crate::array::ArrayDecl::f64("A", vec![8, 8])];
        let nest = LoopNest::new(
            "t",
            vec![Loop::counted("j", 0, 7), Loop::counted("i", 0, 7)],
            vec![
                ArrayRef::read(0, vec![E::var("i"), E::var("j")]),
                ArrayRef::read(0, vec![E::var("j"), E::var("i")]), // transposed access
            ],
        );
        let groups = uniformly_generated_sets(&nest, &arrays);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn carrying_loop_for_column_stencil() {
        let p = figure2_example(512);
        let groups = uniformly_generated_sets(&p.nests[1], &p.arrays);
        let b = &groups[0];
        let arcs = b.arcs();
        // B(i,j-1) <- B(i,j): carried by the j loop (level 0), 1 iteration.
        let (level, iters) =
            carrying_loop(&p.nests[1], &p.arrays, b, arcs[0].0, arcs[0].1).unwrap();
        assert_eq!(level, 0);
        assert_eq!(iters, 1);
    }

    #[test]
    fn duplicate_refs_share_offset() {
        // The fused Figure 6 body reads B(i,j+1) twice.
        let arrays = vec![crate::array::ArrayDecl::f64("B", vec![16, 16])];
        let nest = LoopNest::new(
            "t",
            vec![Loop::counted("j", 1, 14), Loop::counted("i", 0, 15)],
            vec![
                ArrayRef::read(0, vec![E::var("i"), E::var_plus("j", 1)]),
                ArrayRef::read(0, vec![E::var("i"), E::var_plus("j", 1)]),
            ],
        );
        let groups = uniformly_generated_sets(&nest, &arrays);
        assert_eq!(groups.len(), 1);
        let arc = groups[0].arcs();
        assert_eq!(arc.len(), 1);
        assert_eq!(arc[0].0.offset_elems, arc[0].1.offset_elems);
        // Zero-length arc: register-level reuse.
        let (_, iters) = carrying_loop(&nest, &arrays, &groups[0], arc[0].0, arc[0].1).unwrap();
        assert_eq!(iters, 0);
    }
}
