#![warn(missing_docs)]

//! # mlc-model — loop-nest and array-reference program model
//!
//! The substrate the SC '99 optimization algorithms (`mlc-core`) analyze and
//! transform. The paper implemented its passes inside the Stanford SUIF
//! compiler over Fortran; this crate reproduces the abstractions those passes
//! consumed:
//!
//! * [`array::ArrayDecl`] — column-major (Fortran-layout) array variables.
//! * [`expr::AffineExpr`] — affine subscript expressions over loop variables.
//! * [`nest::LoopNest`] / [`program::Program`] — perfect loop nests whose
//!   bodies are lists of array references, and whole programs as sequences
//!   of nests over a shared set of arrays. Loop indices are **0-based**
//!   (the paper's Fortran examples are 1-based; models here shift bounds).
//! * [`layout::DataLayout`] — the paper's "single global structured
//!   variable": every array gets a byte base address in one address space,
//!   and padding transformations manipulate those bases.
//! * [`trace_gen`] — exact address-trace generation from a program + layout,
//!   streamed into any `mlc-cache-sim` sink. This is the bridge to the cache
//!   simulator used for every miss-rate experiment.
//! * [`reuse`] — Wolf–Lam reuse classification (self/group × temporal/
//!   spatial) and uniformly generated sets, the vocabulary of Section 2.
//! * [`dependence`] — legality tests for fusion and permutation.
//! * [`transform`] — loop permutation, reversal, fusion, strip-mining and
//!   tiling, each producing a new nest/program (the IR is immutable-ish).
//! * [`footprint`] — per-nest address-range/working-set estimates.
//! * [`diagram`] — ASCII renderings of the paper's cache-layout diagrams
//!   (Figures 3–5 and 7).
//! * [`case`] / [`corpus`] — self-contained (program, pads, hierarchy)
//!   cases and their line-oriented `.case` text format: the committed
//!   fuzz-regression corpus under `tests/corpus/` and the wire format of
//!   the `mlc-serve` HTTP API.
//!
//! ## Example: the paper's Figure 1
//!
//! ```
//! use mlc_model::prelude::*;
//!
//! // real A(N,M), B(N); do j = 1,N { do i = 1,M { B(j) = A(j,i) } }
//! let (n, m) = (64, 16);
//! let mut p = Program::new("figure1");
//! let a = p.add_array(ArrayDecl::new("A", 8, vec![n, m]));
//! let b = p.add_array(ArrayDecl::new("B", 8, vec![n]));
//! let nest = LoopNest::new(
//!     "main",
//!     vec![Loop::counted("j", 0, n as i64 - 1), Loop::counted("i", 0, m as i64 - 1)],
//!     vec![
//!         ArrayRef::read(a, vec![AffineExpr::var("j"), AffineExpr::var("i")]),
//!         ArrayRef::write(b, vec![AffineExpr::var("j")]),
//!     ],
//! );
//! p.add_nest(nest);
//! p.validate().unwrap();
//!
//! // Loop permutation moves the j loop innermost, restoring spatial reuse
//! // of A — and the access multiset is unchanged.
//! let permuted = mlc_model::transform::permute(&p.nests[0], &[1, 0]).unwrap();
//! assert_eq!(permuted.loops[0].var, "i");
//! ```

pub mod arbitrary;
pub mod array;
pub mod case;
pub mod content_hash;
pub mod corpus;
pub mod dependence;
pub mod diagram;
pub mod distribute;
pub mod expr;
pub mod footprint;
pub mod layout;
pub mod nest;
pub mod pretty;
pub mod program;
pub mod reference;
pub mod reuse;
pub mod trace_gen;
pub mod transform;

/// Convenient glob import for model construction.
pub mod prelude {
    pub use crate::array::{ArrayDecl, ArrayId};
    pub use crate::expr::AffineExpr;
    pub use crate::layout::{DataLayout, LayoutFamily};
    pub use crate::nest::{Loop, LoopNest};
    pub use crate::program::Program;
    pub use crate::reference::ArrayRef;
    pub use mlc_cache_sim::trace::AccessKind;
}

pub use array::{ArrayDecl, ArrayId};
pub use expr::AffineExpr;
pub use layout::{DataLayout, LayoutFamily};
pub use nest::{Loop, LoopNest};
pub use program::Program;
pub use reference::ArrayRef;
