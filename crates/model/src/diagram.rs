//! ASCII cache-layout diagrams (the paper's Figures 3–5 and 7).
//!
//! "Each box corresponds to the L1 cache during a given loop nest, with the
//! width representing the cache size. Each dot represents a variable
//! reference; its position in a box indicates its cache location inside the
//! loop nest. [...] Arcs connect references to the same variable."
//! (Section 3.1.1.)
//!
//! A reference's *cache location* is the address it generates at the nest's
//! first iteration, modulo the cache size; because all references in these
//! programs move in unit stride together, relative positions are invariant
//! over iterations, so one snapshot characterizes the whole nest.

use crate::layout::DataLayout;
use crate::nest::LoopNest;
use crate::program::Program;
use crate::reuse::uniformly_generated_sets;
use mlc_cache_sim::CacheConfig;

/// Absolute byte address of every body reference at the nest's first
/// iteration. For lockstep (uniformly generated) references the pairwise
/// differences of these addresses are invariant over the whole nest.
pub fn reference_addresses(program: &Program, nest: &LoopNest, layout: &DataLayout) -> Vec<u64> {
    // Evaluate loop lower bounds outer-to-inner to get the first iteration.
    let mut env: Vec<(String, i64)> = Vec::with_capacity(nest.depth());
    for l in &nest.loops {
        let lookup = |v: &str| env.iter().find(|(n, _)| n == v).map(|&(_, x)| x);
        let (lo, hi) = l.bounds(lookup).expect("validated nest");
        let first = if l.step > 0 { lo } else { hi };
        env.push((l.var.clone(), first));
    }
    let lookup = |v: &str| env.iter().find(|(n, _)| n == v).map(|&(_, x)| x);
    nest.body
        .iter()
        .map(|r| {
            layout
                .address_expr(&program.arrays, r)
                .eval(lookup)
                .expect("validated nest") as u64
        })
        .collect()
}

/// Cache location (bytes into the cache) of every body reference at the
/// nest's first iteration.
pub fn reference_locations(
    program: &Program,
    nest: &LoopNest,
    layout: &DataLayout,
    cache: CacheConfig,
) -> Vec<u64> {
    reference_addresses(program, nest, layout)
        .into_iter()
        .map(|a| cache.location(a))
        .collect()
}

/// Render one nest's layout diagram as ASCII art.
///
/// The box is `width` characters wide and represents the full cache; each
/// reference is drawn as the first letter of its array's name; arcs between
/// uniformly generated neighbors are drawn as bracketed spans above the box.
/// References that collide on the same character cell are stacked onto
/// extra rows (superimposed dots = severe conflict).
pub fn render_nest(
    program: &Program,
    nest: &LoopNest,
    layout: &DataLayout,
    cache: CacheConfig,
    width: usize,
) -> String {
    assert!(width >= 8, "diagram width too small");
    let locs = reference_locations(program, nest, layout, cache);
    let col = |loc: u64| ((loc as u128 * width as u128) / cache.size as u128) as usize;

    // Dot rows: place letters, stacking collisions.
    let mut rows: Vec<Vec<char>> = vec![vec![' '; width]];
    let mut placed: Vec<(usize, usize)> = Vec::with_capacity(locs.len()); // (row, col) per ref
    for (i, &loc) in locs.iter().enumerate() {
        let c = col(loc).min(width - 1);
        let letter = program.arrays[nest.body[i].array]
            .name
            .chars()
            .next()
            .unwrap_or('?');
        let mut row = 0;
        loop {
            if rows.len() == row {
                rows.push(vec![' '; width]);
            }
            if rows[row][c] == ' ' {
                rows[row][c] = letter;
                placed.push((row, c));
                break;
            }
            row += 1;
        }
    }

    // Arc rows: one row per arc layer; an arc spans [col(from), col(to)] on
    // the cache circle. Wrapping arcs are drawn as two half-spans.
    let groups = uniformly_generated_sets(nest, &program.arrays);
    let mut arc_rows: Vec<Vec<char>> = Vec::new();
    let draw_span = |a: usize, b: usize, arc_rows: &mut Vec<Vec<char>>| {
        let (a, b) = (a.min(b), a.max(b));
        let mut r = 0;
        loop {
            if arc_rows.len() == r {
                arc_rows.push(vec![' '; width]);
            }
            if arc_rows[r][a..=b].iter().all(|&ch| ch == ' ') {
                arc_rows[r][a] = '(';
                arc_rows[r][b] = ')';
                for ch in &mut arc_rows[r][a + 1..b] {
                    *ch = '-';
                }
                break;
            }
            r += 1;
        }
    };
    for g in &groups {
        for (from, to) in g.arcs() {
            let ca = col(locs[from.body_index]).min(width - 1);
            let cb = col(locs[to.body_index]).min(width - 1);
            if ca == cb {
                continue; // zero-length (register reuse) or sub-cell arc
            }
            draw_span(ca, cb, &mut arc_rows);
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "nest {} on {} KB cache ({} B lines)\n",
        nest.name,
        cache.size / 1024,
        cache.line
    ));
    for r in arc_rows.iter().rev() {
        out.push(' ');
        out.push_str(&r.iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    for r in &rows {
        out.push('|');
        out.push_str(&r.iter().collect::<String>());
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    // Legend: per-reference cache locations.
    for (i, r) in nest.body.iter().enumerate() {
        let subs: Vec<String> = r.subscripts.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!(
            "  {}({})  loc={}\n",
            program.arrays[r.array].name,
            subs.join(", "),
            locs[i]
        ));
    }
    out
}

/// Render every nest of a program.
pub fn render_program(
    program: &Program,
    layout: &DataLayout,
    cache: CacheConfig,
    width: usize,
) -> String {
    program
        .nests
        .iter()
        .map(|n| render_nest(program, n, layout, cache, width))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::figure2_example;
    use mlc_cache_sim::CacheConfig;

    #[test]
    fn locations_reflect_bases_mod_cache() {
        // N=512 doubles: column = 4 KiB, array = 2 MiB (multiple of 16 KiB):
        // with no padding, A, B, C coincide on the cache.
        let p = figure2_example(512);
        let l = DataLayout::contiguous(&p.arrays);
        let cache = CacheConfig::direct_mapped(16 * 1024, 32);
        let locs = reference_locations(&p, &p.nests[0], &l, cache);
        // A(i,j) at first iteration (j=1, i=0): one column in = 4096.
        assert_eq!(locs[0], 4096);
        assert_eq!(locs[1], 8192); // A(i,j+1)
        assert_eq!(locs[2], 4096); // B(i,j) collides with A(i,j)
        assert_eq!(locs[4], 4096); // C(i,j) too
    }

    #[test]
    fn render_contains_letters_and_box() {
        let p = figure2_example(512);
        let l = DataLayout::contiguous(&p.arrays);
        let cache = CacheConfig::direct_mapped(16 * 1024, 32);
        let s = render_nest(&p, &p.nests[0], &l, cache, 64);
        assert!(s.contains('A') && s.contains('B') && s.contains('C'));
        assert!(s.contains("+----"));
        assert!(s.contains("loc="));
        // Colliding refs stack: more than one dot row.
        let dot_rows = s.lines().filter(|l| l.starts_with('|')).count();
        assert!(dot_rows >= 2, "expected stacked rows for conflicts:\n{s}");
    }

    #[test]
    fn padded_layout_separates_dots() {
        let p = figure2_example(512);
        // Pad B and C by 64 and 128 bytes: no more superimposed dots.
        let l = DataLayout::with_pads(&p.arrays, &[0, 64, 128]);
        let cache = CacheConfig::direct_mapped(16 * 1024, 32);
        let locs = reference_locations(&p, &p.nests[0], &l, cache);
        assert_eq!(locs[2], 4096 + 64);
        assert_eq!(locs[4], 4096 + 64 + 128);
    }

    #[test]
    fn render_program_covers_all_nests() {
        let p = figure2_example(512);
        let l = DataLayout::contiguous(&p.arrays);
        let cache = CacheConfig::direct_mapped(16 * 1024, 32);
        let s = render_program(&p, &l, cache, 64);
        assert!(s.contains("nest nest1"));
        assert!(s.contains("nest nest2"));
    }
}
