//! Random-but-valid program generation for differential testing.
//!
//! `mlc-fuzz` draws loop-nest programs from these generators and cross-checks
//! the optimization passes and simulators on them. Everything produced here
//! passes [`Program::validate`] and compiles with
//! [`crate::trace_gen::CompiledNest::try_new`] under the contiguous layout
//! *by construction*:
//!
//! * loop lower bounds are ≥ 2 and subscript offsets are within ±2, so no
//!   reference can index below 0;
//! * loop upper bounds stay at least 3 below every array extent, so offsets
//!   up to +2 stay inside the allocation;
//! * trip counts are capped per nest depth, so a generated case simulates in
//!   milliseconds even in debug builds.
//!
//! The distribution is biased toward the phenomena the paper studies: most
//! arrays share one common extent (so their column sizes collide on
//! power-of-two caches exactly as in Figure 2), the leading subscript
//! usually walks the innermost loop (column-major contiguity, giving the
//! run-length fast path real work), and extents are frequently powers of
//! two (the pathological sizes of Figure 8).

use crate::array::ArrayDecl;
use crate::expr::AffineExpr;
use crate::layout::DataLayout;
use crate::nest::{Loop, LoopNest};
use crate::program::Program;
use crate::reference::ArrayRef;
use mlc_cache_sim::rng::DetRng;

/// Bounds for [`arbitrary_program`].
#[derive(Debug, Clone)]
pub struct ProgramGenConfig {
    /// Maximum number of arrays (≥ 1).
    pub max_arrays: usize,
    /// Maximum number of nests (≥ 1).
    pub max_nests: usize,
    /// Maximum nest depth (1–3).
    pub max_depth: usize,
    /// Maximum references per nest body (≥ 1).
    pub max_refs_per_nest: usize,
    /// Largest array extent per dimension (≥ 8).
    pub max_extent: usize,
    /// Generate write references (1-in-5 per reference).
    pub allow_writes: bool,
    /// Generate step-2 loops (1-in-5 per loop).
    pub allow_nonunit_steps: bool,
    /// Generate negative-step loops (1-in-6 per loop).
    pub allow_reversed_loops: bool,
    /// Generate intra-variable padding on leading dimensions (1-in-6 per
    /// 2-D+ array).
    pub allow_dim_pads: bool,
    /// Let a nest reuse the previous nest's loop headers (1-in-2 per
    /// non-first nest). Identical headers are what makes the pair a fusion
    /// candidate, so without this the fusion cost model never gets fuzzed.
    pub allow_shared_headers: bool,
}

impl Default for ProgramGenConfig {
    fn default() -> Self {
        Self {
            max_arrays: 4,
            max_nests: 3,
            max_depth: 3,
            max_refs_per_nest: 6,
            max_extent: 40,
            allow_writes: true,
            allow_nonunit_steps: true,
            allow_reversed_loops: true,
            allow_dim_pads: true,
            allow_shared_headers: true,
        }
    }
}

const VARS: [&str; 3] = ["i", "j", "k"];

/// A random valid program within `cfg`'s bounds. Equal seeds give equal
/// programs.
pub fn arbitrary_program(rng: &mut DetRng, cfg: &ProgramGenConfig) -> Program {
    let max_extent = cfg.max_extent.max(8);
    // The shared domain size. Power-of-two extents half the time: those are
    // the cache-size-divisor column lengths that make severe conflicts
    // endemic (Figure 8's N = 256/512 pathologies, scaled down).
    let n = if rng.bool() {
        let mut n = 8usize;
        while n * 2 <= max_extent && rng.bool() {
            n *= 2;
        }
        n
    } else {
        rng.range_usize(8, max_extent + 1)
    };

    let mut p = Program::new("fuzz");
    let n_arrays = rng.range_usize(1, cfg.max_arrays.max(1) + 1);
    for a in 0..n_arrays {
        let rank = *rng.pick(&[1usize, 2, 2, 2, 3]).min(&cfg.max_depth.max(1));
        let mut dims = Vec::with_capacity(rank);
        // Leading dimension exactly n (shared column size); outer dimensions
        // n plus a little slack.
        dims.push(n);
        for _ in 1..rank {
            dims.push(n + rng.range_usize(0, 4));
        }
        let elem = if rng.range_u64(0, 4) == 0 { 4 } else { 8 };
        let name = format!("{}", (b'A' + a as u8) as char);
        let mut decl = ArrayDecl::new(name, elem, dims);
        if cfg.allow_dim_pads && decl.rank() >= 2 && rng.range_u64(0, 6) == 0 {
            decl.set_dim_pad(0, rng.range_usize(1, 4));
        }
        p.add_array(decl);
    }

    let n_nests = rng.range_usize(1, cfg.max_nests.max(1) + 1);
    for nest_idx in 0..n_nests {
        // Half the time a non-first nest clones its predecessor's headers:
        // identical headers make the pair a fusion candidate, which is the
        // only way the fusion cost model sees random inputs.
        let loops = if cfg.allow_shared_headers && nest_idx > 0 && rng.bool() {
            p.nests[nest_idx - 1].loops.clone()
        } else {
            let depth = rng.range_usize(1, cfg.max_depth.clamp(1, 3) + 1);
            // Keep total iterations per nest in the low thousands.
            let trip_cap = [16i64, 12, 8][depth - 1];
            let mut loops = Vec::with_capacity(depth);
            for var in VARS.iter().take(depth) {
                let lo = rng.range_i64(2, 4);
                let max_hi = (n as i64 - 3).min(lo + trip_cap - 1);
                let hi = rng.range_i64(lo, max_hi + 1);
                let mut l = Loop::counted(*var, lo, hi);
                if cfg.allow_nonunit_steps && rng.range_u64(0, 5) == 0 {
                    l.step = 2;
                }
                if cfg.allow_reversed_loops && rng.range_u64(0, 6) == 0 {
                    l.step = -l.step;
                }
                loops.push(l);
            }
            loops
        };
        let depth = loops.len();
        let n_refs = rng.range_usize(1, cfg.max_refs_per_nest.max(1) + 1);
        let mut body = Vec::with_capacity(n_refs);
        for _ in 0..n_refs {
            let array = rng.range_usize(0, p.arrays.len());
            let rank = p.arrays[array].rank();
            let mut subs = Vec::with_capacity(rank);
            for d in 0..rank {
                if rng.range_u64(0, 8) == 0 {
                    // Constant subscript, safely inside the extent.
                    subs.push(AffineExpr::constant(rng.range_i64(2, n as i64 - 2)));
                } else {
                    // Leading dimension usually walks the innermost loop
                    // (column-major contiguity); others pick any loop var.
                    let v = if d == 0 && rng.range_u64(0, 4) != 0 {
                        VARS[depth - 1]
                    } else {
                        VARS[rng.range_usize(0, depth)]
                    };
                    subs.push(AffineExpr::var_plus(v, rng.range_i64(-2, 3)));
                }
            }
            let write = cfg.allow_writes && rng.range_u64(0, 5) == 0;
            body.push(if write {
                ArrayRef::write(array, subs)
            } else {
                ArrayRef::read(array, subs)
            });
        }
        p.add_nest(LoopNest::new(format!("n{nest_idx}"), loops, body));
    }
    debug_assert_eq!(p.validate(), Ok(()));
    p
}

/// A random layout for `arrays`: contiguous half the time, otherwise
/// contiguous plus 8-byte-aligned inter-variable pads of up to 256 bytes —
/// enough to move bases across line and set boundaries without inflating
/// footprints.
pub fn arbitrary_layout(rng: &mut DetRng, arrays: &[ArrayDecl]) -> DataLayout {
    if rng.bool() {
        DataLayout::contiguous(arrays)
    } else {
        let pads: Vec<u64> = (0..arrays.len())
            .map(|_| 8 * rng.range_u64(0, 33))
            .collect();
        DataLayout::with_pads(arrays, &pads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_gen::CompiledNest;
    use mlc_cache_sim::trace::CountingSink;

    #[test]
    fn generated_programs_validate_and_stream() {
        let cfg = ProgramGenConfig::default();
        for seed in 0..300 {
            let mut rng = DetRng::new(seed);
            let p = arbitrary_program(&mut rng, &cfg);
            p.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: invalid program: {e}"));
            let l = arbitrary_layout(&mut rng, &p.arrays);
            let mut sink = CountingSink::default();
            for nest in &p.nests {
                let c = CompiledNest::try_new(&p, nest, &l)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                c.try_run(&mut sink)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = ProgramGenConfig::default();
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        let pa = arbitrary_program(&mut a, &cfg);
        let pb = arbitrary_program(&mut b, &cfg);
        assert_eq!(pa, pb);
        let la = arbitrary_layout(&mut a, &pa.arrays);
        let lb = arbitrary_layout(&mut b, &pb.arrays);
        assert_eq!(la, lb);
        // Different seeds diverge somewhere in a short window.
        let differs = (0..8).any(|k| {
            let mut r = DetRng::new(100 + k);
            arbitrary_program(&mut r, &cfg) != pa
        });
        assert!(differs);
    }

    #[test]
    fn feature_knobs_reach_the_output() {
        let cfg = ProgramGenConfig::default();
        let (mut writes, mut reversed, mut nonunit, mut padded) = (false, false, false, false);
        let mut shared = false;
        for seed in 0..200 {
            let mut rng = DetRng::new(seed);
            let p = arbitrary_program(&mut rng, &cfg);
            writes |= p.nests.iter().any(|n| n.body.iter().any(|r| r.is_write()));
            reversed |= p.nests.iter().any(|n| n.loops.iter().any(|l| l.step < 0));
            nonunit |= p
                .nests
                .iter()
                .any(|n| n.loops.iter().any(|l| l.step.abs() == 2));
            padded |= p.arrays.iter().any(|a| a.dim_pad.iter().any(|&d| d > 0));
            shared |= p.nests.windows(2).any(|w| w[0].loops == w[1].loops);
        }
        assert!(writes && reversed && nonunit && padded && shared);
    }
}
