//! Array references — the statements of the model.
//!
//! The paper's analyses only care about which memory locations a loop body
//! touches and in what order, so a "statement" here is just a read or write
//! of an affine-subscripted array element. Body order is program order:
//! reference 0 executes first in each iteration.

use crate::array::ArrayId;
use crate::expr::AffineExpr;
use mlc_cache_sim::trace::AccessKind;

/// One subscripted array reference, e.g. `A(i, j+1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Which array (index into the program's declarations).
    pub array: ArrayId,
    /// One affine subscript per dimension, leading dimension first.
    pub subscripts: Vec<AffineExpr>,
    /// Load or store.
    pub kind: AccessKind,
}

impl ArrayRef {
    /// A read reference.
    pub fn read(array: ArrayId, subscripts: Vec<AffineExpr>) -> Self {
        Self {
            array,
            subscripts,
            kind: AccessKind::Read,
        }
    }

    /// A write reference.
    pub fn write(array: ArrayId, subscripts: Vec<AffineExpr>) -> Self {
        Self {
            array,
            subscripts,
            kind: AccessKind::Write,
        }
    }

    /// True iff this is a store.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }

    /// The coefficient of loop variable `v` in subscript dimension `d`.
    pub fn coeff(&self, d: usize, v: &str) -> i64 {
        self.subscripts[d].coeff(v)
    }

    /// True iff no subscript mentions `v` — the reference is invariant in
    /// that loop, i.e. it carries *self-temporal* reuse on `v` (Section 2).
    pub fn invariant_in(&self, v: &str) -> bool {
        self.subscripts.iter().all(|s| s.coeff(v) == 0)
    }

    /// The per-dimension coefficient rows for a set of loop variables, used
    /// as the uniformly-generated-set key: two references are uniformly
    /// generated iff these matrices are equal (they then differ only in
    /// constant terms).
    pub fn coeff_matrix(&self, vars: &[&str]) -> Vec<Vec<i64>> {
        self.subscripts
            .iter()
            .map(|s| vars.iter().map(|v| s.coeff(v)).collect())
            .collect()
    }

    /// The constant-term vector of the subscripts.
    pub fn constant_vector(&self) -> Vec<i64> {
        self.subscripts.iter().map(|s| s.constant_term()).collect()
    }

    /// Apply `f` to every subscript, producing a transformed reference.
    pub fn map_subscripts(&self, f: impl Fn(&AffineExpr) -> AffineExpr) -> Self {
        Self {
            array: self.array,
            subscripts: self.subscripts.iter().map(f).collect(),
            kind: self.kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_ij_plus1() -> ArrayRef {
        ArrayRef::read(0, vec![AffineExpr::var("i"), AffineExpr::var_plus("j", 1)])
    }

    #[test]
    fn invariance_detects_temporal_reuse() {
        // B(j) is invariant in i: temporal reuse on the i loop (Figure 1).
        let b_j = ArrayRef::write(1, vec![AffineExpr::var("j")]);
        assert!(b_j.invariant_in("i"));
        assert!(!b_j.invariant_in("j"));
    }

    #[test]
    fn coeff_matrix_is_ugs_key() {
        let r1 = a_ij_plus1();
        let r2 = ArrayRef::read(0, vec![AffineExpr::var("i"), AffineExpr::var("j")]);
        let vars = ["i", "j"];
        assert_eq!(r1.coeff_matrix(&vars), r2.coeff_matrix(&vars));
        assert_ne!(r1.constant_vector(), r2.constant_vector());
    }

    #[test]
    fn map_subscripts_preserves_kind() {
        let r = a_ij_plus1().map_subscripts(|s| s.clone().plus(5));
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.subscripts[1].constant_term(), 6);
    }
}
