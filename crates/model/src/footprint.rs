//! Footprint (working-set) estimation.
//!
//! Interval arithmetic over loop bounds gives the byte range each reference
//! sweeps in a nest; per-array unions give the data footprint the capacity
//! arguments in the paper rest on ("the L1 cache lacks the capacity to
//! preserve all group reuse in the first loop — this would require a cache
//! size three times the column size", Section 3.2.1).

use crate::layout::DataLayout;
use crate::nest::LoopNest;
use crate::program::Program;

/// An inclusive byte-address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRange {
    /// Lowest byte address (inclusive).
    pub min: i64,
    /// Highest byte address (inclusive).
    pub max: i64,
}

impl AddrRange {
    /// Bytes spanned (inclusive).
    pub fn span(&self) -> u64 {
        (self.max - self.min) as u64 + 1
    }

    /// Smallest range covering both.
    pub fn merge(self, other: Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Number of distinct cache lines the span can touch.
    pub fn lines(&self, line: usize) -> u64 {
        let first = self.min.div_euclid(line as i64);
        let last = self.max.div_euclid(line as i64);
        (last - first) as u64 + 1
    }
}

/// Interval environment for the nest's loop variables: `(lo, hi)` per loop,
/// computed outer-to-inner with interval propagation through affine bounds.
///
/// Returns `None` for a loop whose range is empty (footprint is then empty).
fn loop_intervals(nest: &LoopNest) -> Option<Vec<(i64, i64)>> {
    let mut iv: Vec<(i64, i64)> = Vec::with_capacity(nest.depth());
    let vars = nest.loop_vars();
    for l in &nest.loops {
        let eval_interval = |e: &crate::expr::AffineExpr| -> (i64, i64) {
            let mut lo = e.constant_term();
            let mut hi = e.constant_term();
            for (v, c) in e.terms() {
                let k = vars.iter().position(|&x| x == v).expect("validated nest");
                let (vlo, vhi) = iv[k];
                if c >= 0 {
                    lo += c * vlo;
                    hi += c * vhi;
                } else {
                    lo += c * vhi;
                    hi += c * vlo;
                }
            }
            (lo, hi)
        };
        // lower = max(lowers): interval max; upper = min(uppers).
        let lo = l
            .lowers
            .iter()
            .map(&eval_interval)
            .map(|(a, _)| a)
            .max()
            .unwrap();
        let hi = l
            .uppers
            .iter()
            .map(&eval_interval)
            .map(|(_, b)| b)
            .min()
            .unwrap();
        if hi < lo {
            return None;
        }
        iv.push((lo, hi));
    }
    Some(iv)
}

/// The byte range each body reference sweeps over the whole nest.
pub fn reference_ranges(program: &Program, nest: &LoopNest, layout: &DataLayout) -> Vec<AddrRange> {
    let Some(iv) = loop_intervals(nest) else {
        return vec![AddrRange { min: 0, max: -1 }; nest.body.len()];
    };
    let vars = nest.loop_vars();
    nest.body
        .iter()
        .map(|r| {
            let addr = layout.address_expr(&program.arrays, r);
            let mut lo = addr.constant_term();
            let mut hi = addr.constant_term();
            for (v, c) in addr.terms() {
                let k = vars.iter().position(|&x| x == v).expect("validated nest");
                let (vlo, vhi) = iv[k];
                if c >= 0 {
                    lo += c * vlo;
                    hi += c * vhi;
                } else {
                    lo += c * vhi;
                    hi += c * vlo;
                }
            }
            // The range covers the whole element, not just its first byte.
            AddrRange {
                min: lo,
                max: hi + program.arrays[r.array].elem_size as i64 - 1,
            }
        })
        .collect()
}

/// Per-array merged footprint of a nest: `(array id, range)` for every array
/// the nest touches.
pub fn nest_footprint(
    program: &Program,
    nest: &LoopNest,
    layout: &DataLayout,
) -> Vec<(usize, AddrRange)> {
    let ranges = reference_ranges(program, nest, layout);
    let mut out: Vec<(usize, AddrRange)> = Vec::new();
    for (r, range) in nest.body.iter().zip(ranges) {
        if range.max < range.min {
            continue;
        }
        if let Some((_, acc)) = out.iter_mut().find(|(a, _)| *a == r.array) {
            *acc = acc.merge(range);
        } else {
            out.push((r.array, range));
        }
    }
    out
}

/// Total bytes a nest touches (sum of per-array spans; arrays assumed
/// disjoint, which holds for any [`DataLayout`]).
pub fn footprint_bytes(program: &Program, nest: &LoopNest, layout: &DataLayout) -> u64 {
    nest_footprint(program, nest, layout)
        .iter()
        .map(|(_, r)| r.span())
        .sum()
}

/// Whether a nest's data fits in a cache of `size` bytes (by span).
pub fn fits_in_cache(program: &Program, nest: &LoopNest, layout: &DataLayout, size: usize) -> bool {
    footprint_bytes(program, nest, layout) <= size as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayDecl;
    use crate::expr::AffineExpr as E;
    use crate::nest::Loop;
    use crate::program::figure2_example;
    use crate::reference::ArrayRef;

    #[test]
    fn figure2_nest1_footprint() {
        let n = 64;
        let p = figure2_example(n);
        let l = DataLayout::contiguous(&p.arrays);
        let fp = nest_footprint(&p, &p.nests[0], &l);
        assert_eq!(fp.len(), 3);
        // Each array: columns 1..=n-1 touched (j in 1..=n-2, j+1 up to n-1),
        // elements i in 0..=n-1: from (0,1) to (n-1,n-1).
        let a = fp[0].1;
        assert_eq!(a.min, (n as i64) * 8); // A(0,1)
        assert_eq!(a.max, (n as i64 * n as i64 - 1) * 8 + 7); // A(n-1,n-1) end
    }

    #[test]
    fn footprint_respects_layout_bases() {
        let p = figure2_example(16);
        let l = DataLayout::with_pads(&p.arrays, &[0, 100, 0]);
        let fp = nest_footprint(&p, &p.nests[0], &l);
        let b = fp.iter().find(|(a, _)| *a == 1).unwrap().1;
        assert_eq!(b.min, 16 * 16 * 8 + 100 + 16 * 8);
    }

    #[test]
    fn triangular_nest_interval() {
        let mut p = crate::program::Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![16]));
        p.add_nest(LoopNest::new(
            "n",
            vec![
                Loop::counted("j", 0, 9),
                Loop::new("i", E::constant(0), E::var("j")),
            ],
            vec![ArrayRef::read(a, vec![E::var("i")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        let fp = nest_footprint(&p, &p.nests[0], &l);
        // i ranges over [0, 9] in the interval abstraction.
        assert_eq!(
            fp[0].1,
            AddrRange {
                min: 0,
                max: 9 * 8 + 7
            }
        );
    }

    #[test]
    fn lines_counts_straddling() {
        let r = AddrRange { min: 30, max: 70 };
        assert_eq!(r.lines(32), 3); // lines 0, 1, 2
        let r2 = AddrRange { min: 32, max: 63 };
        assert_eq!(r2.lines(32), 1);
    }

    #[test]
    fn fits_in_cache_capacity_check() {
        let p = figure2_example(16); // 3 arrays * 2 KiB = 6 KiB
        let l = DataLayout::contiguous(&p.arrays);
        assert!(fits_in_cache(&p, &p.nests[0], &l, 16 * 1024));
        assert!(!fits_in_cache(&p, &p.nests[0], &l, 4 * 1024));
    }

    #[test]
    fn empty_nest_has_empty_footprint() {
        let mut p = crate::program::Program::new("t");
        let a = p.add_array(ArrayDecl::f64("A", vec![16]));
        p.add_nest(LoopNest::new(
            "n",
            vec![Loop::counted("i", 5, 2)],
            vec![ArrayRef::read(a, vec![E::var("i")])],
        ));
        let l = DataLayout::contiguous(&p.arrays);
        assert_eq!(footprint_bytes(&p, &p.nests[0], &l), 0);
    }
}
