//! [`StableHash`] implementations over the program IR and layouts.
//!
//! These feed the content-addressed result cache (`mlc_core::rescache`):
//! two (program, layout) pairs hash equal exactly when they are
//! structurally equal, and every field that can influence a simulated
//! trace — extents, intra-pads, element sizes, subscripts, bounds, steps,
//! body order, access kinds, base addresses — perturbs the hash.
//!
//! Names (program, nest, array, loop-variable) are hashed too. Array and
//! nest names cannot change a trace, but loop-variable names resolve bound
//! and subscript references, and including the rest keeps the rule simple
//! and errs in the safe direction: a rename at worst invalidates a cache
//! entry, while an omitted load-bearing field would silently alias two
//! different computations.

use crate::array::ArrayDecl;
use crate::expr::AffineExpr;
use crate::layout::{DataLayout, LayoutFamily};
use crate::nest::{Loop, LoopNest};
use crate::program::Program;
use crate::reference::ArrayRef;
use mlc_cache_sim::stable_hash::{StableHash, StableHasher};

impl StableHash for AffineExpr {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(self.constant_term());
        // Terms are kept sorted by variable with no zero coefficients, so
        // this walk is canonical.
        let terms: Vec<(&str, i64)> = self.terms().collect();
        h.write_usize(terms.len());
        for (v, c) in terms {
            h.write_str(v);
            h.write_i64(c);
        }
    }
}

impl StableHash for ArrayDecl {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        h.write_usize(self.elem_size);
        self.dims.stable_hash(h);
        self.dim_pad.stable_hash(h);
    }
}

impl StableHash for ArrayRef {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.array);
        self.subscripts.stable_hash(h);
        self.kind.stable_hash(h);
    }
}

impl StableHash for Loop {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.var);
        self.lowers.stable_hash(h);
        self.uppers.stable_hash(h);
        h.write_i64(self.step);
    }
}

impl StableHash for LoopNest {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        self.loops.stable_hash(h);
        self.body.stable_hash(h);
    }
}

impl StableHash for Program {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        self.arrays.stable_hash(h);
        self.nests.stable_hash(h);
    }
}

impl StableHash for LayoutFamily {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            LayoutFamily::Linear => h.write_usize(0),
            LayoutFamily::Morton(word) => {
                h.write_usize(1);
                h.write_usize(word.len());
                for &d in word {
                    h.write_usize(d as usize);
                }
            }
        }
    }
}

impl StableHash for DataLayout {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.bases.stable_hash(h);
        h.write_u64(self.total_size);
        // The family vector joined the layout descriptor after the first
        // digests were pinned; hash it only when some family is non-linear
        // so every all-linear layout keeps its original digest.
        if !self.fully_affine() {
            self.families.stable_hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::figure2_example;
    use mlc_cache_sim::stable_hash::stable_hash_of;

    #[test]
    fn equal_programs_hash_equal() {
        assert_eq!(
            stable_hash_of(&figure2_example(128)),
            stable_hash_of(&figure2_example(128))
        );
        assert_ne!(
            stable_hash_of(&figure2_example(128)),
            stable_hash_of(&figure2_example(129))
        );
    }

    #[test]
    fn every_program_field_perturbs_the_hash() {
        let base = figure2_example(64);
        let h0 = stable_hash_of(&base);

        let mut p = base.clone();
        p.arrays[0].dim_pad[0] = 3; // intra-pad
        assert_ne!(h0, stable_hash_of(&p));

        let mut p = base.clone();
        p.arrays[1].elem_size = 4; // element size
        assert_ne!(h0, stable_hash_of(&p));

        let mut p = base.clone();
        p.nests[0].loops[0].step = 2; // loop step
        assert_ne!(h0, stable_hash_of(&p));

        let mut p = base.clone();
        p.nests[0].loops[1].uppers[0] = AffineExpr::constant(10); // bound
        assert_ne!(h0, stable_hash_of(&p));

        let mut p = base.clone();
        p.nests[1].body.swap(0, 1); // body order
        assert_ne!(h0, stable_hash_of(&p));

        let mut p = base.clone();
        p.nests[1].body[3].kind = mlc_cache_sim::trace::AccessKind::Write; // kind
        assert_ne!(h0, stable_hash_of(&p));
    }

    #[test]
    fn layout_bases_perturb_the_hash() {
        let p = figure2_example(64);
        let a = DataLayout::contiguous(&p.arrays);
        let mut pads = vec![0u64; p.arrays.len()];
        pads[1] = 64;
        let b = DataLayout::with_pads(&p.arrays, &pads);
        assert_ne!(stable_hash_of(&a), stable_hash_of(&b));
    }

    #[test]
    fn all_linear_family_vector_leaves_the_hash_alone() {
        // Pre-family digests must survive: an explicit all-Linear family
        // vector hashes identically to the legacy constructor's layout.
        let p = figure2_example(64);
        let pads = vec![0u64; p.arrays.len()];
        let fams = vec![LayoutFamily::Linear; p.arrays.len()];
        let a = DataLayout::with_pads(&p.arrays, &pads);
        let b = DataLayout::with_pads_and_families(&p.arrays, &pads, &fams).unwrap();
        assert_eq!(stable_hash_of(&a), stable_hash_of(&b));
    }

    #[test]
    fn layout_family_perturbs_the_hash() {
        use crate::array::ArrayDecl;
        let arrays = vec![
            ArrayDecl::f64("A", vec![8, 8]),
            ArrayDecl::f64("B", vec![8, 8]),
        ];
        let pads = [0u64, 0];
        let linear = DataLayout::with_pads(&arrays, &pads);
        let rr = vec![
            LayoutFamily::morton_round_robin(&arrays[0]),
            LayoutFamily::Linear,
        ];
        let morton = DataLayout::with_pads_and_families(&arrays, &pads, &rr).unwrap();
        assert_ne!(stable_hash_of(&linear), stable_hash_of(&morton));
        // Two different interleave words over the same envelope also differ,
        // even though bases and total size agree exactly.
        let blocked = vec![
            LayoutFamily::Morton(vec![0, 0, 1, 1, 0, 1]),
            LayoutFamily::Linear,
        ];
        let morton2 = DataLayout::with_pads_and_families(&arrays, &pads, &blocked).unwrap();
        assert_eq!(morton.bases, morton2.bases);
        assert_eq!(morton.total_size, morton2.total_size);
        assert_ne!(stable_hash_of(&morton), stable_hash_of(&morton2));
    }
}
