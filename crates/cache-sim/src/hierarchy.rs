//! A multi-level cache hierarchy.
//!
//! An access probes L1; on a miss the line is allocated at L1 and the access
//! propagates to L2, and so on until a level hits (or memory is reached).
//! Each level only sees the accesses that missed every level above it, which
//! is exactly the model behind the paper's simulations and the normalization
//! in [`crate::stats`].

use crate::cache::{trips_on_line, Cache, Probe};
use crate::config::HierarchyConfig;
use crate::stats::{LevelStats, MissRateReport};
use crate::trace::{Access, AccessSink, Run};

/// A stack of cache levels driven as one unit.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    levels: Vec<Cache>,
    /// Next-line hardware prefetch: on a miss at a level, the following
    /// line is quietly installed there too (sequential tagged prefetch, the
    /// simplest form of the hardware prefetching Section 2.2 alludes to).
    next_line_prefetch: bool,
    prefetch_fills: u64,
}

impl Hierarchy {
    /// Build a cold hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        let levels = config.levels.iter().map(|&c| Cache::new(c)).collect();
        Self {
            config,
            levels,
            next_line_prefetch: false,
            prefetch_fills: 0,
        }
    }

    /// Build with next-line prefetching enabled at every level.
    pub fn with_next_line_prefetch(config: HierarchyConfig) -> Self {
        let mut h = Self::new(config);
        h.next_line_prefetch = true;
        h
    }

    /// Lines installed by the prefetcher (across all levels).
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Per-level statistics snapshot, L1 first.
    pub fn stats(&self) -> Vec<LevelStats> {
        self.levels
            .iter()
            .map(|c| LevelStats::new(c.accesses(), c.misses()))
            .collect()
    }

    /// Full report with the paper's normalization.
    pub fn report(&self) -> MissRateReport {
        MissRateReport::from_levels(self.stats())
    }

    /// Invalidate all levels (cold caches) without touching counters.
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
    }

    /// Zero all counters without touching contents. Experiments use this to
    /// exclude warm-up iterations, mirroring the paper's steady-state rates.
    pub fn reset_stats(&mut self) {
        for l in &mut self.levels {
            l.reset_stats();
        }
    }

    /// Access an address, returning the deepest level that *missed*
    /// (0-based), or `None` on an L1 hit. `Some(depth()-1)` therefore means
    /// the access went to memory.
    #[inline]
    pub fn access_addr(&mut self, addr: u64) -> Option<usize> {
        self.access_addr_kind(addr, false)
    }

    /// [`Hierarchy::access_addr`] with a load/store distinction: stores mark
    /// lines dirty at every level they allocate in, for per-level write-back
    /// counting.
    #[inline]
    pub fn access_addr_kind(&mut self, addr: u64, write: bool) -> Option<usize> {
        let mut deepest_miss = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            match level.access_kind(addr, write) {
                Probe::Hit => break,
                Probe::Miss => deepest_miss = Some(i),
            }
        }
        if self.next_line_prefetch {
            if let Some(deepest) = deepest_miss {
                for i in 0..=deepest {
                    let line = self.levels[i].config().line as u64;
                    if self.levels[i].prefetch_fill(addr + line) {
                        self.prefetch_fills += 1;
                    }
                }
            }
        }
        deepest_miss
    }

    /// Per-level write-back counts (dirty evictions), L1 first.
    /// Observational: the write-back traffic is not re-injected as accesses.
    pub fn writebacks(&self) -> Vec<u64> {
        self.levels.iter().map(|c| c.writebacks()).collect()
    }

    /// The level caches, L1 first (read-only).
    pub fn caches(&self) -> &[Cache] {
        &self.levels
    }

    /// The level caches, L1 first, mutably. This exists for the analytic
    /// closed-form engine (`mlc_core::analytic`), which credits counters and
    /// materializes state through [`Cache::account_analytic`] /
    /// [`Cache::overwrite_set`]; ordinary drivers should stream accesses
    /// instead.
    pub fn caches_mut(&mut self) -> &mut [Cache] {
        &mut self.levels
    }

    /// Whether next-line prefetching is on (the analytic engine declines
    /// prefetching hierarchies, like the run fast path does).
    pub fn prefetch_enabled(&self) -> bool {
        self.next_line_prefetch
    }

    /// [`Hierarchy::access_addr_kind`] with a telemetry probe attached: one
    /// [`mlc_telemetry::AccessEvent`] per level probed (L1 outward, stopping
    /// at the first hit) and one [`mlc_telemetry::EvictionEvent`] per line
    /// replaced. State transitions and all counters are identical to the
    /// unprobed path; prefetch fills are quiet installs and emit no events.
    #[cfg(feature = "telemetry")]
    pub fn access_addr_kind_probed(
        &mut self,
        addr: u64,
        write: bool,
        probe: &mut dyn mlc_telemetry::CacheProbe,
    ) -> Option<usize> {
        let mut deepest_miss = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            match level.access_kind_probed(addr, write, i, probe) {
                Probe::Hit => break,
                Probe::Miss => deepest_miss = Some(i),
            }
        }
        if self.next_line_prefetch {
            if let Some(deepest) = deepest_miss {
                for i in 0..=deepest {
                    let line = self.levels[i].config().line as u64;
                    if self.levels[i].prefetch_fill(addr + line) {
                        self.prefetch_fills += 1;
                    }
                }
            }
        }
        deepest_miss
    }

    /// Try to consume a [`Run`] through the line-boundary fast path: one
    /// real probe per line segment, the rest bulk-counted as guaranteed L1
    /// hits via [`Cache::note_hits`]. After the first access of a segment
    /// the line is resident at L1 and nothing else touches its set before
    /// the segment ends, so every remaining trip is a hit that cannot
    /// change cache state beyond counters and the dirty bit — identical to
    /// the scalar loop for every associativity and replacement policy.
    ///
    /// Returns `false` (caller must run the scalar loop) when the
    /// preconditions fail: next-line prefetching is enabled (a prefetch
    /// fill may evict the active line in degenerate geometries, and the
    /// paper's prefetch ablation should not silently change paths), or the
    /// stride covers more than half a line (too few accesses per line for
    /// batching to pay).
    fn try_run_fast(&mut self, run: Run) -> bool {
        if self.next_line_prefetch {
            return false;
        }
        let line = self.levels[0].config().line as u64;
        if run.stride.unsigned_abs() * 2 > line {
            return false;
        }
        let line_shift = line.trailing_zeros();
        let write = run.is_write();
        let mut addr = run.start;
        let mut left = run.count;
        while left > 0 {
            let k = trips_on_line(addr, run.stride, line_shift).min(left);
            self.access_addr_kind(addr, write);
            self.note_l1_run_hits(addr, k - 1, write);
            addr = addr.wrapping_add((run.stride as u64).wrapping_mul(k));
            left -= k;
        }
        true
    }

    /// Count `n` guaranteed L1 hits on the line at `addr`: asserted through
    /// [`Cache::note_hits`] in debug builds, a bare counter bump in release
    /// (the line was entered with an access of the same kind, so the dirty
    /// bit is already correct).
    #[inline]
    fn note_l1_run_hits(&mut self, addr: u64, n: u64, write: bool) {
        if cfg!(debug_assertions) {
            self.levels[0].note_hits(addr, n, write);
        } else {
            self.levels[0].add_hit_accesses(n);
        }
    }

    /// One line-entering access of a periodic run group: a real L1 probe,
    /// then a walk of the deeper levels that short-circuits where the
    /// group's guaranteed-hit invariant applies. `marks[l]` holds the last
    /// line of level `l+1` this reference probed; while the group's
    /// references are pairwise set-disjoint at that level (`skip[l].1`, with
    /// `skip[l].0` the level's line shift), nothing can have evicted or
    /// demoted that line since, so a repeat touch is a hit that changes only
    /// the access counter — the dirty bit was set when the line was probed
    /// with this same access kind, and promotion is a no-op because the line
    /// is still the set's most recent.
    #[inline]
    fn access_entering(&mut self, addr: u64, write: bool, marks: &mut [u64], skip: &[(u32, bool)]) {
        if self.levels[0].access_kind(addr, write) == Probe::Hit {
            return;
        }
        for (l, &(shift, disjoint)) in skip.iter().enumerate() {
            let line = addr >> shift;
            if disjoint && marks[l] == line {
                if cfg!(debug_assertions) {
                    self.levels[l + 1].note_hits(addr, 1, write);
                } else {
                    self.levels[l + 1].add_hit_accesses(1);
                }
                return;
            }
            marks[l] = line;
            if self.levels[l + 1].access_kind(addr, write) == Probe::Hit {
                return;
            }
        }
    }

    /// Try to consume an interleaved run group through the fast path.
    ///
    /// Correctness rests on one invariant: while no two references occupy
    /// *different* lines of the same L1 set, each reference's accesses after
    /// its first touch of a line are guaranteed L1 hits that cannot change
    /// cache state beyond counters and the (already-set) dirty bit — an LRU
    /// hit re-promotes the already-most-recent line, FIFO and Random never
    /// promote on hits, and hits propagate to no deeper level. Only the
    /// line-entering accesses go through the real probe path, in exact trip
    /// order, so every level's miss stream is identical to the scalar
    /// interleave.
    ///
    /// When all references share one stride, each pair's line distance stays
    /// within `{D, D+1}` for the entire run, so set collisions are decidable
    /// up front: provably collision-free groups with a line-dividing stride
    /// take a closed-form periodic path
    /// ([`Hierarchy::run_group_periodic`]); everything else goes through the
    /// windowed path ([`Hierarchy::run_group_windowed`]), which checks
    /// collisions at line-crossing granularity and replays conflicting
    /// windows scalar.
    ///
    /// Returns `false` when the group cannot take the fast path at all:
    /// prefetching enabled, mismatched trip counts, or some stride covering
    /// more than half an L1 line.
    fn try_run_group_fast(&mut self, runs: &[Run]) -> bool {
        if self.next_line_prefetch {
            return false;
        }
        let count = runs[0].count;
        if runs.iter().any(|r| r.count != count) {
            return false;
        }
        let l1 = self.levels[0].config();
        let line = l1.line as u64;
        if runs.iter().any(|r| r.stride.unsigned_abs() * 2 > line) {
            return false;
        }
        if count == 0 {
            return true;
        }
        let line_shift = line.trailing_zeros();
        let num_sets = l1.num_sets() as u64;
        let stride = runs[0].stride;
        let uniform = runs.iter().all(|r| r.stride == stride);
        let never_conflict = uniform && pairwise_set_disjoint(runs, line_shift, num_sets);

        if never_conflict && stride != 0 && line.is_multiple_of(stride.unsigned_abs()) {
            self.run_group_periodic(runs, count, line_shift);
        } else {
            self.run_group_windowed(runs, count, line_shift, num_sets - 1, never_conflict);
        }
        true
    }

    /// Collision-free group with one common line-dividing stride: every
    /// reference crosses lines with the same period `line/|stride|` trips,
    /// so its line-entering trips form an arithmetic sequence known up
    /// front. The entering accesses are emitted in exact trip order (one
    /// stable sort); every other access is a guaranteed L1 hit, flushed as
    /// one counter bump.
    fn run_group_periodic(&mut self, runs: &[Run], count: u64, line_shift: u32) {
        let n = runs.len();
        let period = (1u64 << line_shift) / runs[0].stride.unsigned_abs();
        let mut hits = 0u64;
        // Trip 0: every reference's first access, in body order; each then
        // hits until its first line crossing.
        let mut first_cross = Vec::with_capacity(n);
        for r in runs {
            self.access_addr_kind(r.start, r.is_write());
            let tol = trips_on_line(r.start, r.stride, line_shift).min(count);
            if cfg!(debug_assertions) {
                self.levels[0].note_hits(r.start, tol - 1, r.is_write());
            } else {
                hits += tol - 1;
            }
            first_cross.push(tol);
        }
        // Rounds of crossings: in round k, reference i enters a new line at
        // trip first_cross[i] + k·period, at an address exactly one line
        // past its previous entry. Within a round, ascending trip with ties
        // in body order — exactly the scalar emission order, since
        // consecutive rounds cover disjoint ascending trip ranges.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| first_cross[i]);
        let line = 1u64 << line_shift;
        let line_delta = if runs[0].stride > 0 {
            line
        } else {
            line.wrapping_neg()
        };
        // Per scheduled reference: next entering address, first-cross trip,
        // write flag.
        let mut ents: Vec<(u64, u64, bool)> = order
            .iter()
            .map(|&i| {
                (
                    runs[i].addr(first_cross[i]),
                    first_cross[i],
                    runs[i].is_write(),
                )
            })
            .collect();
        // The guaranteed-hit argument applies at *every* level whose sets
        // the group's references provably never contend for: once a
        // reference has probed a line of such a level, later touches within
        // this group find it resident and still most-recent. Track the last
        // probed line per (reference, deeper level) so entering accesses can
        // stop their miss walk with a counter bump instead of a probe.
        let skip: Vec<(u32, bool)> = self
            .levels
            .iter()
            .skip(1)
            .map(|c| {
                let cfg = c.config();
                let shift = (cfg.line as u64).trailing_zeros();
                (
                    shift,
                    pairwise_set_disjoint(runs, shift, cfg.num_sets() as u64),
                )
            })
            .collect();
        let depth = skip.len();
        let mut marks = vec![u64::MAX; n * depth];
        // Rounds where every reference enters with a full-period segment
        // need no per-entry bounds checks and contribute a closed-form hit
        // count; only the ragged tail rounds are scheduled individually.
        let full = ents
            .iter()
            .map(|&(_, fc, _)| (count - fc) / period)
            .min()
            .unwrap_or(0);
        for _ in 0..full {
            for (i, e) in ents.iter_mut().enumerate() {
                self.access_entering(e.0, e.2, &mut marks[i * depth..(i + 1) * depth], &skip);
                if cfg!(debug_assertions) {
                    self.levels[0].note_hits(e.0, period - 1, e.2);
                }
                e.0 = e.0.wrapping_add(line_delta);
            }
        }
        if !cfg!(debug_assertions) {
            hits += full * n as u64 * (period - 1);
        }
        let mut round = full;
        loop {
            let mut any = false;
            for e in ents.iter_mut() {
                let enter = e.1 + round * period;
                if enter >= count {
                    continue;
                }
                any = true;
                self.access_addr_kind(e.0, e.2);
                let seg = period.min(count - enter);
                if cfg!(debug_assertions) {
                    self.levels[0].note_hits(e.0, seg - 1, e.2);
                } else {
                    hits += seg - 1;
                }
                e.0 = e.0.wrapping_add(line_delta);
            }
            if !any {
                break;
            }
            round += 1;
        }
        self.levels[0].add_hit_accesses(hits);
    }

    /// General windowed path: advance to the next line-crossing boundary of
    /// any reference; windows where two references occupy different lines of
    /// one L1 set (the paper's severe/ping-pong conflicts) are replayed
    /// through the exact scalar interleave, and every reference re-probes in
    /// the following window since a conflicting neighbor may have evicted
    /// its line. Groups stuck in conflict bail to a pure scalar loop, so
    /// pathological layouts cost scalar plus a bounded prefix.
    fn run_group_windowed(
        &mut self,
        runs: &[Run],
        count: u64,
        line_shift: u32,
        set_mask: u64,
        never_conflict: bool,
    ) {
        /// Consecutive conflict windows before giving up on batching.
        const CONFLICT_BAIL: u32 = 16;
        let n = runs.len();
        let mut cur: Vec<u64> = runs.iter().map(|r| r.start).collect();
        // Trips left on each reference's current line (0 ⇒ recompute), its
        // current line number, and whether its next access is the first on
        // a new line (initially true; true for everyone after a conflict
        // window, whose eviction order is not tracked).
        let mut tol = vec![0u64; n];
        let mut line_of = vec![0u64; n];
        let mut entering = vec![true; n];
        let mut hits = 0u64;
        let mut conflict_streak = 0u32;
        let mut t = 0u64;
        while t < count {
            let mut w = count - t;
            for i in 0..n {
                if tol[i] == 0 {
                    tol[i] = trips_on_line(cur[i], runs[i].stride, line_shift);
                    line_of[i] = cur[i] >> line_shift;
                }
                w = w.min(tol[i]);
            }
            let mut conflict = false;
            if !never_conflict {
                // Pairs of references that both kept their lines were
                // checked when one of them last entered, so only pairs
                // involving an entering reference need (re)checking.
                'check: for i in 0..n {
                    if !entering[i] {
                        continue;
                    }
                    let (li, si) = (line_of[i], line_of[i] & set_mask);
                    for (j, &lj) in line_of.iter().enumerate() {
                        if j != i && lj != li && (lj & set_mask) == si {
                            conflict = true;
                            break 'check;
                        }
                    }
                }
            }
            if conflict {
                conflict_streak += 1;
                if conflict_streak >= CONFLICT_BAIL {
                    self.levels[0].add_hit_accesses(hits);
                    for trip in t..count {
                        for r in runs {
                            self.access_addr_kind(r.addr(trip), r.is_write());
                        }
                    }
                    return;
                }
                for trip in 0..w {
                    for (i, r) in runs.iter().enumerate() {
                        let addr = cur[i].wrapping_add((r.stride as u64).wrapping_mul(trip));
                        self.access_addr_kind(addr, r.is_write());
                    }
                }
            } else {
                conflict_streak = 0;
                for (i, r) in runs.iter().enumerate() {
                    let write = r.is_write();
                    if entering[i] {
                        self.access_addr_kind(cur[i], write);
                    }
                    let h = w - entering[i] as u64;
                    if cfg!(debug_assertions) {
                        self.levels[0].note_hits(cur[i], h, write);
                    } else {
                        hits += h;
                    }
                }
            }
            for (i, r) in runs.iter().enumerate() {
                tol[i] -= w;
                entering[i] = conflict || tol[i] == 0;
                cur[i] = cur[i].wrapping_add((r.stride as u64).wrapping_mul(w));
            }
            t += w;
        }
        self.levels[0].add_hit_accesses(hits);
    }

    /// View this hierarchy as an [`AccessSink`] that reports every access
    /// to `probe`. Drives the same state as the plain sink impl.
    #[cfg(feature = "telemetry")]
    pub fn probed<'a>(
        &'a mut self,
        probe: &'a mut dyn mlc_telemetry::CacheProbe,
    ) -> ProbedHierarchy<'a> {
        ProbedHierarchy {
            hierarchy: self,
            probe,
        }
    }
}

/// Whether a group of equal-stride runs provably never puts two references
/// on different lines of one cache set, for the level with the given line
/// shift and (power-of-two) set count.
///
/// Both marching at one rate, a pair's line distance is confined to
/// `{⌊d/line⌋, ⌊d/line⌋+1}` for every trip; a set collision needs that
/// distance to be a nonzero multiple of the set count. Addresses are
/// validated non-negative `i64`s, so the difference fits an `i64`, and line
/// and set counts are powers of two, so flooring division and divisibility
/// reduce to shift and mask.
fn pairwise_set_disjoint(runs: &[Run], line_shift: u32, num_sets: u64) -> bool {
    let smask = num_sets as i64 - 1;
    for (i, a) in runs.iter().enumerate() {
        for b in &runs[i + 1..] {
            let d = b.start.wrapping_sub(a.start) as i64;
            let d1 = d >> line_shift;
            for diff in [d1, d1 + 1] {
                if diff != 0 && (diff & smask) == 0 {
                    return false;
                }
            }
        }
    }
    true
}

/// An [`AccessSink`] wrapper pairing a [`Hierarchy`] with a
/// [`mlc_telemetry::CacheProbe`]; see [`Hierarchy::probed`].
#[cfg(feature = "telemetry")]
pub struct ProbedHierarchy<'a> {
    hierarchy: &'a mut Hierarchy,
    probe: &'a mut dyn mlc_telemetry::CacheProbe,
}

// ProbedHierarchy deliberately does NOT override `run`/`run_group`: the
// whole point of attaching a probe is to observe every individual access,
// so the trait defaults expand runs into the per-access scalar path and the
// probe sees the exact same event stream with or without run-length
// encoding upstream.
#[cfg(feature = "telemetry")]
impl AccessSink for ProbedHierarchy<'_> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.hierarchy.access_addr_kind_probed(
            access.addr,
            access.kind == crate::trace::AccessKind::Write,
            self.probe,
        );
    }
}

impl AccessSink for Hierarchy {
    #[inline]
    fn access(&mut self, access: Access) {
        self.access_addr_kind(access.addr, access.kind == crate::trace::AccessKind::Write);
    }

    fn run(&mut self, run: Run) {
        if !self.try_run_fast(run) {
            let mut addr = run.start;
            let write = run.is_write();
            for _ in 0..run.count {
                self.access_addr_kind(addr, write);
                addr = addr.wrapping_add(run.stride as u64);
            }
        }
    }

    fn run_group(&mut self, runs: &[Run]) {
        match runs {
            [] => {}
            [run] => self.run(*run),
            _ => {
                if !self.try_run_group_fast(runs) {
                    // Exact interleaved scalar fallback, mirroring the
                    // trait's default implementation.
                    for t in 0..runs[0].count {
                        for r in runs {
                            self.access_addr_kind(r.addr(t), r.is_write());
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};

    fn tiny() -> Hierarchy {
        // L1: 128 B / 32 B lines (4 lines); L2: 512 B / 64 B lines (8 lines).
        Hierarchy::new(HierarchyConfig::new(
            vec![
                CacheConfig::direct_mapped(128, 32),
                CacheConfig::direct_mapped(512, 64),
            ],
            vec![1.0, 10.0],
        ))
    }

    #[test]
    fn l1_hit_never_reaches_l2() {
        let mut h = tiny();
        assert_eq!(h.access_addr(0), Some(1)); // cold: misses both
        assert_eq!(h.access_addr(0), None); // L1 hit
        let s = h.stats();
        assert_eq!(s[0].accesses(), 2);
        assert_eq!(s[1].accesses(), 1); // only the first access reached L2
    }

    #[test]
    fn l1_conflict_can_hit_l2() {
        let mut h = tiny();
        // 0 and 128 conflict in L1 (same L1 location) but land on different
        // L2 lines (line addrs 0 and 2 of 8).
        h.access_addr(0);
        h.access_addr(128);
        assert_eq!(h.access_addr(0), Some(0)); // misses L1, hits L2
        let s = h.stats();
        assert_eq!(s[0].misses(), 3);
        assert_eq!(s[1].misses(), 2);
    }

    #[test]
    fn report_normalizes_to_l1_accesses() {
        let mut h = tiny();
        for _ in 0..5 {
            h.access_addr(0);
            h.access_addr(128);
        }
        let r = h.report();
        assert_eq!(r.total_references, 10);
        // After the two cold misses every access ping-pongs in L1 but hits L2.
        assert_eq!(r.levels[0].misses(), 10);
        assert_eq!(r.levels[1].misses(), 2);
        assert!((r.miss_rate(0) - 1.0).abs() < 1e-12);
        assert!((r.miss_rate(1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn memory_access_is_deepest_level() {
        let mut h = tiny();
        assert_eq!(h.access_addr(4096), Some(1));
    }

    #[test]
    fn flush_and_reset_are_independent() {
        let mut h = tiny();
        h.access_addr(0);
        h.flush();
        assert_eq!(h.access_addr(0), Some(1)); // cold again
        h.reset_stats();
        assert_eq!(h.stats()[0].accesses(), 0);
        assert_eq!(h.access_addr(0), None); // contents survived reset_stats
    }

    #[test]
    fn sink_impl_matches_direct_calls() {
        let mut a = tiny();
        let mut b = tiny();
        for addr in [0u64, 128, 0, 64, 192, 0] {
            a.access_addr(addr);
            b.access(Access::read(addr));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn next_line_prefetch_halves_streaming_misses() {
        let cfg = HierarchyConfig::ultrasparc_i();
        let n = 1u64 << 18;
        let mut plain = Hierarchy::new(cfg.clone());
        let mut pf = Hierarchy::with_next_line_prefetch(cfg);
        for i in 0..n {
            plain.access(Access::read(i * 8));
            pf.access(Access::read(i * 8));
        }
        let (mp, mf) = (plain.stats()[0].misses(), pf.stats()[0].misses());
        assert!(
            mf * 2 <= mp + 8,
            "prefetch should halve streaming misses: {mp} -> {mf}"
        );
        assert!(pf.prefetch_fills() > 0);
    }

    #[test]
    fn prefetch_does_not_help_ping_pong() {
        // Conflict misses alternate between two far-apart lines; the next
        // line is never the one needed, so prefetching cannot fix what
        // padding fixes.
        let cfg = HierarchyConfig::ultrasparc_i();
        let mut pf = Hierarchy::with_next_line_prefetch(cfg);
        for _ in 0..1000 {
            pf.access(Access::read(0));
            pf.access(Access::read(16 * 1024));
        }
        let r = pf.report();
        assert!(r.miss_rate(0) > 0.99, "{}", r.miss_rate(0));
    }

    #[test]
    fn writebacks_surface_per_level() {
        let mut h = tiny();
        h.access_addr_kind(0, true);
        h.access_addr_kind(128, false); // evicts dirty line 0 from L1
        let wb = h.writebacks();
        assert_eq!(wb[0], 1);
        assert_eq!(wb[1], 0);
    }

    #[test]
    fn ultrasparc_sequential_walk() {
        let mut h = Hierarchy::new(HierarchyConfig::ultrasparc_i());
        let n = 1u64 << 20; // 1 MiB walk, byte accesses
        for addr in 0..n {
            h.access(Access::read(addr));
        }
        let s = h.stats();
        assert_eq!(s[0].misses(), n / 32);
        assert_eq!(s[1].misses(), n / 64);
    }

    use crate::replacement::ReplacementPolicy;
    use crate::trace::{AccessKind, Run};

    /// Feed `runs` through the fast path on one hierarchy and through the
    /// exact scalar interleave on a clone, then demand identical per-level
    /// accesses, misses, and writebacks.
    fn assert_group_parity(cfg: HierarchyConfig, prefetch: bool, runs: &[Run]) {
        let (mut fast, mut slow) = if prefetch {
            (
                Hierarchy::with_next_line_prefetch(cfg.clone()),
                Hierarchy::with_next_line_prefetch(cfg),
            )
        } else {
            (Hierarchy::new(cfg.clone()), Hierarchy::new(cfg))
        };
        fast.run_group(runs);
        if let Some(first) = runs.first() {
            for t in 0..first.count {
                for r in runs {
                    slow.access_addr_kind(r.addr(t), r.is_write());
                }
            }
        }
        assert_eq!(fast.stats(), slow.stats(), "stats diverge for {runs:?}");
        assert_eq!(
            fast.writebacks(),
            slow.writebacks(),
            "writebacks diverge for {runs:?}"
        );
        assert_eq!(fast.prefetch_fills(), slow.prefetch_fills());
    }

    fn geometries() -> Vec<HierarchyConfig> {
        vec![
            HierarchyConfig::ultrasparc_i(),
            HierarchyConfig::new(
                vec![
                    CacheConfig::new(1024, 32, 2, ReplacementPolicy::Lru),
                    CacheConfig::direct_mapped(8192, 64),
                ],
                vec![1.0, 10.0],
            ),
            HierarchyConfig::new(
                vec![CacheConfig::new(512, 32, 4, ReplacementPolicy::Fifo)],
                vec![1.0],
            ),
            HierarchyConfig::new(
                vec![CacheConfig::new(512, 32, 4, ReplacementPolicy::Random)],
                vec![1.0],
            ),
        ]
    }

    #[test]
    fn run_matches_scalar_across_geometries() {
        for cfg in geometries() {
            for stride in [0i64, 1, 4, 8, 16, -8] {
                for kind in [AccessKind::Read, AccessKind::Write] {
                    let run = Run {
                        start: 1 << 20,
                        stride,
                        count: 500,
                        kind,
                    };
                    let mut fast = Hierarchy::new(cfg.clone());
                    fast.run(run);
                    let mut slow = Hierarchy::new(cfg.clone());
                    for t in 0..run.count {
                        slow.access_addr_kind(run.addr(t), run.is_write());
                    }
                    assert_eq!(fast.stats(), slow.stats(), "{cfg:?} {run:?}");
                    assert_eq!(fast.writebacks(), slow.writebacks());
                }
            }
        }
    }

    #[test]
    fn run_group_matches_scalar_disjoint_sets() {
        // Three unit-stride streams far apart: the common fast case.
        for cfg in geometries() {
            let runs = [
                Run {
                    start: 0,
                    stride: 8,
                    count: 1000,
                    kind: AccessKind::Read,
                },
                Run {
                    start: 1 << 21,
                    stride: 8,
                    count: 1000,
                    kind: AccessKind::Read,
                },
                Run {
                    start: 1 << 22,
                    stride: 8,
                    count: 1000,
                    kind: AccessKind::Write,
                },
            ];
            assert_group_parity(cfg, false, &runs);
        }
    }

    #[test]
    fn run_group_matches_scalar_under_ping_pong_conflict() {
        // Two streams exactly one L1 cache-size apart: every window is a
        // severe conflict and the group must replay scalar — including the
        // post-conflict re-probe that restores residency tracking.
        for cfg in geometries() {
            let l1 = cfg.levels[0].size as u64;
            let runs = [
                Run {
                    start: 0,
                    stride: 8,
                    count: 600,
                    kind: AccessKind::Write,
                },
                Run {
                    start: l1,
                    stride: 8,
                    count: 600,
                    kind: AccessKind::Read,
                },
            ];
            assert_group_parity(cfg, false, &runs);
        }
    }

    #[test]
    fn run_group_matches_scalar_intermittent_conflict() {
        // Strides differ, so the pair drifts in and out of set conflicts:
        // exercises the conflict-window/fast-window transitions both ways.
        for cfg in geometries() {
            let l1 = cfg.levels[0].size as u64;
            let runs = [
                Run {
                    start: 64,
                    stride: 8,
                    count: 2000,
                    kind: AccessKind::Write,
                },
                Run {
                    start: l1 - 256,
                    stride: -8,
                    count: 2000,
                    kind: AccessKind::Read,
                },
                Run {
                    start: 3 * l1 + 32,
                    stride: 16,
                    count: 2000,
                    kind: AccessKind::Read,
                },
            ];
            assert_group_parity(cfg, false, &runs);
        }
    }

    #[test]
    fn run_group_same_line_references_share_hits() {
        // Two references marching over the same addresses (e.g. a[i] read
        // and a[i] written back): same line in the same set is not a
        // conflict.
        let runs = [
            Run {
                start: 4096,
                stride: 8,
                count: 512,
                kind: AccessKind::Read,
            },
            Run {
                start: 4096,
                stride: 8,
                count: 512,
                kind: AccessKind::Write,
            },
        ];
        for cfg in geometries() {
            assert_group_parity(cfg, false, &runs);
        }
    }

    #[test]
    fn prefetch_forces_scalar_but_stays_exact() {
        let runs = [
            Run {
                start: 0,
                stride: 8,
                count: 800,
                kind: AccessKind::Read,
            },
            Run {
                start: 1 << 21,
                stride: 8,
                count: 800,
                kind: AccessKind::Write,
            },
        ];
        assert_group_parity(HierarchyConfig::ultrasparc_i(), true, &runs);
        let mut h = Hierarchy::with_next_line_prefetch(HierarchyConfig::ultrasparc_i());
        assert!(!h.try_run_fast(runs[0]));
        assert!(!h.try_run_group_fast(&runs));
    }

    #[test]
    fn wide_stride_falls_back_to_scalar() {
        let run = Run {
            start: 0,
            stride: 64, // 2× the 32 B L1 line of ultrasparc_i
            count: 300,
            kind: AccessKind::Read,
        };
        let mut h = Hierarchy::new(HierarchyConfig::ultrasparc_i());
        assert!(!h.try_run_fast(run));
        let mut fast = Hierarchy::new(HierarchyConfig::ultrasparc_i());
        fast.run(run);
        let mut slow = Hierarchy::new(HierarchyConfig::ultrasparc_i());
        for t in 0..run.count {
            slow.access_addr_kind(run.addr(t), false);
        }
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn run_group_empty_and_zero_count_are_noops() {
        let mut h = Hierarchy::new(HierarchyConfig::ultrasparc_i());
        h.run_group(&[]);
        h.run_group(&[
            Run {
                start: 0,
                stride: 8,
                count: 0,
                kind: AccessKind::Read,
            },
            Run {
                start: 64,
                stride: 8,
                count: 0,
                kind: AccessKind::Write,
            },
        ]);
        assert_eq!(h.stats()[0].accesses(), 0);
    }
}
