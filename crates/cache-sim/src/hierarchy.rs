//! A multi-level cache hierarchy.
//!
//! An access probes L1; on a miss the line is allocated at L1 and the access
//! propagates to L2, and so on until a level hits (or memory is reached).
//! Each level only sees the accesses that missed every level above it, which
//! is exactly the model behind the paper's simulations and the normalization
//! in [`crate::stats`].

use crate::cache::{Cache, Probe};
use crate::config::HierarchyConfig;
use crate::stats::{LevelStats, MissRateReport};
use crate::trace::{Access, AccessSink};

/// A stack of cache levels driven as one unit.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    levels: Vec<Cache>,
    /// Next-line hardware prefetch: on a miss at a level, the following
    /// line is quietly installed there too (sequential tagged prefetch, the
    /// simplest form of the hardware prefetching Section 2.2 alludes to).
    next_line_prefetch: bool,
    prefetch_fills: u64,
}

impl Hierarchy {
    /// Build a cold hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        let levels = config.levels.iter().map(|&c| Cache::new(c)).collect();
        Self {
            config,
            levels,
            next_line_prefetch: false,
            prefetch_fills: 0,
        }
    }

    /// Build with next-line prefetching enabled at every level.
    pub fn with_next_line_prefetch(config: HierarchyConfig) -> Self {
        let mut h = Self::new(config);
        h.next_line_prefetch = true;
        h
    }

    /// Lines installed by the prefetcher (across all levels).
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Per-level statistics snapshot, L1 first.
    pub fn stats(&self) -> Vec<LevelStats> {
        self.levels
            .iter()
            .map(|c| LevelStats::new(c.accesses(), c.misses()))
            .collect()
    }

    /// Full report with the paper's normalization.
    pub fn report(&self) -> MissRateReport {
        MissRateReport::from_levels(self.stats())
    }

    /// Invalidate all levels (cold caches) without touching counters.
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
    }

    /// Zero all counters without touching contents. Experiments use this to
    /// exclude warm-up iterations, mirroring the paper's steady-state rates.
    pub fn reset_stats(&mut self) {
        for l in &mut self.levels {
            l.reset_stats();
        }
    }

    /// Access an address, returning the deepest level that *missed*
    /// (0-based), or `None` on an L1 hit. `Some(depth()-1)` therefore means
    /// the access went to memory.
    #[inline]
    pub fn access_addr(&mut self, addr: u64) -> Option<usize> {
        self.access_addr_kind(addr, false)
    }

    /// [`Hierarchy::access_addr`] with a load/store distinction: stores mark
    /// lines dirty at every level they allocate in, for per-level write-back
    /// counting.
    #[inline]
    pub fn access_addr_kind(&mut self, addr: u64, write: bool) -> Option<usize> {
        let mut deepest_miss = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            match level.access_kind(addr, write) {
                Probe::Hit => break,
                Probe::Miss => deepest_miss = Some(i),
            }
        }
        if self.next_line_prefetch {
            if let Some(deepest) = deepest_miss {
                for i in 0..=deepest {
                    let line = self.levels[i].config().line as u64;
                    if self.levels[i].prefetch_fill(addr + line) {
                        self.prefetch_fills += 1;
                    }
                }
            }
        }
        deepest_miss
    }

    /// Per-level write-back counts (dirty evictions), L1 first.
    /// Observational: the write-back traffic is not re-injected as accesses.
    pub fn writebacks(&self) -> Vec<u64> {
        self.levels.iter().map(|c| c.writebacks()).collect()
    }

    /// [`Hierarchy::access_addr_kind`] with a telemetry probe attached: one
    /// [`mlc_telemetry::AccessEvent`] per level probed (L1 outward, stopping
    /// at the first hit) and one [`mlc_telemetry::EvictionEvent`] per line
    /// replaced. State transitions and all counters are identical to the
    /// unprobed path; prefetch fills are quiet installs and emit no events.
    #[cfg(feature = "telemetry")]
    pub fn access_addr_kind_probed(
        &mut self,
        addr: u64,
        write: bool,
        probe: &mut dyn mlc_telemetry::CacheProbe,
    ) -> Option<usize> {
        let mut deepest_miss = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            match level.access_kind_probed(addr, write, i, probe) {
                Probe::Hit => break,
                Probe::Miss => deepest_miss = Some(i),
            }
        }
        if self.next_line_prefetch {
            if let Some(deepest) = deepest_miss {
                for i in 0..=deepest {
                    let line = self.levels[i].config().line as u64;
                    if self.levels[i].prefetch_fill(addr + line) {
                        self.prefetch_fills += 1;
                    }
                }
            }
        }
        deepest_miss
    }

    /// View this hierarchy as an [`AccessSink`] that reports every access
    /// to `probe`. Drives the same state as the plain sink impl.
    #[cfg(feature = "telemetry")]
    pub fn probed<'a>(
        &'a mut self,
        probe: &'a mut dyn mlc_telemetry::CacheProbe,
    ) -> ProbedHierarchy<'a> {
        ProbedHierarchy {
            hierarchy: self,
            probe,
        }
    }
}

/// An [`AccessSink`] wrapper pairing a [`Hierarchy`] with a
/// [`mlc_telemetry::CacheProbe`]; see [`Hierarchy::probed`].
#[cfg(feature = "telemetry")]
pub struct ProbedHierarchy<'a> {
    hierarchy: &'a mut Hierarchy,
    probe: &'a mut dyn mlc_telemetry::CacheProbe,
}

#[cfg(feature = "telemetry")]
impl AccessSink for ProbedHierarchy<'_> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.hierarchy.access_addr_kind_probed(
            access.addr,
            access.kind == crate::trace::AccessKind::Write,
            self.probe,
        );
    }
}

impl AccessSink for Hierarchy {
    #[inline]
    fn access(&mut self, access: Access) {
        self.access_addr_kind(access.addr, access.kind == crate::trace::AccessKind::Write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};

    fn tiny() -> Hierarchy {
        // L1: 128 B / 32 B lines (4 lines); L2: 512 B / 64 B lines (8 lines).
        Hierarchy::new(HierarchyConfig::new(
            vec![
                CacheConfig::direct_mapped(128, 32),
                CacheConfig::direct_mapped(512, 64),
            ],
            vec![1.0, 10.0],
        ))
    }

    #[test]
    fn l1_hit_never_reaches_l2() {
        let mut h = tiny();
        assert_eq!(h.access_addr(0), Some(1)); // cold: misses both
        assert_eq!(h.access_addr(0), None); // L1 hit
        let s = h.stats();
        assert_eq!(s[0].accesses(), 2);
        assert_eq!(s[1].accesses(), 1); // only the first access reached L2
    }

    #[test]
    fn l1_conflict_can_hit_l2() {
        let mut h = tiny();
        // 0 and 128 conflict in L1 (same L1 location) but land on different
        // L2 lines (line addrs 0 and 2 of 8).
        h.access_addr(0);
        h.access_addr(128);
        assert_eq!(h.access_addr(0), Some(0)); // misses L1, hits L2
        let s = h.stats();
        assert_eq!(s[0].misses(), 3);
        assert_eq!(s[1].misses(), 2);
    }

    #[test]
    fn report_normalizes_to_l1_accesses() {
        let mut h = tiny();
        for _ in 0..5 {
            h.access_addr(0);
            h.access_addr(128);
        }
        let r = h.report();
        assert_eq!(r.total_references, 10);
        // After the two cold misses every access ping-pongs in L1 but hits L2.
        assert_eq!(r.levels[0].misses(), 10);
        assert_eq!(r.levels[1].misses(), 2);
        assert!((r.miss_rate(0) - 1.0).abs() < 1e-12);
        assert!((r.miss_rate(1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn memory_access_is_deepest_level() {
        let mut h = tiny();
        assert_eq!(h.access_addr(4096), Some(1));
    }

    #[test]
    fn flush_and_reset_are_independent() {
        let mut h = tiny();
        h.access_addr(0);
        h.flush();
        assert_eq!(h.access_addr(0), Some(1)); // cold again
        h.reset_stats();
        assert_eq!(h.stats()[0].accesses(), 0);
        assert_eq!(h.access_addr(0), None); // contents survived reset_stats
    }

    #[test]
    fn sink_impl_matches_direct_calls() {
        let mut a = tiny();
        let mut b = tiny();
        for addr in [0u64, 128, 0, 64, 192, 0] {
            a.access_addr(addr);
            b.access(Access::read(addr));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn next_line_prefetch_halves_streaming_misses() {
        let cfg = HierarchyConfig::ultrasparc_i();
        let n = 1u64 << 18;
        let mut plain = Hierarchy::new(cfg.clone());
        let mut pf = Hierarchy::with_next_line_prefetch(cfg);
        for i in 0..n {
            plain.access(Access::read(i * 8));
            pf.access(Access::read(i * 8));
        }
        let (mp, mf) = (plain.stats()[0].misses(), pf.stats()[0].misses());
        assert!(
            mf * 2 <= mp + 8,
            "prefetch should halve streaming misses: {mp} -> {mf}"
        );
        assert!(pf.prefetch_fills() > 0);
    }

    #[test]
    fn prefetch_does_not_help_ping_pong() {
        // Conflict misses alternate between two far-apart lines; the next
        // line is never the one needed, so prefetching cannot fix what
        // padding fixes.
        let cfg = HierarchyConfig::ultrasparc_i();
        let mut pf = Hierarchy::with_next_line_prefetch(cfg);
        for _ in 0..1000 {
            pf.access(Access::read(0));
            pf.access(Access::read(16 * 1024));
        }
        let r = pf.report();
        assert!(r.miss_rate(0) > 0.99, "{}", r.miss_rate(0));
    }

    #[test]
    fn writebacks_surface_per_level() {
        let mut h = tiny();
        h.access_addr_kind(0, true);
        h.access_addr_kind(128, false); // evicts dirty line 0 from L1
        let wb = h.writebacks();
        assert_eq!(wb[0], 1);
        assert_eq!(wb[1], 0);
    }

    #[test]
    fn ultrasparc_sequential_walk() {
        let mut h = Hierarchy::new(HierarchyConfig::ultrasparc_i());
        let n = 1u64 << 20; // 1 MiB walk, byte accesses
        for addr in 0..n {
            h.access(Access::read(addr));
        }
        let s = h.stats();
        assert_eq!(s[0].misses(), n / 32);
        assert_eq!(s[1].misses(), n / 64);
    }
}
