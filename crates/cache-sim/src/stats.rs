//! Per-level statistics and the paper's miss-rate normalization.
//!
//! Section 6.1: "Miss rates for both the L1 and L2 cache are reported as the
//! number of cache misses for that level, relative to the total number of
//! memory references (i.e., L2 misses are normalized to L1 misses)." So an
//! L2 miss rate of 3% means 3% of *all processor references* missed in L2,
//! not 3% of the accesses that reached L2.

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    accesses: u64,
    misses: u64,
}

impl LevelStats {
    pub(crate) fn new(accesses: u64, misses: u64) -> Self {
        Self { accesses, misses }
    }

    /// Rebuild counters from raw counts — the deserialization entry point
    /// for `mlc_core::rescache`, which persists reports as integers so a
    /// cached result round-trips bit-for-bit.
    ///
    /// # Panics
    /// Panics if `misses > accesses`; no simulation can produce that, so a
    /// store handing it back is corrupt (the rescache checksum should have
    /// caught it first).
    pub fn from_counts(accesses: u64, misses: u64) -> Self {
        assert!(
            misses <= accesses,
            "corrupt level stats: {misses} misses > {accesses} accesses"
        );
        Self { accesses, misses }
    }

    /// Accesses that reached this level.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses at this level.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Local miss ratio: misses over the accesses that reached this level.
    pub fn local_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A full report over a hierarchy, able to produce the paper's normalized
/// per-level miss rates.
#[derive(Debug, Clone, PartialEq)]
pub struct MissRateReport {
    /// Per-level counters, L1 first.
    pub levels: Vec<LevelStats>,
    /// Total processor references (equals `levels[0].accesses()` unless the
    /// caller overrode it, which the fusion experiment does: Section 6.4
    /// normalizes the fused version's misses by the *original* version's
    /// reference count to account for fusion removing references).
    pub total_references: u64,
}

impl MissRateReport {
    /// Build a report from per-level counters using L1 accesses as the
    /// reference count.
    pub fn from_levels(levels: Vec<LevelStats>) -> Self {
        let total = levels.first().map(|l| l.accesses()).unwrap_or(0);
        Self {
            levels,
            total_references: total,
        }
    }

    /// Override the normalization denominator (see Section 6.4).
    pub fn normalized_to(mut self, total_references: u64) -> Self {
        self.total_references = total_references;
        self
    }

    /// The paper's miss rate for `level` (0-based): misses at that level
    /// divided by total processor references, as a fraction in [0, 1].
    ///
    /// A level deeper than the hierarchy (e.g. asking for L3 stats on a
    /// 2-level config, which the ablation binaries can do when sweeping
    /// depths) reports 0.0: a level that doesn't exist misses nothing.
    /// Use [`MissRateReport::try_miss_rate`] to distinguish "no such
    /// level" from a genuine zero.
    pub fn miss_rate(&self, level: usize) -> f64 {
        self.try_miss_rate(level).unwrap_or(0.0)
    }

    /// [`MissRateReport::miss_rate`], or `None` when `level` is deeper than
    /// the hierarchy.
    pub fn try_miss_rate(&self, level: usize) -> Option<f64> {
        let stats = self.levels.get(level)?;
        if self.total_references == 0 {
            return Some(0.0);
        }
        Some(stats.misses() as f64 / self.total_references as f64)
    }

    /// Miss rate as a percentage, matching the paper's figures. Out-of-range
    /// levels report 0.0, like [`MissRateReport::miss_rate`].
    pub fn miss_rate_pct(&self, level: usize) -> f64 {
        100.0 * self.miss_rate(level)
    }

    /// Estimated memory-stall cycles under the given per-level miss
    /// penalties (same order as levels). This is the quantity the paper's
    /// profitability heuristics weigh: "comparing the sum of reuse at each
    /// cache level, scaled by the cost of cache misses at that level."
    pub fn weighted_cost(&self, miss_penalty: &[f64]) -> f64 {
        assert_eq!(
            miss_penalty.len(),
            self.levels.len(),
            "weighted_cost needs one miss penalty per cache level: got {} penalties for {} levels",
            miss_penalty.len(),
            self.levels.len()
        );
        self.levels
            .iter()
            .zip(miss_penalty)
            .map(|(l, &p)| l.misses() as f64 * p)
            .sum()
    }

    /// Number of levels in the report.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MissRateReport {
        // 1000 refs; 100 L1 misses; of those, 20 also miss L2.
        MissRateReport::from_levels(vec![LevelStats::new(1000, 100), LevelStats::new(100, 20)])
    }

    #[test]
    fn normalization_uses_l1_accesses() {
        let r = sample();
        assert_eq!(r.total_references, 1000);
        assert!((r.miss_rate(0) - 0.10).abs() < 1e-12);
        // L2 misses normalized to *total* references, not L2 accesses.
        assert!((r.miss_rate(1) - 0.02).abs() < 1e-12);
        assert!((r.miss_rate_pct(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn local_ratio_differs_from_normalized() {
        let r = sample();
        assert!((r.levels[1].local_miss_ratio() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn override_denominator_for_fusion_accounting() {
        let r = sample().normalized_to(2000);
        assert!((r.miss_rate(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn weighted_cost_scales_by_penalty() {
        let r = sample();
        // 100 L1 misses * 6 + 20 L2 misses * 50 = 1600.
        assert!((r.weighted_cost(&[6.0, 50.0]) - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = MissRateReport::from_levels(vec![]);
        assert_eq!(r.total_references, 0);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn out_of_range_level_reports_zero_not_panic() {
        let r = sample();
        assert_eq!(r.miss_rate(2), 0.0);
        assert_eq!(r.miss_rate_pct(7), 0.0);
        assert_eq!(r.try_miss_rate(2), None);
        assert!((r.try_miss_rate(1).unwrap() - 0.02).abs() < 1e-12);
        let empty = MissRateReport::from_levels(vec![]);
        assert_eq!(empty.miss_rate(0), 0.0);
        assert_eq!(empty.try_miss_rate(0), None);
    }

    #[test]
    fn zero_references_with_real_level_is_zero_not_none() {
        let r = MissRateReport::from_levels(vec![LevelStats::new(0, 0)]);
        assert_eq!(r.try_miss_rate(0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "one miss penalty per cache level")]
    fn weighted_cost_mismatch_names_the_problem() {
        sample().weighted_cost(&[6.0]);
    }
}
