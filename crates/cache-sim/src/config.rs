//! Cache and hierarchy geometry.
//!
//! All geometry is in bytes and restricted to powers of two. The paper's
//! multi-level arguments depend on the fact that on real machines the size of
//! a cache level evenly divides the size of the level below it; the
//! [`HierarchyConfig`] constructor enforces this so the modular-arithmetic
//! lemmas exercised by the property tests hold by construction.

use crate::replacement::ReplacementPolicy;

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size: usize,
    /// Line (block) size in bytes (power of two, divides `size`).
    pub line: usize,
    /// Associativity: 1 = direct-mapped. Must divide `size / line`.
    pub associativity: usize,
    /// Replacement policy; irrelevant for direct-mapped caches.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// A direct-mapped cache, the configuration the paper assumes throughout.
    ///
    /// # Panics
    /// Panics if `size`/`line` are not powers of two or `line` does not
    /// divide `size`.
    pub fn direct_mapped(size: usize, line: usize) -> Self {
        Self::new(size, line, 1, ReplacementPolicy::Lru)
    }

    /// A set-associative cache with the given replacement policy.
    ///
    /// # Panics
    /// Panics on non-power-of-two geometry, `line > size`, or an
    /// associativity that does not divide the number of lines.
    pub fn new(
        size: usize,
        line: usize,
        associativity: usize,
        replacement: ReplacementPolicy,
    ) -> Self {
        assert!(
            size.is_power_of_two(),
            "cache size {size} must be a power of two"
        );
        assert!(
            line.is_power_of_two(),
            "line size {line} must be a power of two"
        );
        assert!(line <= size, "line size {line} exceeds cache size {size}");
        assert!(associativity >= 1, "associativity must be at least 1");
        let lines = size / line;
        assert!(
            associativity <= lines && lines.is_multiple_of(associativity),
            "associativity {associativity} must divide line count {lines}"
        );
        Self {
            size,
            line,
            associativity,
            replacement,
        }
    }

    /// Number of lines in the cache.
    #[inline]
    pub fn num_lines(&self) -> usize {
        self.size / self.line
    }

    /// Number of sets (`1` for fully associative).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.associativity
    }

    /// True iff this level is direct-mapped.
    #[inline]
    pub fn is_direct_mapped(&self) -> bool {
        self.associativity == 1
    }

    /// The cache location of a byte address: its offset within one "pass"
    /// over the cache, i.e. `addr mod size`.
    ///
    /// This is the quantity the paper's layout diagrams (Figures 3-5, 7) plot
    /// on the horizontal axis and the one the padding algorithms reason
    /// about. It is meaningful for direct-mapped caches, where it fully
    /// determines conflicts.
    #[inline]
    pub fn location(&self, addr: u64) -> u64 {
        addr & (self.size as u64 - 1)
    }

    /// The set index a byte address maps to.
    #[inline]
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.line as u64) as usize) & (self.num_sets() - 1)
    }

    /// The tag of a byte address (line address with set bits removed).
    #[inline]
    pub fn tag(&self, addr: u64) -> u64 {
        (addr / self.line as u64) / self.num_sets() as u64
    }
}

/// Geometry of a full cache hierarchy (L1 first).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Levels ordered from closest to the processor (L1) outward.
    pub levels: Vec<CacheConfig>,
    /// Miss penalty, in cycles, of missing each level (same order). Used by
    /// the cost models in `mlc-core`; the simulator itself only counts.
    pub miss_penalty: Vec<f64>,
}

impl HierarchyConfig {
    /// Build a hierarchy, checking the nesting invariants the paper relies
    /// on: each level at least as large as the previous, sizes dividing
    /// evenly, line sizes non-decreasing.
    ///
    /// # Panics
    /// Panics if any invariant is violated or `levels` is empty.
    pub fn new(levels: Vec<CacheConfig>, miss_penalty: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        assert_eq!(
            levels.len(),
            miss_penalty.len(),
            "one miss penalty per level"
        );
        for w in levels.windows(2) {
            let (inner, outer) = (w[0], w[1]);
            assert!(
                outer.size >= inner.size && outer.size % inner.size == 0,
                "outer cache size {} must be a multiple of inner size {}",
                outer.size,
                inner.size
            );
            assert!(
                outer.line >= inner.line,
                "outer line {} smaller than inner line {}",
                outer.line,
                inner.line
            );
        }
        Self {
            levels,
            miss_penalty,
        }
    }

    /// The paper's simulated machine and timing platform: Sun UltraSparc I.
    ///
    /// 16 KB direct-mapped L1 with 32-byte lines; 512 KB direct-mapped L2
    /// with 64-byte lines (Section 6.1). Miss penalties follow the paper's
    /// qualitative claim that L2 misses cost "much more" than L1 misses:
    /// ~6 cycles to reach L2, ~50 cycles to reach memory.
    pub fn ultrasparc_i() -> Self {
        Self::new(
            vec![
                CacheConfig::direct_mapped(16 * 1024, 32),
                CacheConfig::direct_mapped(512 * 1024, 64),
            ],
            vec![6.0, 50.0],
        )
    }

    /// Three-level hierarchy patterned on the DEC Alpha 21164, which the
    /// introduction cites as a three-level-cache processor. L1 8 KB/32 B
    /// direct-mapped, L2 96 KB/64 B 3-way... except 96 KB is not a power of
    /// two and 3-way breaks none of our invariants but the 96 KB size does,
    /// so we model the nearest power-of-two machine: 8 KB / 128 KB / 2 MB.
    pub fn alpha_21164_like() -> Self {
        Self::new(
            vec![
                CacheConfig::direct_mapped(8 * 1024, 32),
                CacheConfig::new(128 * 1024, 64, 2, ReplacementPolicy::Lru),
                CacheConfig::direct_mapped(2 * 1024 * 1024, 64),
            ],
            vec![5.0, 20.0, 80.0],
        )
    }

    /// The UltraSparc geometry with a given associativity at both levels.
    /// Used by the associativity ablation: the paper claims treating k-way
    /// caches as direct-mapped for optimization purposes captures nearly all
    /// the benefit.
    pub fn ultrasparc_like_assoc(assoc: usize) -> Self {
        Self::new(
            vec![
                CacheConfig::new(16 * 1024, 32, assoc, ReplacementPolicy::Lru),
                CacheConfig::new(512 * 1024, 64, assoc, ReplacementPolicy::Lru),
            ],
            vec![6.0, 50.0],
        )
    }

    /// Number of levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The L1 configuration.
    #[inline]
    pub fn l1(&self) -> CacheConfig {
        self.levels[0]
    }

    /// The largest line size found at any level — `Lmax` in the paper's
    /// MULTILVLPAD construction (Section 3.1.2).
    pub fn max_line(&self) -> usize {
        self.levels.iter().map(|l| l.line).max().unwrap()
    }

    /// A [`mlc_telemetry::MissClassifier`] shaped for this hierarchy: one
    /// fully-associative LRU shadow cache per level, sized to the level's
    /// line count, so each real miss can be split into
    /// compulsory/capacity/conflict (the 3C model). Attach it as a probe via
    /// [`crate::Hierarchy::access_addr_kind_probed`] or
    /// [`crate::Hierarchy::probed`].
    #[cfg(feature = "telemetry")]
    pub fn miss_classifier(&self) -> mlc_telemetry::MissClassifier {
        let geometry: Vec<mlc_telemetry::ShadowGeometry> = self
            .levels
            .iter()
            .map(|c| mlc_telemetry::ShadowGeometry {
                lines: c.num_lines(),
                line: c.line,
                sets: c.num_sets(),
            })
            .collect();
        mlc_telemetry::MissClassifier::new(&geometry)
    }

    /// The virtual cache MULTILVLPAD pads against: size `S1` (the smallest
    /// cache at any level) with line `Lmax` (the largest line at any level).
    ///
    /// Section 3.1.2: "This configuration consists of the L1 cache size S1
    /// and the largest cache line size found at any level, Lmax. [...] If two
    /// references maintain a distance of at least Lmax on a cache of size S1,
    /// then the distance must be equal or greater on a cache of size k*S1."
    pub fn multilvl_pad_config(&self) -> CacheConfig {
        CacheConfig::direct_mapped(self.l1().size, self.max_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_geometry() {
        let c = CacheConfig::direct_mapped(16 * 1024, 32);
        assert_eq!(c.num_lines(), 512);
        assert_eq!(c.num_sets(), 512);
        assert!(c.is_direct_mapped());
    }

    #[test]
    fn set_associative_geometry() {
        let c = CacheConfig::new(16 * 1024, 32, 4, ReplacementPolicy::Lru);
        assert_eq!(c.num_lines(), 512);
        assert_eq!(c.num_sets(), 128);
        assert!(!c.is_direct_mapped());
    }

    #[test]
    fn location_wraps_modulo_size() {
        let c = CacheConfig::direct_mapped(1024, 32);
        assert_eq!(c.location(0), 0);
        assert_eq!(c.location(1024), 0);
        assert_eq!(c.location(1030), 6);
        assert_eq!(c.location(3 * 1024 + 100), 100);
    }

    #[test]
    fn set_index_and_tag_roundtrip() {
        let c = CacheConfig::new(4096, 64, 2, ReplacementPolicy::Lru);
        // 4096/64 = 64 lines, 32 sets.
        for addr in [0u64, 63, 64, 4096, 4096 + 64, 123_456] {
            let line = addr / 64;
            assert_eq!(c.set_index(addr), (line % 32) as usize);
            assert_eq!(c.tag(addr), line / 32);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_size() {
        CacheConfig::direct_mapped(3000, 32);
    }

    #[test]
    #[should_panic(expected = "must divide line count")]
    fn rejects_bad_associativity() {
        CacheConfig::new(1024, 32, 5, ReplacementPolicy::Lru);
    }

    #[test]
    fn ultrasparc_matches_paper_section_6_1() {
        let h = HierarchyConfig::ultrasparc_i();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.levels[0].size, 16 * 1024);
        assert_eq!(h.levels[0].line, 32);
        assert!(h.levels[0].is_direct_mapped());
        assert_eq!(h.levels[1].size, 512 * 1024);
        assert_eq!(h.levels[1].line, 64);
        assert!(h.levels[1].is_direct_mapped());
    }

    #[test]
    fn multilvl_pad_config_uses_s1_and_lmax() {
        let h = HierarchyConfig::ultrasparc_i();
        let v = h.multilvl_pad_config();
        assert_eq!(v.size, 16 * 1024); // S1
        assert_eq!(v.line, 64); // Lmax (the L2 line)
    }

    #[test]
    #[should_panic(expected = "multiple of inner size")]
    fn rejects_non_nesting_sizes() {
        HierarchyConfig::new(
            vec![
                CacheConfig::direct_mapped(16 * 1024, 32),
                CacheConfig::direct_mapped(8 * 1024, 64),
            ],
            vec![1.0, 2.0],
        );
    }

    #[test]
    fn three_level_preset_nests() {
        let h = HierarchyConfig::alpha_21164_like();
        assert_eq!(h.depth(), 3);
        assert_eq!(h.max_line(), 64);
    }
}
