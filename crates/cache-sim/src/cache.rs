//! A single cache level.
//!
//! Tags are stored per set in recency order (index 0 = most recent), so LRU
//! is a shift within the set's slice and direct-mapped caches degenerate to
//! a single compare. The hot path is branch-light: typical experiment traces
//! run hundreds of millions of accesses through two of these.

use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;
use crate::trace::Run;

/// Number of consecutive run trips (including the one at `addr`) that stay
/// on the `1 << line_shift`-byte line containing `addr`. `u64::MAX` for a
/// zero stride (the run never leaves the line).
#[inline(always)]
pub(crate) fn trips_on_line(addr: u64, stride: i64, line_shift: u32) -> u64 {
    let offset = addr & ((1u64 << line_shift) - 1);
    match stride.cmp(&0) {
        std::cmp::Ordering::Equal => u64::MAX,
        std::cmp::Ordering::Greater => ((1u64 << line_shift) - 1 - offset) / stride as u64 + 1,
        std::cmp::Ordering::Less => offset / stride.unsigned_abs() + 1,
    }
}

/// Sentinel tag for an invalid (empty) way. Real tags are line addresses
/// shifted down by the set bits, which cannot reach `u64::MAX` for any
/// realistic address space.
const INVALID: u64 = u64::MAX;

/// Internal observer of one cache level's outcomes. The hot path is
/// generic over this; the no-op impl monomorphizes to exactly the
/// unobserved code, so attaching nothing costs nothing.
pub(crate) trait CacheObserver {
    fn on_access(&mut self, line_addr: u64, set: usize, write: bool, hit: bool);
    fn on_eviction(&mut self, line_addr: u64, set: usize, dirty: bool);
}

/// The always-attached observer for plain accesses.
pub(crate) struct NoObserver;

impl CacheObserver for NoObserver {
    #[inline(always)]
    fn on_access(&mut self, _line_addr: u64, _set: usize, _write: bool, _hit: bool) {}
    #[inline(always)]
    fn on_eviction(&mut self, _line_addr: u64, _set: usize, _dirty: bool) {}
}

/// Adapter attaching a [`mlc_telemetry::CacheProbe`] at a fixed level.
#[cfg(feature = "telemetry")]
pub(crate) struct ProbeObserver<'a> {
    pub(crate) probe: &'a mut dyn mlc_telemetry::CacheProbe,
    pub(crate) level: usize,
}

#[cfg(feature = "telemetry")]
impl CacheObserver for ProbeObserver<'_> {
    #[inline]
    fn on_access(&mut self, line_addr: u64, set: usize, write: bool, hit: bool) {
        self.probe.on_access(mlc_telemetry::AccessEvent {
            level: self.level,
            line_addr,
            set,
            write,
            hit,
        });
    }

    #[inline]
    fn on_eviction(&mut self, line_addr: u64, set: usize, dirty: bool) {
        self.probe.on_eviction(mlc_telemetry::EvictionEvent {
            level: self.level,
            line_addr,
            set,
            dirty,
        });
    }
}

/// One level of cache: a tag store with a replacement policy.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `num_sets * associativity` tags, each set contiguous, recency-ordered.
    tags: Vec<u64>,
    /// Dirty bits, parallel to `tags` (write-back policy).
    dirty: Vec<bool>,
    assoc: usize,
    set_mask: u64,
    line_shift: u32,
    set_shift: u32,
    rng_state: u64,
    accesses: u64,
    misses: u64,
    writebacks: u64,
}

/// Result of probing a cache with an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Hit.
    Hit,
    /// Miss.
    Miss,
}

impl Probe {
    /// True iff the probe missed.
    #[inline]
    pub fn is_miss(self) -> bool {
        matches!(self, Probe::Miss)
    }
}

impl Cache {
    /// Create an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        let assoc = config.associativity;
        Self {
            config,
            tags: vec![INVALID; sets * assoc],
            dirty: vec![false; sets * assoc],
            assoc,
            set_mask: sets as u64 - 1,
            line_shift: config.line.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            rng_state: 0x9E37_79B9_7F4A_7C15,
            accesses: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The geometry this cache was built with.
    #[inline]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access a byte address: returns hit/miss and allocates the line on a
    /// miss (fetch-on-miss, allocate-on-write — the paper's trace simulations
    /// treat loads and stores identically for miss counting).
    #[inline]
    pub fn access(&mut self, addr: u64) -> Probe {
        self.access_kind(addr, false)
    }

    /// Access with a load/store distinction: stores mark the line dirty, and
    /// evicting a dirty line counts a write-back (write-back, write-allocate
    /// policy). Hit/miss accounting is identical to [`Cache::access`].
    #[inline]
    pub fn access_kind(&mut self, addr: u64, write: bool) -> Probe {
        self.access_kind_obs(addr, write, &mut NoObserver)
    }

    /// [`Cache::access_kind`] with a telemetry probe attached, reporting the
    /// outcome (and any eviction) as events at the given `level`. Identical
    /// state transitions and accounting to the unprobed path.
    #[cfg(feature = "telemetry")]
    pub fn access_kind_probed(
        &mut self,
        addr: u64,
        write: bool,
        level: usize,
        probe: &mut dyn mlc_telemetry::CacheProbe,
    ) -> Probe {
        self.access_kind_obs(addr, write, &mut ProbeObserver { probe, level })
    }

    /// Reconstruct the byte address of a line from its stored tag and set.
    #[inline(always)]
    fn line_addr_of(&self, tag: u64, set: usize) -> u64 {
        ((tag << self.set_shift) | set as u64) << self.line_shift
    }

    #[inline(always)]
    pub(crate) fn access_kind_obs<O: CacheObserver>(
        &mut self,
        addr: u64,
        write: bool,
        obs: &mut O,
    ) -> Probe {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let line_addr = line << self.line_shift;
        let base = set * self.assoc;

        // Direct-mapped fast path: one compare, one store.
        if self.assoc == 1 {
            if self.tags[base] == tag {
                self.dirty[base] |= write;
                obs.on_access(line_addr, set, write, true);
                return Probe::Hit;
            }
            let old_tag = self.tags[base];
            if old_tag != INVALID {
                let dirty = self.dirty[base];
                if dirty {
                    self.writebacks += 1;
                }
                obs.on_eviction(self.line_addr_of(old_tag, set), set, dirty);
            }
            self.tags[base] = tag;
            self.dirty[base] = write;
            self.misses += 1;
            obs.on_access(line_addr, set, write, false);
            return Probe::Miss;
        }

        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            if self.config.replacement.promote_on_hit() && pos != 0 {
                ways[..=pos].rotate_right(1);
                self.dirty[base..=base + pos].rotate_right(1);
            }
            let at = if self.config.replacement.promote_on_hit() {
                base
            } else {
                base + pos
            };
            self.dirty[at] |= write;
            obs.on_access(line_addr, set, write, true);
            return Probe::Hit;
        }

        self.misses += 1;
        let victim = match self.config.replacement {
            ReplacementPolicy::Random => {
                // Prefer an invalid way before evicting a random valid one.
                match ways.iter().position(|&t| t == INVALID) {
                    Some(i) => i,
                    None => self
                        .config
                        .replacement
                        .victim(self.assoc, &mut self.rng_state),
                }
            }
            _ => self.assoc - 1, // recency order ⇒ tail is LRU / oldest
        };
        let old_tag = ways[victim];
        if old_tag != INVALID {
            let dirty = self.dirty[base + victim];
            if dirty {
                self.writebacks += 1;
            }
            obs.on_eviction(self.line_addr_of(old_tag, set), set, dirty);
        }
        self.tags[base + victim] = tag;
        self.dirty[base + victim] = write;
        // Newly-filled line becomes most recent (for LRU and FIFO alike:
        // FIFO order is fill order, which this maintains because hits do not
        // promote).
        self.tags[base..=base + victim].rotate_right(1);
        self.dirty[base..=base + victim].rotate_right(1);
        obs.on_access(line_addr, set, write, false);
        Probe::Miss
    }

    /// Record `n` guaranteed hits to the (resident) line containing `addr`
    /// without probing the tag store: bumps the access counter and, for
    /// writes, marks the line dirty. This is the bulk counterpart of `n`
    /// consecutive [`Cache::access_kind`] hits on one line — valid only
    /// while the line is resident and no other access to its set intervenes,
    /// in which case repeated hits cannot change the set's recency order
    /// (an LRU hit re-promotes the already-most-recent line; FIFO and
    /// Random hits never promote). The run-length fast path uses this to
    /// skip the provably-redundant lookups between line boundaries.
    ///
    /// Debug builds assert residency; release builds trust the caller.
    #[inline]
    pub fn note_hits(&mut self, addr: u64, n: u64, write: bool) {
        if n == 0 {
            return;
        }
        debug_assert_eq!(
            self.peek(addr),
            Probe::Hit,
            "note_hits on a non-resident line"
        );
        self.accesses += n;
        if write {
            let line = addr >> self.line_shift;
            let set = (line & self.set_mask) as usize;
            let tag = line >> self.set_shift;
            let base = set * self.assoc;
            let pos = self.tags[base..base + self.assoc]
                .iter()
                .position(|&t| t == tag)
                .expect("note_hits on a non-resident line");
            self.dirty[base + pos] = true;
        }
    }

    /// Bulk access-counter bump for hits already proven by the caller. The
    /// run fast paths accumulate their per-segment hit counts and flush once
    /// through here; unlike [`Cache::note_hits`] this touches no line state,
    /// so the caller must have entered each batched line with an access of
    /// the same kind (which set the dirty bit if the run writes).
    #[inline]
    pub(crate) fn add_hit_accesses(&mut self, n: u64) {
        self.accesses += n;
    }

    /// Count `n` same-kind guaranteed hits on the line at `addr`: the full
    /// [`Cache::note_hits`] (with its residency assert) in debug builds, a
    /// bare counter bump in release. Valid only when the line was entered by
    /// an access of the same `write` kind, so the dirty bit is already
    /// correct.
    #[inline]
    fn note_run_hits(&mut self, addr: u64, n: u64, write: bool) {
        if cfg!(debug_assertions) {
            self.note_hits(addr, n, write);
        } else {
            self.add_hit_accesses(n);
        }
    }

    /// Consume a [`Run`] natively: one real [`Cache::access_kind`] per line
    /// boundary, with the in-between accesses batched through
    /// [`Cache::note_hits`]. Bitwise-identical counters and state to the
    /// per-access loop: after the first access of a line segment the line is
    /// resident, and with no intervening accesses every remaining trip on
    /// that line is a guaranteed hit. Returns the number of misses.
    ///
    /// Falls back to the plain loop when `|stride| * 2 > line` (too few
    /// accesses per line for batching to pay).
    pub fn run(&mut self, run: Run) -> u64 {
        let misses_before = self.misses;
        let write = run.is_write();
        let line = 1u64 << self.line_shift;
        if run.stride.unsigned_abs() * 2 > line {
            let mut addr = run.start;
            for _ in 0..run.count {
                self.access_kind(addr, write);
                addr = addr.wrapping_add(run.stride as u64);
            }
            return self.misses - misses_before;
        }
        let mut addr = run.start;
        let mut left = run.count;
        while left > 0 {
            let k = trips_on_line(addr, run.stride, self.line_shift).min(left);
            self.access_kind(addr, write);
            self.note_run_hits(addr, k - 1, write);
            addr = addr.wrapping_add((run.stride as u64).wrapping_mul(k));
            left -= k;
        }
        self.misses - misses_before
    }

    /// Quietly install the line containing `addr` (hardware prefetch): no
    /// access/miss accounting, clean fill, MRU position. Returns `true` if
    /// the line was not already present. Evicting a dirty victim still
    /// counts a write-back.
    pub fn prefetch_fill(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            if self.config.replacement.promote_on_hit() && pos != 0 {
                ways[..=pos].rotate_right(1);
                self.dirty[base..=base + pos].rotate_right(1);
            }
            return false;
        }
        let victim = self.assoc - 1;
        if ways[victim] != INVALID && self.dirty[base + victim] {
            self.writebacks += 1;
        }
        ways[victim] = tag;
        self.dirty[base + victim] = false;
        ways[..=victim].rotate_right(1);
        self.dirty[base..=base + victim].rotate_right(1);
        true
    }

    /// Probe without modifying any state (no allocation, no promotion).
    pub fn peek(&self, addr: u64) -> Probe {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let ways = &self.tags[set * self.assoc..(set + 1) * self.assoc];
        if ways.contains(&tag) {
            Probe::Hit
        } else {
            Probe::Miss
        }
    }

    /// Total accesses since construction or the last [`Cache::reset_stats`].
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses since construction or the last [`Cache::reset_stats`].
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty lines evicted (write-backs) since construction or the last
    /// [`Cache::reset_stats`]. Observational only: the write-back traffic is
    /// not injected into lower levels.
    #[inline]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss ratio over the accesses this level saw (NaN-free: 0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Bulk counter credit from a closed-form (analytic) accounting of an
    /// access stream this level provably would have seen: `accesses` probes
    /// of which `misses` missed, evicting `writebacks` dirty lines. Touches
    /// no line state — callers that also change residency must follow up
    /// with [`Cache::overwrite_set`] so counters and contents stay the
    /// bitwise image of a replay.
    pub fn account_analytic(&mut self, accesses: u64, misses: u64, writebacks: u64) {
        debug_assert!(misses <= accesses, "more misses than accesses");
        self.accesses += accesses;
        self.misses += misses;
        self.writebacks += writebacks;
    }

    /// Restore the access/miss/write-back counters to previously observed
    /// values. The analytic engine uses this to cancel the double-count when
    /// it materializes symbolic state by replaying journaled nests whose
    /// counters were already credited via [`Cache::account_analytic`].
    pub fn set_counters(&mut self, accesses: u64, misses: u64, writebacks: u64) {
        self.accesses = accesses;
        self.misses = misses;
        self.writebacks = writebacks;
    }

    /// Resident lines of one set in recency order (most recent first), as
    /// `(line_byte_address, dirty)` pairs. The analytic engine uses this to
    /// resolve a nest's entry state without replaying it.
    pub fn set_contents(&self, set: usize) -> impl Iterator<Item = (u64, bool)> + '_ {
        let base = set * self.assoc;
        self.tags[base..base + self.assoc]
            .iter()
            .zip(&self.dirty[base..base + self.assoc])
            .filter(|(&t, _)| t != INVALID)
            .map(move |(&t, &d)| (self.line_addr_of(t, set), d))
    }

    /// Replace one set's contents wholesale: `lines` are
    /// `(line_byte_address, dirty)` pairs in recency order (most recent
    /// first); remaining ways are invalidated. No counters move — the
    /// analytic engine uses this to materialize the exact state a replayed
    /// nest would have left, after crediting its counters via
    /// [`Cache::account_analytic`].
    ///
    /// # Panics
    /// Panics if more lines than ways are given, or an address does not map
    /// to `set`.
    pub fn overwrite_set(&mut self, set: usize, lines: &[(u64, bool)]) {
        assert!(lines.len() <= self.assoc, "more lines than ways");
        let base = set * self.assoc;
        for (w, &(addr, dirty)) in lines.iter().enumerate() {
            let line = addr >> self.line_shift;
            assert_eq!(
                (line & self.set_mask) as usize,
                set,
                "line address {addr:#x} does not map to set {set}"
            );
            self.tags[base + w] = line >> self.set_shift;
            self.dirty[base + w] = dirty;
        }
        for w in lines.len()..self.assoc {
            self.tags[base + w] = INVALID;
            self.dirty[base + w] = false;
        }
    }

    /// Invalidate every line (cold cache) without touching counters.
    /// Dirty contents are discarded, not written back.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.dirty.fill(false);
    }

    /// Zero the access/miss/write-back counters without touching contents.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(size: usize, line: usize) -> Cache {
        Cache::new(CacheConfig::direct_mapped(size, line))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = dm(1024, 32);
        assert_eq!(c.access(0), Probe::Miss);
        assert_eq!(c.access(0), Probe::Hit);
        assert_eq!(c.access(31), Probe::Hit); // same line
        assert_eq!(c.access(32), Probe::Miss); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn direct_mapped_ping_pong() {
        // Two addresses exactly one cache size apart: the paper's "severe"
        // or ping-pong conflict — every access misses.
        let mut c = dm(1024, 32);
        for _ in 0..10 {
            assert_eq!(c.access(0), Probe::Miss);
            assert_eq!(c.access(1024), Probe::Miss);
        }
        assert_eq!(c.misses(), 20);
    }

    #[test]
    fn two_way_absorbs_ping_pong() {
        let mut c = Cache::new(CacheConfig::new(1024, 32, 2, ReplacementPolicy::Lru));
        assert_eq!(c.access(0), Probe::Miss);
        assert_eq!(c.access(1024), Probe::Miss);
        for _ in 0..10 {
            assert_eq!(c.access(0), Probe::Hit);
            assert_eq!(c.access(1024), Probe::Hit);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(CacheConfig::new(128, 32, 4, ReplacementPolicy::Lru));
        // One set of 4 ways (128/32 = 4 lines, 4-way ⇒ 1 set).
        for a in [0u64, 32, 64, 96] {
            assert_eq!(c.access(a), Probe::Miss);
        }
        // Touch 0 to make it MRU, then bring in a 5th line: victim must be 32.
        assert_eq!(c.access(0), Probe::Hit);
        assert_eq!(c.access(128), Probe::Miss);
        assert_eq!(c.peek(32), Probe::Miss);
        assert_eq!(c.peek(0), Probe::Hit);
        assert_eq!(c.peek(64), Probe::Hit);
        assert_eq!(c.peek(96), Probe::Hit);
    }

    #[test]
    fn fifo_ignores_hits_when_evicting() {
        let mut c = Cache::new(CacheConfig::new(128, 32, 4, ReplacementPolicy::Fifo));
        for a in [0u64, 32, 64, 96] {
            c.access(a);
        }
        // Hit 0 (the oldest). Under FIFO it is still evicted first.
        assert_eq!(c.access(0), Probe::Hit);
        assert_eq!(c.access(128), Probe::Miss);
        assert_eq!(c.peek(0), Probe::Miss);
        assert_eq!(c.peek(32), Probe::Hit);
    }

    #[test]
    fn peek_does_not_allocate() {
        let mut c = dm(1024, 32);
        assert_eq!(c.peek(0), Probe::Miss);
        assert_eq!(c.peek(0), Probe::Miss);
        assert_eq!(c.access(0), Probe::Miss);
        assert_eq!(c.peek(0), Probe::Hit);
    }

    #[test]
    fn flush_invalidates_contents_but_keeps_stats() {
        let mut c = dm(1024, 32);
        c.access(0);
        c.access(0);
        c.flush();
        assert_eq!(c.peek(0), Probe::Miss);
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = dm(1024, 32);
        c.access(0);
        c.reset_stats();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.access(0), Probe::Hit);
    }

    #[test]
    fn miss_ratio_zero_when_idle() {
        let c = dm(1024, 32);
        assert_eq!(c.miss_ratio(), 0.0);
    }

    #[test]
    fn sequential_walk_misses_once_per_line() {
        let mut c = dm(16 * 1024, 32);
        for a in 0..(16 * 1024u64) {
            c.access(a);
        }
        assert_eq!(c.misses(), 512);
        // Second pass fits exactly: all hits.
        for a in 0..(16 * 1024u64) {
            assert_eq!(c.access(a), Probe::Hit);
        }
        assert_eq!(c.misses(), 512);
    }

    #[test]
    fn writebacks_counted_for_dirty_evictions_only() {
        let mut c = dm(1024, 32);
        // Read 0, evict with 1024 (clean): no writeback.
        c.access_kind(0, false);
        c.access_kind(1024, false);
        assert_eq!(c.writebacks(), 0);
        // Write 0 (miss, allocate dirty), evict with 1024: one writeback.
        c.access_kind(0, true);
        c.access_kind(1024, false);
        assert_eq!(c.writebacks(), 1);
        // Read then write-hit then evict: writeback too.
        c.access_kind(2048, false);
        c.access_kind(2048, true);
        c.access_kind(0, false);
        assert_eq!(c.writebacks(), 2);
    }

    #[test]
    fn read_only_trace_has_no_writebacks() {
        let mut c = dm(256, 32);
        for i in 0..4096u64 {
            c.access_kind(i * 8, false);
        }
        assert_eq!(c.writebacks(), 0);
        assert!(c.misses() > 0);
    }

    #[test]
    fn dirty_bits_follow_lru_rotation() {
        // 4-way set: write A, read B C D, touch A (hit), bring E evicting B
        // (clean): no writeback yet; then evict the rest and count exactly
        // one writeback (A's line).
        let mut c = Cache::new(CacheConfig::new(128, 32, 4, ReplacementPolicy::Lru));
        c.access_kind(0, true); // A dirty
        for a in [32u64, 64, 96] {
            c.access_kind(a, false);
        }
        c.access_kind(0, false); // A hits, stays dirty, becomes MRU
        c.access_kind(128, false); // evicts 32 (clean)
        assert_eq!(c.writebacks(), 0);
        c.access_kind(160, false); // evicts 64 (clean)
        c.access_kind(192, false); // evicts 96 (clean)
        c.access_kind(224, false); // evicts 128? order: evicts LRU...
                                   // Keep evicting until A's line goes; exactly one writeback total.
        for a in [256u64, 288, 320, 352] {
            c.access_kind(a, false);
        }
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn flush_discards_dirty_lines() {
        let mut c = dm(1024, 32);
        c.access_kind(0, true);
        c.flush();
        c.access_kind(1024, false); // would evict line 0 if still present
        assert_eq!(c.writebacks(), 0);
    }

    #[test]
    fn trips_on_line_counts_to_boundary() {
        // 32-byte lines (shift 5).
        assert_eq!(trips_on_line(0, 8, 5), 4);
        assert_eq!(trips_on_line(24, 8, 5), 1);
        assert_eq!(trips_on_line(8, 8, 5), 3);
        assert_eq!(trips_on_line(31, 1, 5), 1);
        assert_eq!(trips_on_line(0, 1, 5), 32);
        // Descending runs leave through the bottom of the line.
        assert_eq!(trips_on_line(24, -8, 5), 4);
        assert_eq!(trips_on_line(0, -8, 5), 1);
        // A zero stride never leaves the line.
        assert_eq!(trips_on_line(16, 0, 5), u64::MAX);
        // Unaligned strides still terminate.
        assert_eq!(trips_on_line(0, 24, 5), 2);
    }

    #[test]
    fn note_hits_bumps_accesses_and_dirty_only() {
        let mut c = dm(1024, 32);
        c.access_kind(0, false);
        c.note_hits(8, 3, false);
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 1);
        c.note_hits(16, 1, true); // write hit dirties the line
        c.access_kind(1024, false); // evict it
        assert_eq!(c.writebacks(), 1);
    }

    fn run_parity(config: CacheConfig, run: Run) {
        let mut fast = Cache::new(config);
        fast.run(run);
        let mut slow = Cache::new(config);
        let mut addr = run.start;
        for _ in 0..run.count {
            slow.access_kind(addr, run.kind == crate::trace::AccessKind::Write);
            addr = addr.wrapping_add(run.stride as u64);
        }
        assert_eq!(fast.accesses(), slow.accesses(), "accesses {run:?}");
        assert_eq!(fast.misses(), slow.misses(), "misses {run:?}");
        assert_eq!(fast.writebacks(), slow.writebacks(), "writebacks {run:?}");
        assert_eq!(fast.tags, slow.tags, "tag state {run:?}");
        assert_eq!(fast.dirty, slow.dirty, "dirty state {run:?}");
    }

    #[test]
    fn run_matches_scalar_loop_across_geometries() {
        use crate::trace::AccessKind;
        let configs = [
            CacheConfig::direct_mapped(1024, 32),
            CacheConfig::new(1024, 32, 2, ReplacementPolicy::Lru),
            CacheConfig::new(1024, 32, 4, ReplacementPolicy::Fifo),
            CacheConfig::new(1024, 32, 4, ReplacementPolicy::Random),
        ];
        for config in configs {
            for stride in [0i64, 1, 4, 8, 16, 24, 32, 40, -8] {
                for kind in [AccessKind::Read, AccessKind::Write] {
                    let start = if stride < 0 { 8192 } else { 4 };
                    run_parity(
                        config,
                        Run {
                            start,
                            stride,
                            count: 1000,
                            kind,
                        },
                    );
                }
            }
        }
    }

    #[test]
    fn run_returns_miss_count() {
        let mut c = dm(16 * 1024, 32);
        let misses = c.run(Run {
            start: 0,
            stride: 8,
            count: 1024,
            kind: crate::trace::AccessKind::Read,
        });
        assert_eq!(misses, 1024 / 4); // one miss per 32-byte line
    }

    #[test]
    fn random_replacement_stays_within_set() {
        let mut c = Cache::new(CacheConfig::new(256, 32, 2, ReplacementPolicy::Random));
        // 8 lines, 2-way ⇒ 4 sets. Addresses 0 and 256 share set 0;
        // address 32 lives in set 1 and must never be evicted by them.
        c.access(32);
        for i in 0..100u64 {
            c.access((i % 3) * 256);
        }
        assert_eq!(c.peek(32), Probe::Hit);
    }
}
