//! A small TLB model.
//!
//! The paper's related-work section cites Mitchell et al., who treat the TLB
//! as one more level of the memory hierarchy when selecting tile sizes. Our
//! ablation experiments use this fully-associative LRU TLB to check whether
//! the paper's "target the smallest level" guidance survives when the
//! "level" is a TLB with 8 KB pages instead of a cache with 32 B lines.

use crate::trace::{Access, AccessSink};

/// Fully-associative, LRU translation lookaside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    page_shift: u32,
    /// Page numbers in recency order (front = MRU).
    entries: Vec<u64>,
    capacity: usize,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// A TLB holding `entries` translations of `page_size`-byte pages.
    ///
    /// # Panics
    /// Panics if `page_size` is not a power of two or `entries == 0`.
    pub fn new(entries: usize, page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(entries > 0, "TLB needs at least one entry");
        Self {
            page_shift: page_size.trailing_zeros(),
            entries: Vec::with_capacity(entries),
            capacity: entries,
            accesses: 0,
            misses: 0,
        }
    }

    /// The UltraSparc I data TLB: 64 entries, 8 KB pages.
    pub fn ultrasparc_i() -> Self {
        Self::new(64, 8 * 1024)
    }

    /// Touch an address; true on TLB hit.
    pub fn access_addr(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let page = addr >> self.page_shift;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            self.entries[..=pos].rotate_right(1);
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, page);
        false
    }

    /// Accesses seen.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses (page-table walks).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl AccessSink for Tlb {
    #[inline]
    fn access(&mut self, access: Access) {
        self.access_addr(access.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access_addr(0));
        assert!(t.access_addr(4095));
        assert!(!t.access_addr(4096));
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2, 4096);
        t.access_addr(0); // page 0
        t.access_addr(4096); // page 1
        t.access_addr(0); // page 0 now MRU
        t.access_addr(8192); // page 2 evicts page 1
        assert!(t.access_addr(0));
        assert!(!t.access_addr(4096));
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut t = Tlb::new(1, 4096);
        for _ in 0..5 {
            assert!(!t.access_addr(0));
            assert!(!t.access_addr(4096));
        }
        assert_eq!(t.miss_ratio(), 1.0);
    }

    #[test]
    fn strided_walk_misses_once_per_page() {
        let mut t = Tlb::ultrasparc_i();
        for i in 0..(64 * 8 * 1024u64 / 8) {
            t.access_addr(i * 8);
        }
        assert_eq!(t.misses(), 64);
    }
}
