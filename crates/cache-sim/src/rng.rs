//! A tiny deterministic PRNG for tests and trace generation.
//!
//! The test suite exercises the simulator and optimizer over randomized
//! traces and programs. To keep the workspace dependency-free the
//! generator is a SplitMix64 — a well-mixed 64-bit stream with a single
//! u64 of state — seeded explicitly so every failure reproduces from the
//! seed printed in the assertion message.

/// SplitMix64 deterministic random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator with the given seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// A uniform boolean.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `items`.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// A vector of `len` values drawn from `[lo, hi)`.
    pub fn vec_u64(&mut self, len: usize, lo: u64, hi: u64) -> Vec<u64> {
        (0..len).map(|_| self.range_u64(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        let mut c = DetRng::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = DetRng::new(42);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.range_i64(-3, 4);
            assert!((-3..4).contains(&i));
            let u = r.range_usize(0, 5);
            assert!(u < 5);
        }
    }

    #[test]
    fn spread_covers_small_range() {
        let mut r = DetRng::new(1);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
