//! Access traces and sinks.
//!
//! The program model (`mlc-model`) walks iteration spaces and emits one
//! [`Access`] per array reference; anything implementing [`AccessSink`] can
//! consume the stream — most importantly [`crate::Hierarchy`], but also the
//! counting/recording/tee sinks used in tests and experiments.

/// Load or store. The simulator counts them identically (fetch-on-miss,
/// allocate-on-write) but sinks may care.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read.
    Read,
    /// Write.
    Write,
}

/// One memory reference: a byte address plus kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// A read of `addr`.
    #[inline]
    pub fn read(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// A write of `addr`.
    #[inline]
    pub fn write(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::Write,
        }
    }
}

/// Consumer of an access stream.
pub trait AccessSink {
    /// Consume one access.
    fn access(&mut self, access: Access);

    /// Consume a batch; override if a sink can do better than a loop.
    fn access_all(&mut self, accesses: &[Access]) {
        for &a in accesses {
            self.access(a);
        }
    }
}

/// Counts accesses (and reads/writes) without storing them.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Total accesses seen.
    pub total: u64,
    /// Read accesses seen.
    pub reads: u64,
    /// Write accesses seen.
    pub writes: u64,
}

impl AccessSink for CountingSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.total += 1;
        match access.kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
    }
}

/// Records every access; for tests and small traces only.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// Recorded accesses, in order.
    pub accesses: Vec<Access>,
}

impl AccessSink for RecordingSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.accesses.push(access);
    }
}

/// Fans one stream out to two sinks (e.g. a hierarchy plus a counter).
pub struct TeeSink<'a, A: AccessSink, B: AccessSink> {
    /// First.
    pub first: &'a mut A,
    /// Second.
    pub second: &'a mut B,
}

impl<'a, A: AccessSink, B: AccessSink> TeeSink<'a, A, B> {
    /// Construct the kernel at the given problem size.
    pub fn new(first: &'a mut A, second: &'a mut B) -> Self {
        Self { first, second }
    }
}

impl<A: AccessSink, B: AccessSink> AccessSink for TeeSink<'_, A, B> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.first.access(access);
        self.second.access(access);
    }
}

/// A sink that drops everything; useful to measure trace-generation cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AccessSink for NullSink {
    #[inline]
    fn access(&mut self, _access: Access) {}
}

impl<S: AccessSink + ?Sized> AccessSink for &mut S {
    #[inline]
    fn access(&mut self, access: Access) {
        (**self).access(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_splits_kinds() {
        let mut c = CountingSink::default();
        c.access(Access::read(0));
        c.access(Access::write(8));
        c.access(Access::read(16));
        assert_eq!(c.total, 3);
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut r = RecordingSink::default();
        r.access_all(&[Access::read(1), Access::write(2)]);
        assert_eq!(r.accesses, vec![Access::read(1), Access::write(2)]);
    }

    #[test]
    fn tee_feeds_both() {
        let mut a = CountingSink::default();
        let mut b = RecordingSink::default();
        {
            let mut t = TeeSink::new(&mut a, &mut b);
            t.access(Access::read(42));
        }
        assert_eq!(a.total, 1);
        assert_eq!(b.accesses.len(), 1);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed(sink: &mut impl AccessSink) {
            sink.access(Access::read(0));
        }
        let mut c = CountingSink::default();
        feed(&mut &mut c);
        assert_eq!(c.total, 1);
    }
}
