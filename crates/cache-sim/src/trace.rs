//! Access traces and sinks.
//!
//! The program model (`mlc-model`) walks iteration spaces and emits one
//! [`Access`] per array reference; anything implementing [`AccessSink`] can
//! consume the stream — most importantly [`crate::Hierarchy`], but also the
//! counting/recording/tee sinks used in tests and experiments.

/// Load or store. The simulator counts them identically (fetch-on-miss,
/// allocate-on-write) but sinks may care.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read.
    Read,
    /// Write.
    Write,
}

/// One memory reference: a byte address plus kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// A read of `addr`.
    #[inline]
    pub fn read(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// A write of `addr`.
    #[inline]
    pub fn write(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::Write,
        }
    }
}

/// A run-length-encoded access sequence: `count` accesses starting at
/// `start`, each `stride` bytes after the previous one, all of the same
/// kind. Affine references have constant innermost strides, so the trace
/// generator can describe an entire innermost loop as one `Run` per
/// reference instead of emitting accesses one at a time; sinks that
/// understand cache geometry (notably [`crate::Hierarchy`]) exploit this to
/// batch the provably-redundant lookups between line boundaries.
///
/// Every address in a run must be representable: `start + t * stride` must
/// stay within `[0, u64::MAX]` for all `t < count` (the trace generator
/// validates this before emitting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Address of the first access.
    pub start: u64,
    /// Byte stride between consecutive accesses (may be zero or negative).
    pub stride: i64,
    /// Number of accesses.
    pub count: u64,
    /// Load or store (applies to every access of the run).
    pub kind: AccessKind,
}

impl Run {
    /// The address of the `t`-th access (0-based).
    #[inline]
    pub fn addr(&self, t: u64) -> u64 {
        self.start
            .wrapping_add((self.stride as u64).wrapping_mul(t))
    }

    /// True iff this run stores.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }
}

/// A whole affine loop nest described in closed form: per-reference
/// base/stride descriptors over a rectangular (constant-bound) iteration
/// space, instead of the expanded access stream.
///
/// The trace generator offers one of these to the sink *before* streaming a
/// nest (see [`AccessSink::nest`]); a sink that can account for the entire
/// nest analytically consumes it and the stream is never expanded. The
/// descriptor is normalized to trip space: loop `l` runs `trips[l]` times
/// and reference `r` starts at `refs[r].start` and advances by
/// `refs[r].deltas[l]` bytes per trip of loop `l` (outermost first). The
/// access order is the interleaved walk: for every outer trip vector, the
/// innermost loop advances with the references interleaved in body order —
/// exactly what [`AccessSink::run_group`] would see, one group per
/// innermost invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestDescriptor {
    /// Trip count per loop, outermost first (all ≥ 1; empty or zero-trip
    /// nests are never offered as descriptors).
    pub trips: Vec<u64>,
    /// One descriptor per reference, in body (interleave) order.
    pub refs: Vec<RefDescriptor>,
    /// True when at least one reference's address function is *not* affine
    /// in the trip vector (e.g. a Morton-layout array), so `refs` does not
    /// describe the stream. Closed-form sinks must decline such
    /// descriptors — expanding `refs` would miscount — and let the caller
    /// stream the nest itself.
    pub non_affine: bool,
}

/// One array reference of a [`NestDescriptor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefDescriptor {
    /// Byte address at the all-zero trip vector (validated non-negative by
    /// the trace generator before the descriptor is offered).
    pub start: u64,
    /// Byte delta per trip of each loop, outermost first (stride × step).
    pub deltas: Vec<i64>,
    /// Load or store.
    pub kind: AccessKind,
}

impl NestDescriptor {
    /// Total accesses the nest emits: Π trips × refs.
    pub fn total_accesses(&self) -> u64 {
        let trips: u64 = self.trips.iter().product();
        trips * self.refs.len() as u64
    }
}

/// Consumer of an access stream.
pub trait AccessSink {
    /// Consume one access.
    fn access(&mut self, access: Access);

    /// Offer a whole loop nest in closed form *instead of* its expanded
    /// stream. Returning `Some(n)` means the sink fully accounted for all
    /// `n` accesses (counters **and** any state the sink models must end up
    /// exactly as if the stream had been replayed); the caller then skips
    /// the nest entirely. Returning `None` (the default) declines, and the
    /// caller streams the nest through `access`/`run`/`run_group` as usual.
    ///
    /// Only sinks with a closed-form backend override this — notably
    /// [`mlc_core::analytic`]'s hierarchy wrapper. Overrides must be
    /// observably identical to replay wherever they accept.
    fn nest(&mut self, _desc: &NestDescriptor) -> Option<u64> {
        None
    }

    /// Consume a batch; override if a sink can do better than a loop.
    fn access_all(&mut self, accesses: &[Access]) {
        for &a in accesses {
            self.access(a);
        }
    }

    /// Consume a strided run: `run.count` accesses at `start`,
    /// `start + stride`, ... in order. The default implementation loops over
    /// [`AccessSink::access`], so every sink keeps exact per-access
    /// semantics; sinks that can do better (bulk counters, line-boundary
    /// batching) override this. Overrides must be observably identical to
    /// the default loop.
    fn run(&mut self, run: Run) {
        let mut addr = run.start;
        for _ in 0..run.count {
            self.access(Access {
                addr,
                kind: run.kind,
            });
            addr = addr.wrapping_add(run.stride as u64);
        }
    }

    /// Consume an interleaved group of runs sharing one trip count: for each
    /// trip `t` in `0..count`, every run's `t`-th access is consumed in
    /// group order. This is exactly the access order of a loop body with one
    /// reference per run, which is why the trace generator emits one group
    /// per innermost loop. All runs must have the same `count`.
    ///
    /// The default implementation performs the interleaved scalar loop;
    /// overrides must be observably identical to it.
    fn run_group(&mut self, runs: &[Run]) {
        let Some(first) = runs.first() else { return };
        debug_assert!(
            runs.iter().all(|r| r.count == first.count),
            "run_group requires equal counts"
        );
        for t in 0..first.count {
            for r in runs {
                self.access(Access {
                    addr: r.addr(t),
                    kind: r.kind,
                });
            }
        }
    }
}

/// Counts accesses (and reads/writes) without storing them.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Total accesses seen.
    pub total: u64,
    /// Read accesses seen.
    pub reads: u64,
    /// Write accesses seen.
    pub writes: u64,
}

impl AccessSink for CountingSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.total += 1;
        match access.kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
    }

    #[inline]
    fn run(&mut self, run: Run) {
        self.total += run.count;
        match run.kind {
            AccessKind::Read => self.reads += run.count,
            AccessKind::Write => self.writes += run.count,
        }
    }

    #[inline]
    fn run_group(&mut self, runs: &[Run]) {
        for &r in runs {
            self.run(r);
        }
    }
}

/// Records every access; for tests and small traces only.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// Recorded accesses, in order.
    pub accesses: Vec<Access>,
}

impl AccessSink for RecordingSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.accesses.push(access);
    }
}

/// Fans one stream out to two sinks (e.g. a hierarchy plus a counter).
pub struct TeeSink<'a, A: AccessSink, B: AccessSink> {
    /// First.
    pub first: &'a mut A,
    /// Second.
    pub second: &'a mut B,
}

impl<'a, A: AccessSink, B: AccessSink> TeeSink<'a, A, B> {
    /// Construct the kernel at the given problem size.
    pub fn new(first: &'a mut A, second: &'a mut B) -> Self {
        Self { first, second }
    }
}

impl<A: AccessSink, B: AccessSink> AccessSink for TeeSink<'_, A, B> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.first.access(access);
        self.second.access(access);
    }

    #[inline]
    fn run(&mut self, run: Run) {
        self.first.run(run);
        self.second.run(run);
    }

    #[inline]
    fn run_group(&mut self, runs: &[Run]) {
        self.first.run_group(runs);
        self.second.run_group(runs);
    }
}

/// A sink that drops everything; useful to measure trace-generation cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AccessSink for NullSink {
    #[inline]
    fn access(&mut self, _access: Access) {}

    #[inline]
    fn run(&mut self, _run: Run) {}

    #[inline]
    fn run_group(&mut self, _runs: &[Run]) {}
}

impl<S: AccessSink + ?Sized> AccessSink for &mut S {
    #[inline]
    fn access(&mut self, access: Access) {
        (**self).access(access);
    }

    #[inline]
    fn nest(&mut self, desc: &NestDescriptor) -> Option<u64> {
        (**self).nest(desc)
    }

    #[inline]
    fn run(&mut self, run: Run) {
        (**self).run(run);
    }

    #[inline]
    fn run_group(&mut self, runs: &[Run]) {
        (**self).run_group(runs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_splits_kinds() {
        let mut c = CountingSink::default();
        c.access(Access::read(0));
        c.access(Access::write(8));
        c.access(Access::read(16));
        assert_eq!(c.total, 3);
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut r = RecordingSink::default();
        r.access_all(&[Access::read(1), Access::write(2)]);
        assert_eq!(r.accesses, vec![Access::read(1), Access::write(2)]);
    }

    #[test]
    fn tee_feeds_both() {
        let mut a = CountingSink::default();
        let mut b = RecordingSink::default();
        {
            let mut t = TeeSink::new(&mut a, &mut b);
            t.access(Access::read(42));
        }
        assert_eq!(a.total, 1);
        assert_eq!(b.accesses.len(), 1);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed(sink: &mut impl AccessSink) {
            sink.access(Access::read(0));
        }
        let mut c = CountingSink::default();
        feed(&mut &mut c);
        assert_eq!(c.total, 1);
    }

    #[test]
    fn run_default_impl_expands_to_accesses() {
        let mut r = RecordingSink::default();
        r.run(Run {
            start: 100,
            stride: -8,
            count: 3,
            kind: AccessKind::Write,
        });
        let addrs: Vec<u64> = r.accesses.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![100, 92, 84]);
        assert!(r.accesses.iter().all(|a| a.kind == AccessKind::Write));
    }

    #[test]
    fn run_group_default_impl_interleaves() {
        let mut r = RecordingSink::default();
        r.run_group(&[
            Run {
                start: 0,
                stride: 8,
                count: 2,
                kind: AccessKind::Read,
            },
            Run {
                start: 1000,
                stride: 8,
                count: 2,
                kind: AccessKind::Write,
            },
        ]);
        let addrs: Vec<u64> = r.accesses.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 1000, 8, 1008]);
    }

    #[test]
    fn counting_sink_run_overrides_match_default() {
        let run = Run {
            start: 16,
            stride: 8,
            count: 5,
            kind: AccessKind::Write,
        };
        let mut fast = CountingSink::default();
        fast.run(run);
        let mut slow = CountingSink::default();
        let mut addr = run.start;
        for _ in 0..run.count {
            slow.access(Access::write(addr));
            addr += 8;
        }
        assert_eq!(fast.total, slow.total);
        assert_eq!(fast.writes, slow.writes);
        assert_eq!(fast.reads, slow.reads);
    }

    #[test]
    fn tee_forwards_runs_to_both() {
        let mut a = CountingSink::default();
        let mut b = RecordingSink::default();
        {
            let mut t = TeeSink::new(&mut a, &mut b);
            t.run(Run {
                start: 0,
                stride: 4,
                count: 3,
                kind: AccessKind::Read,
            });
        }
        assert_eq!(a.total, 3);
        assert_eq!(b.accesses.len(), 3);
    }

    #[test]
    fn empty_run_and_group_emit_nothing() {
        let mut r = RecordingSink::default();
        r.run(Run {
            start: 0,
            stride: 8,
            count: 0,
            kind: AccessKind::Read,
        });
        r.run_group(&[]);
        assert!(r.accesses.is_empty());
    }
}
