//! Random-but-legal geometry generation for differential testing.
//!
//! `mlc-fuzz` draws cache hierarchies from these generators and checks the
//! paper's invariants on them. Every value produced here satisfies the
//! constructor invariants ([`CacheConfig::new`], [`HierarchyConfig::new`])
//! by construction — power-of-two geometry, nested sizes dividing evenly,
//! non-decreasing line sizes — so a panic downstream is a real bug in the
//! code under test, never a malformed input.
//!
//! The distributions are deliberately skewed toward *small* caches (1–16 KB
//! L1) so that conflict phenomena — the whole subject of the paper — are
//! common rather than rare, and toward direct-mapped levels, the paper's
//! baseline assumption.

use crate::config::{CacheConfig, HierarchyConfig};
use crate::replacement::ReplacementPolicy;
use crate::rng::DetRng;

/// Bounds for [`arbitrary_hierarchy`]. The defaults keep simulation cheap
/// (small caches, ≤ 3 levels) while covering every geometry class the
/// paper's algorithms branch on.
#[derive(Debug, Clone)]
pub struct HierarchyGenConfig {
    /// Maximum number of levels (≥ 1).
    pub max_levels: usize,
    /// log2 of the smallest L1 size in bytes.
    pub min_l1_log2: u32,
    /// log2 of the largest L1 size in bytes.
    pub max_l1_log2: u32,
    /// Largest line size at any level, in bytes (power of two).
    pub max_line: usize,
    /// Allow set-associative levels (1-in-4 chance per level when set).
    pub allow_associative: bool,
}

impl Default for HierarchyGenConfig {
    fn default() -> Self {
        Self {
            max_levels: 3,
            min_l1_log2: 10, // 1 KB
            max_l1_log2: 14, // 16 KB
            max_line: 128,
            allow_associative: true,
        }
    }
}

/// A random single cache level within `size` bytes. Line size is kept at
/// most `size / 16` so searches over line-granularity positions always have
/// at least 16 candidate residues.
pub fn arbitrary_cache(
    rng: &mut DetRng,
    size: usize,
    min_line: usize,
    max_line: usize,
) -> CacheConfig {
    let max_line = max_line.min(size / 16).max(min_line);
    let line_log2 = rng.range_u64(
        min_line.trailing_zeros() as u64,
        max_line.trailing_zeros() as u64 + 1,
    ) as u32;
    CacheConfig::direct_mapped(size, 1 << line_log2)
}

/// A random legal hierarchy: 1–`max_levels` levels, each level's size a
/// power-of-two multiple of the previous, line sizes non-decreasing, miss
/// penalties strictly increasing outward.
pub fn arbitrary_hierarchy(rng: &mut DetRng, cfg: &HierarchyGenConfig) -> HierarchyConfig {
    let depth = rng.range_usize(1, cfg.max_levels + 1);
    let mut size = 1usize << rng.range_u64(cfg.min_l1_log2 as u64, cfg.max_l1_log2 as u64 + 1);
    // L1 line: 16..=min(64, size/16).
    let mut line = {
        let max_l1_line = 64usize.min(size / 16);
        1usize << rng.range_u64(4, max_l1_line.trailing_zeros() as u64 + 1)
    };
    let mut levels = Vec::with_capacity(depth);
    let mut penalties = Vec::with_capacity(depth);
    let mut penalty = 4.0 + rng.range_u64(0, 4) as f64;
    for _ in 0..depth {
        let assoc = if cfg.allow_associative && rng.range_u64(0, 4) == 0 {
            *rng.pick(&[2usize, 4])
        } else {
            1
        };
        levels.push(CacheConfig::new(size, line, assoc, ReplacementPolicy::Lru));
        penalties.push(penalty);
        // Grow outward: 2–16× the size, line ×1 or ×2 capped at max_line
        // (and at size/16 of the *current* level, which the larger next
        // level also satisfies).
        size <<= rng.range_u64(1, 5);
        if line < cfg.max_line && rng.bool() {
            line <<= 1;
        }
        penalty *= 3.0 + rng.range_u64(0, 4) as f64;
    }
    HierarchyConfig::new(levels, penalties)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_hierarchies_are_legal_and_deterministic() {
        // The constructors assert the invariants; surviving construction for
        // many seeds is the test. Same seed → same geometry.
        for seed in 0..200 {
            let mut a = DetRng::new(seed);
            let mut b = DetRng::new(seed);
            let cfg = HierarchyGenConfig::default();
            let ha = arbitrary_hierarchy(&mut a, &cfg);
            let hb = arbitrary_hierarchy(&mut b, &cfg);
            assert_eq!(ha, hb);
            assert!(!ha.levels.is_empty() && ha.levels.len() <= 3);
            for c in &ha.levels {
                assert!(c.line >= 16);
                assert!(c.num_lines() >= 16);
            }
            // Lmax never exceeds the configured cap.
            assert!(ha.max_line() <= cfg.max_line);
        }
    }

    #[test]
    fn depth_and_associativity_both_occur() {
        let cfg = HierarchyGenConfig::default();
        let mut rng = DetRng::new(7);
        let mut saw_deep = false;
        let mut saw_assoc = false;
        for _ in 0..100 {
            let h = arbitrary_hierarchy(&mut rng, &cfg);
            saw_deep |= h.depth() == 3;
            saw_assoc |= h.levels.iter().any(|c| c.associativity > 1);
        }
        assert!(saw_deep && saw_assoc);
    }

    #[test]
    fn arbitrary_cache_respects_line_bounds() {
        let mut rng = DetRng::new(3);
        for _ in 0..100 {
            let c = arbitrary_cache(&mut rng, 4096, 16, 128);
            assert!(c.line >= 16 && c.line <= 4096 / 16);
        }
    }
}
