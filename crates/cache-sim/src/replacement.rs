//! Replacement policies for set-associative caches.
//!
//! The paper assumes direct-mapped caches throughout (replacement is then
//! trivial), but the associativity ablation experiments need real policies.
//! Policies operate on the recency order a [`crate::cache::Cache`] maintains
//! per set, so they are stateless apart from the RNG used by `Random`.

/// Which line of a set to evict on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way. The common choice and the one all
    /// experiments use; the stack property of LRU underpins one of the
    /// property tests (a larger fully-associative LRU cache never misses
    /// more often than a smaller one).
    Lru,
    /// Evict the way that was filled earliest, ignoring hits.
    Fifo,
    /// Evict a pseudo-random way (xorshift over a per-cache seed).
    Random,
}

impl ReplacementPolicy {
    /// Pick the victim index among `ways` occupied ways.
    ///
    /// For `Lru` and `Fifo` the cache maintains its per-set order so the
    /// victim is always the last slot; `Random` draws from the provided
    /// xorshift state.
    #[inline]
    pub(crate) fn victim(&self, ways: usize, rng_state: &mut u64) -> usize {
        match self {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => ways - 1,
            ReplacementPolicy::Random => {
                // xorshift64*: good enough for victim selection, no deps.
                let mut x = *rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *rng_state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % ways as u64) as usize
            }
        }
    }

    /// Whether a hit promotes the line to most-recently-used position.
    /// True for LRU; FIFO and Random leave the order untouched on hits.
    #[inline]
    pub fn promote_on_hit(&self) -> bool {
        matches!(self, ReplacementPolicy::Lru)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_and_fifo_evict_tail() {
        let mut s = 1u64;
        assert_eq!(ReplacementPolicy::Lru.victim(4, &mut s), 3);
        assert_eq!(ReplacementPolicy::Fifo.victim(8, &mut s), 7);
    }

    #[test]
    fn random_victim_in_range_and_varies() {
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut seen = [false; 4];
        for _ in 0..256 {
            let v = ReplacementPolicy::Random.victim(4, &mut s);
            assert!(v < 4);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "all ways should eventually be chosen"
        );
    }

    #[test]
    fn only_lru_promotes() {
        assert!(ReplacementPolicy::Lru.promote_on_hit());
        assert!(!ReplacementPolicy::Fifo.promote_on_hit());
        assert!(!ReplacementPolicy::Random.promote_on_hit());
    }
}
