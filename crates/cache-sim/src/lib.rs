#![warn(missing_docs)]

//! # mlc-cache-sim — multi-level cache simulator
//!
//! Trace-driven cache simulator substrate for the reproduction of
//! Rivera & Tseng, *Locality Optimizations for Multi-Level Caches* (SC '99).
//!
//! The paper evaluates its padding / fusion / tiling heuristics with cache
//! simulations of a Sun UltraSparc I: a 16 KB direct-mapped L1 cache with
//! 32-byte lines backed by a 512 KB direct-mapped L2 cache with 64-byte
//! lines. This crate provides that simulator (and generalizations of it):
//!
//! * [`CacheConfig`] / [`HierarchyConfig`] — cache geometry. Sizes, line
//!   sizes and associativities must be powers of two, as on every machine the
//!   paper considers; the modular-arithmetic arguments in the paper
//!   (`MULTILVLPAD`, multi-level tiling) rely on each cache size evenly
//!   dividing the next level's size.
//! * [`Cache`] — a single level: set-associative with pluggable
//!   [`ReplacementPolicy`], with direct-mapped as the 1-way special case.
//! * [`Hierarchy`] — a stack of levels. An access probes L1; on a miss the
//!   next level is probed, and so on; every probed level allocates the line.
//!   Per-level [`LevelStats`] are kept, and miss rates are reported with the
//!   paper's normalization (misses at *every* level divided by the number of
//!   processor references).
//! * [`trace`] — the [`AccessSink`](trace::AccessSink) abstraction that the
//!   program model (`mlc-model`) drives with exact address traces, plus
//!   counting/recording/tee sinks for tests and experiments.
//! * [`tlb`] — a small TLB model used by the ablation experiments (related
//!   work in the paper, Mitchell et al., considers TLBs as another "level").
//!
//! ## Example
//!
//! ```
//! use mlc_cache_sim::{Hierarchy, HierarchyConfig};
//! use mlc_cache_sim::trace::{Access, AccessSink};
//!
//! // The paper's simulated machine.
//! let mut hier = Hierarchy::new(HierarchyConfig::ultrasparc_i());
//! // Stream a strided read trace through it.
//! for i in 0..1024u64 {
//!     hier.access(Access::read(i * 8));
//! }
//! let s = hier.stats();
//! // 8-byte stride over 32-byte lines: one miss per 4 accesses at L1.
//! assert_eq!(s[0].misses(), 1024 / 4);
//! // All L1 misses also miss the cold 64-byte-line L2: 8 KiB / 64 B lines.
//! assert_eq!(s[1].misses(), 1024 * 8 / 64);
//! ```

pub mod arbitrary;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod replacement;
pub mod rng;
pub mod stable_hash;
pub mod stats;
pub mod tlb;
pub mod trace;

pub use cache::Cache;
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::Hierarchy;
#[cfg(feature = "telemetry")]
pub use hierarchy::ProbedHierarchy;
pub use replacement::ReplacementPolicy;
pub use stable_hash::{stable_hash_of, StableHash, StableHasher};
pub use stats::{LevelStats, MissRateReport};
