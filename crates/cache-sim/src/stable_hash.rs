//! Process-stable structural hashing for content-addressed cache keys.
//!
//! The result cache (`mlc_core::rescache`) names each memoized simulation
//! by a hash of everything that determines its outcome: program IR, data
//! layout, hierarchy geometry, replacement policy, simulation protocol and
//! a simulator version salt. That hash must be identical across process
//! runs, machines and rustc versions, which rules out
//! [`std::hash::Hasher`] implementations (SipHash keys and algorithm are
//! explicitly unspecified). [`StableHasher`] is a fixed, dependency-free
//! FNV-1a-64 stream with a splitmix64 finalizer; its output is frozen by
//! pinned-literal tests and may only change together with the rescache
//! format version.
//!
//! Encoding rules, chosen so distinct structures produce distinct byte
//! streams:
//!
//! * integers are absorbed as fixed-width little-endian bytes (no
//!   varint ambiguity);
//! * strings and slices are length-prefixed;
//! * enums absorb a discriminant byte before their payload;
//! * floats absorb their IEEE-754 bit pattern (`f64::to_bits`), so `-0.0`
//!   and `0.0` differ and `NaN` payloads are preserved.
//!
//! The 64-bit width is a deliberate trade: keys render as 16 hex chars and
//! accidental collisions reach birthday odds only around 2³² distinct
//! entries — far beyond any sweep this repository runs. The store also
//! echoes the key inside each entry file, so a collision can corrupt at
//! most a lookup, never silently mix payloads of different formats.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic structural hasher (FNV-1a-64 + splitmix64 finalizer).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb raw bytes (no framing — callers add their own length
    /// prefixes; prefer the typed `write_*` methods).
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorb a `u32` (little-endian).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb an `i64` (two's-complement little-endian).
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` as its IEEE-754 bit pattern.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string, length-prefixed.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest: the FNV state pushed through splitmix64 so that small
    /// input differences avalanche across all output bits.
    pub fn finish(&self) -> u64 {
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Structural hashing into a [`StableHasher`].
///
/// Implementations must absorb every field that can influence simulation
/// results, framed unambiguously (see the module docs). Implemented here
/// for the simulator's own configuration types; `mlc-model` implements it
/// for the program IR and layouts.
pub trait StableHash {
    /// Absorb `self` into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// Hash one value with a fresh hasher (convenience for tests).
pub fn stable_hash_of<T: StableHash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

impl StableHash for u8 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(*self);
    }
}

impl StableHash for u32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(*self);
    }
}

impl StableHash for u64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableHash for i64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(*self);
    }
}

impl StableHash for usize {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(*self);
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(*self as u8);
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (*self).stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl StableHash for crate::replacement::ReplacementPolicy {
    fn stable_hash(&self, h: &mut StableHasher) {
        use crate::replacement::ReplacementPolicy::*;
        h.write_u8(match self {
            Lru => 0,
            Fifo => 1,
            Random => 2,
        });
    }
}

impl StableHash for crate::trace::AccessKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            crate::trace::AccessKind::Read => 0,
            crate::trace::AccessKind::Write => 1,
        });
    }
}

impl StableHash for crate::config::CacheConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.size);
        h.write_usize(self.line);
        h.write_usize(self.associativity);
        self.replacement.stable_hash(h);
    }
}

impl StableHash for crate::config::HierarchyConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.levels.stable_hash(h);
        // Miss penalties feed the cost models, not the simulator, but a
        // hierarchy is its whole configuration: two configs that differ
        // anywhere get distinct keys.
        self.miss_penalty.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};
    use crate::replacement::ReplacementPolicy;

    #[test]
    fn deterministic_within_and_across_constructions() {
        let h = HierarchyConfig::ultrasparc_i();
        assert_eq!(stable_hash_of(&h), stable_hash_of(&h.clone()));
        assert_eq!(
            stable_hash_of(&HierarchyConfig::ultrasparc_i()),
            stable_hash_of(&HierarchyConfig::ultrasparc_i())
        );
    }

    /// Pins the digest algorithm itself: if this literal ever changes, the
    /// on-disk cache-key space changed and `mlc_core::rescache` must bump
    /// its format version. (Computed once at introduction; any drift means
    /// the hasher is no longer process-stable.)
    #[test]
    fn digest_is_pinned() {
        let mut h = StableHasher::new();
        h.write_str("mlc");
        h.write_u64(42);
        h.write_i64(-7);
        h.write_f64(0.5);
        assert_eq!(h.finish(), 0x4e45_835f_0a3e_c048);
    }

    #[test]
    fn framing_disambiguates_string_splits() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn every_geometry_field_matters() {
        let base = CacheConfig::new(16 * 1024, 32, 1, ReplacementPolicy::Lru);
        let variants = [
            CacheConfig::new(32 * 1024, 32, 1, ReplacementPolicy::Lru),
            CacheConfig::new(16 * 1024, 64, 1, ReplacementPolicy::Lru),
            CacheConfig::new(16 * 1024, 32, 2, ReplacementPolicy::Lru),
            CacheConfig::new(16 * 1024, 32, 1, ReplacementPolicy::Fifo),
            CacheConfig::new(16 * 1024, 32, 1, ReplacementPolicy::Random),
        ];
        for v in &variants {
            assert_ne!(stable_hash_of(&base), stable_hash_of(v), "{v:?}");
        }
    }

    #[test]
    fn miss_penalty_and_depth_matter() {
        let a = HierarchyConfig::ultrasparc_i();
        let mut b = a.clone();
        b.miss_penalty[1] = 51.0;
        assert_ne!(stable_hash_of(&a), stable_hash_of(&b));
        assert_ne!(
            stable_hash_of(&HierarchyConfig::ultrasparc_i()),
            stable_hash_of(&HierarchyConfig::alpha_21164_like())
        );
    }

    #[test]
    fn option_and_slice_framing() {
        let some: Option<u64> = Some(0);
        let none: Option<u64> = None;
        assert_ne!(stable_hash_of(&some), stable_hash_of(&none));
        let nested_a: Vec<Vec<u64>> = vec![vec![1], vec![]];
        let nested_b: Vec<Vec<u64>> = vec![vec![], vec![1]];
        assert_ne!(stable_hash_of(&nested_a), stable_hash_of(&nested_b));
    }
}
