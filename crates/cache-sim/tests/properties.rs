//! Randomized property tests for the cache simulator substrate, driven by
//! the in-tree deterministic PRNG (seeds are printed in every assertion so
//! failures reproduce exactly).
//!
//! These pin down the structural facts the paper's algorithms lean on:
//! modular nesting of cache levels, direct-mapped/1-way equivalence, and
//! the LRU stack property.

use mlc_cache_sim::cache::Probe;
use mlc_cache_sim::rng::DetRng;
use mlc_cache_sim::{Cache, CacheConfig, ReplacementPolicy};

const CASES: u64 = 48;

/// A small random trace of byte addresses within a few cache spans.
fn random_trace(rng: &mut DetRng, max_addr: u64) -> Vec<u64> {
    let len = rng.range_usize(1, 400);
    rng.vec_u64(len, 0, max_addr)
}

/// Direct-mapped is exactly 1-way set-associative under any policy.
#[test]
fn direct_mapped_equals_one_way() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let trace = random_trace(&mut rng, 1 << 16);
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let mut dm = Cache::new(CacheConfig::direct_mapped(4096, 64));
            let mut one_way = Cache::new(CacheConfig::new(4096, 64, 1, policy));
            for &a in &trace {
                let expect = if dm.peek(a).is_miss() {
                    Probe::Miss
                } else {
                    Probe::Hit
                };
                assert_eq!(one_way.access(a), expect, "seed {seed} policy {policy:?}");
                dm.access(a);
            }
        }
    }
}

/// The modular-arithmetic lemma behind MULTILVLPAD (Section 3.1.2): if two
/// addresses are at least `d` apart on a direct-mapped cache of size S
/// (circular distance of `addr mod S`), they are at least as far apart on a
/// cache of size k*S.
#[test]
fn distances_grow_with_cache_size() {
    let mut rng = DetRng::new(0xD157);
    for case in 0..1000 {
        let a = rng.range_u64(0, 1 << 24);
        let b = rng.range_u64(0, 1 << 24);
        let k = rng.range_u64(1, 6) as u32;
        let s1 = 16 * 1024u64;
        let s2 = s1 << k;
        let circ = |x: u64, y: u64, s: u64| {
            let d = (x % s).abs_diff(y % s);
            d.min(s - d)
        };
        let d1 = circ(a, b, s1);
        let d2 = circ(a, b, s2);
        assert!(d2 >= d1, "case {case}: a={a} b={b} k={k} d1={d1} d2={d2}");
    }
}

/// LRU inclusion (stack) property: a fully-associative LRU cache of
/// capacity C+k hits whenever a capacity-C one does.
#[test]
fn lru_stack_property() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let trace = random_trace(&mut rng, 1 << 16);
        let extra = rng.range_usize(1, 3);
        let line = 64usize;
        let small_lines = 4usize;
        let big_lines = small_lines << extra;
        let mut small = Cache::new(CacheConfig::new(
            small_lines * line,
            line,
            small_lines,
            ReplacementPolicy::Lru,
        ));
        let mut big = Cache::new(CacheConfig::new(
            big_lines * line,
            line,
            big_lines,
            ReplacementPolicy::Lru,
        ));
        for &a in &trace {
            let sh = small.access(a);
            let bh = big.access(a);
            if sh == Probe::Hit {
                assert_eq!(
                    bh,
                    Probe::Hit,
                    "seed {seed}: big LRU cache missed where small hit"
                );
            }
        }
        assert!(big.misses() <= small.misses(), "seed {seed}");
    }
}

/// Replaying a trace twice through a cache large enough to hold its
/// footprint yields no misses on the second pass.
#[test]
fn second_pass_hits_when_footprint_fits() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let len = rng.range_usize(1, 200);
        let trace = rng.vec_u64(len, 0, 4096);
        let mut c = Cache::new(CacheConfig::new(8192, 64, 128, ReplacementPolicy::Lru));
        for &a in &trace {
            c.access(a);
        }
        let first_pass_misses = c.misses();
        for &a in &trace {
            assert_eq!(c.access(a), Probe::Hit, "seed {seed}");
        }
        assert_eq!(c.misses(), first_pass_misses, "seed {seed}");
    }
}

/// Write-backs never exceed misses (every write-back rides an eviction, and
/// every eviction rides a miss when prefetching is off), and a read-only
/// trace produces none. Load/store distinction never changes hit/miss
/// outcomes.
#[test]
fn writebacks_bounded_by_misses() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let len = rng.range_usize(1, 400);
        let trace: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.range_u64(0, 1 << 14), rng.bool()))
            .collect();
        let assoc = 1usize << rng.range_u64(0, 3);
        let mut c = Cache::new(CacheConfig::new(2048, 64, assoc, ReplacementPolicy::Lru));
        for &(a, w) in &trace {
            c.access_kind(a, w);
        }
        assert!(c.writebacks() <= c.misses(), "seed {seed}");
        let mut ro = Cache::new(CacheConfig::new(2048, 64, assoc, ReplacementPolicy::Lru));
        for &(a, _) in &trace {
            ro.access_kind(a, false);
        }
        assert_eq!(ro.writebacks(), 0, "seed {seed}");
        assert_eq!(ro.misses(), c.misses(), "seed {seed}");
        assert_eq!(ro.accesses(), c.accesses(), "seed {seed}");
    }
}

/// Misses never exceed accesses, and peek never changes outcomes.
#[test]
fn counters_consistent() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let trace = random_trace(&mut rng, 1 << 16);
        let assoc = 1usize << rng.range_u64(0, 4);
        let mut c = Cache::new(CacheConfig::new(4096, 64, assoc, ReplacementPolicy::Lru));
        for &a in &trace {
            let before = c.peek(a);
            let got = c.access(a);
            assert_eq!(before, got, "seed {seed}");
        }
        assert!(c.misses() <= c.accesses(), "seed {seed}");
        assert_eq!(c.accesses(), trace.len() as u64, "seed {seed}");
    }
}
