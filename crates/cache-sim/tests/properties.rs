//! Randomized property tests for the cache simulator substrate, driven by
//! the in-tree deterministic PRNG (seeds are printed in every assertion so
//! failures reproduce exactly).
//!
//! These pin down the structural facts the paper's algorithms lean on:
//! modular nesting of cache levels, direct-mapped/1-way equivalence, and
//! the LRU stack property.
//!
//! Each property is a `check_*(seed)` function; the `#[test]` wrappers
//! sweep a fixed seed window, and [`regression_seeds_replay`] additionally
//! replays every seed recorded in `proptest-regressions/properties.txt`
//! (proptest's on-disk convention, hand-rolled since the workspace has no
//! external dependencies). A failing seed from any future sweep belongs in
//! that file, where it reruns on every `cargo test` forever.

use mlc_cache_sim::cache::Probe;
use mlc_cache_sim::rng::DetRng;
use mlc_cache_sim::{Cache, CacheConfig, ReplacementPolicy};

const CASES: u64 = 48;

/// A small random trace of byte addresses within a few cache spans.
fn random_trace(rng: &mut DetRng, max_addr: u64) -> Vec<u64> {
    let len = rng.range_usize(1, 400);
    rng.vec_u64(len, 0, max_addr)
}

/// Direct-mapped is exactly 1-way set-associative under any policy.
fn check_direct_mapped_equals_one_way(seed: u64) {
    let mut rng = DetRng::new(seed);
    let trace = random_trace(&mut rng, 1 << 16);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let mut dm = Cache::new(CacheConfig::direct_mapped(4096, 64));
        let mut one_way = Cache::new(CacheConfig::new(4096, 64, 1, policy));
        for &a in &trace {
            let expect = if dm.peek(a).is_miss() {
                Probe::Miss
            } else {
                Probe::Hit
            };
            assert_eq!(one_way.access(a), expect, "seed {seed} policy {policy:?}");
            dm.access(a);
        }
    }
}

/// The modular-arithmetic lemma behind MULTILVLPAD (Section 3.1.2): if two
/// addresses are at least `d` apart on a direct-mapped cache of size S
/// (circular distance of `addr mod S`), they are at least as far apart on a
/// cache of size k*S.
fn check_distances_grow_with_cache_size(seed: u64) {
    let mut rng = DetRng::new(seed);
    for case in 0..100 {
        let a = rng.range_u64(0, 1 << 24);
        let b = rng.range_u64(0, 1 << 24);
        let k = rng.range_u64(1, 6) as u32;
        let s1 = 16 * 1024u64;
        let s2 = s1 << k;
        let circ = |x: u64, y: u64, s: u64| {
            let d = (x % s).abs_diff(y % s);
            d.min(s - d)
        };
        let d1 = circ(a, b, s1);
        let d2 = circ(a, b, s2);
        assert!(
            d2 >= d1,
            "seed {seed} case {case}: a={a} b={b} k={k} d1={d1} d2={d2}"
        );
    }
}

/// LRU inclusion (stack) property: a fully-associative LRU cache of
/// capacity C+k hits whenever a capacity-C one does.
fn check_lru_stack_property(seed: u64) {
    let mut rng = DetRng::new(seed);
    let trace = random_trace(&mut rng, 1 << 16);
    let extra = rng.range_usize(1, 3);
    let line = 64usize;
    let small_lines = 4usize;
    let big_lines = small_lines << extra;
    let mut small = Cache::new(CacheConfig::new(
        small_lines * line,
        line,
        small_lines,
        ReplacementPolicy::Lru,
    ));
    let mut big = Cache::new(CacheConfig::new(
        big_lines * line,
        line,
        big_lines,
        ReplacementPolicy::Lru,
    ));
    for &a in &trace {
        let sh = small.access(a);
        let bh = big.access(a);
        if sh == Probe::Hit {
            assert_eq!(
                bh,
                Probe::Hit,
                "seed {seed}: big LRU cache missed where small hit"
            );
        }
    }
    assert!(big.misses() <= small.misses(), "seed {seed}");
}

/// Replaying a trace twice through a cache large enough to hold its
/// footprint yields no misses on the second pass.
fn check_second_pass_hits_when_footprint_fits(seed: u64) {
    let mut rng = DetRng::new(seed);
    let len = rng.range_usize(1, 200);
    let trace = rng.vec_u64(len, 0, 4096);
    let mut c = Cache::new(CacheConfig::new(8192, 64, 128, ReplacementPolicy::Lru));
    for &a in &trace {
        c.access(a);
    }
    let first_pass_misses = c.misses();
    for &a in &trace {
        assert_eq!(c.access(a), Probe::Hit, "seed {seed}");
    }
    assert_eq!(c.misses(), first_pass_misses, "seed {seed}");
}

/// Write-backs never exceed misses (every write-back rides an eviction, and
/// every eviction rides a miss when prefetching is off), and a read-only
/// trace produces none. Load/store distinction never changes hit/miss
/// outcomes.
fn check_writebacks_bounded_by_misses(seed: u64) {
    let mut rng = DetRng::new(seed);
    let len = rng.range_usize(1, 400);
    let trace: Vec<(u64, bool)> = (0..len)
        .map(|_| (rng.range_u64(0, 1 << 14), rng.bool()))
        .collect();
    let assoc = 1usize << rng.range_u64(0, 3);
    let mut c = Cache::new(CacheConfig::new(2048, 64, assoc, ReplacementPolicy::Lru));
    for &(a, w) in &trace {
        c.access_kind(a, w);
    }
    assert!(c.writebacks() <= c.misses(), "seed {seed}");
    let mut ro = Cache::new(CacheConfig::new(2048, 64, assoc, ReplacementPolicy::Lru));
    for &(a, _) in &trace {
        ro.access_kind(a, false);
    }
    assert_eq!(ro.writebacks(), 0, "seed {seed}");
    assert_eq!(ro.misses(), c.misses(), "seed {seed}");
    assert_eq!(ro.accesses(), c.accesses(), "seed {seed}");
}

/// Misses never exceed accesses, and peek never changes outcomes.
fn check_counters_consistent(seed: u64) {
    let mut rng = DetRng::new(seed);
    let trace = random_trace(&mut rng, 1 << 16);
    let assoc = 1usize << rng.range_u64(0, 4);
    let mut c = Cache::new(CacheConfig::new(4096, 64, assoc, ReplacementPolicy::Lru));
    for &a in &trace {
        let before = c.peek(a);
        let got = c.access(a);
        assert_eq!(before, got, "seed {seed}");
    }
    assert!(c.misses() <= c.accesses(), "seed {seed}");
    assert_eq!(c.accesses(), trace.len() as u64, "seed {seed}");
}

/// A named seed-parameterized property.
type Property = (&'static str, fn(u64));

/// Every property, by name — the sweep tests and the regression replay run
/// the same list, so a seed recorded for one property reruns them all (a
/// regression seed is cheap; missing a cross-property interaction is not).
const PROPERTIES: &[Property] = &[
    (
        "direct_mapped_equals_one_way",
        check_direct_mapped_equals_one_way,
    ),
    (
        "distances_grow_with_cache_size",
        check_distances_grow_with_cache_size,
    ),
    ("lru_stack_property", check_lru_stack_property),
    (
        "second_pass_hits_when_footprint_fits",
        check_second_pass_hits_when_footprint_fits,
    ),
    (
        "writebacks_bounded_by_misses",
        check_writebacks_bounded_by_misses,
    ),
    ("counters_consistent", check_counters_consistent),
];

#[test]
fn direct_mapped_equals_one_way() {
    (0..CASES).for_each(check_direct_mapped_equals_one_way);
}

#[test]
fn distances_grow_with_cache_size() {
    // Historical fixed seed first (this test predates the seed sweep), then
    // the common window.
    check_distances_grow_with_cache_size(0xD157);
    (0..CASES).for_each(check_distances_grow_with_cache_size);
}

#[test]
fn lru_stack_property() {
    (0..CASES).for_each(check_lru_stack_property);
}

#[test]
fn second_pass_hits_when_footprint_fits() {
    (0..CASES).for_each(check_second_pass_hits_when_footprint_fits);
}

#[test]
fn writebacks_bounded_by_misses() {
    (0..CASES).for_each(check_writebacks_bounded_by_misses);
}

#[test]
fn counters_consistent() {
    (0..CASES).for_each(check_counters_consistent);
}

/// Replay every `cc <hex-seed>` line of the committed regression file
/// through every property. The file follows proptest's on-disk format so
/// the workflow (failure prints a seed, a human appends `cc <seed>`) is
/// familiar, even though the harness is the in-tree PRNG.
#[test]
fn regression_seeds_replay() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/proptest-regressions/properties.txt"
    );
    let text = std::fs::read_to_string(path).expect("regression seed file exists");
    let mut seeds = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed = line
            .strip_prefix("cc ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .unwrap_or_else(|| panic!("line {}: expected `cc <hex seed>`, got `{raw}`", ln + 1));
        seeds.push(seed);
    }
    assert!(!seeds.is_empty(), "regression seed file has no seeds");
    for seed in seeds {
        for (name, check) in PROPERTIES {
            let result = std::panic::catch_unwind(|| check(seed));
            assert!(
                result.is_ok(),
                "regression seed {seed:#018x} fails property {name}"
            );
        }
    }
}
