//! Property tests for the cache simulator substrate.
//!
//! These pin down the structural facts the paper's algorithms lean on:
//! modular nesting of cache levels, direct-mapped/1-way equivalence, and the
//! LRU stack property.

use mlc_cache_sim::cache::Probe;
use mlc_cache_sim::{Cache, CacheConfig, ReplacementPolicy};
use proptest::prelude::*;

/// A small random trace of byte addresses within a few cache spans.
fn trace_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1 << 16), 1..400)
}

proptest! {
    /// Direct-mapped is exactly 1-way set-associative under any policy.
    #[test]
    fn direct_mapped_equals_one_way(trace in trace_strategy()) {
        let mut dm = Cache::new(CacheConfig::direct_mapped(4096, 64));
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random] {
            let mut one_way = Cache::new(CacheConfig::new(4096, 64, 1, policy));
            for &a in &trace {
                prop_assert_eq!(one_way.access(a), dm.peek(a).is_miss().then_some(Probe::Miss).unwrap_or(Probe::Hit));
                dm.access(a);
            }
            dm = Cache::new(CacheConfig::direct_mapped(4096, 64));
        }
    }

    /// The modular-arithmetic lemma behind MULTILVLPAD (Section 3.1.2): if
    /// two addresses are at least `d` apart on a direct-mapped cache of size
    /// S (circular distance of `addr mod S`), they are at least `min(d, ...)`
    /// apart on a cache of size k*S. Concretely we check: circular distance
    /// on the larger cache is >= circular distance on the smaller one, for
    /// any pair whose small-cache distance is <= S/2 (distances cap at S/2
    /// on a circle of circumference S).
    #[test]
    fn distances_grow_with_cache_size(a in 0u64..(1<<24), b in 0u64..(1<<24), k in 1u32..6) {
        let s1 = 16 * 1024u64;
        let s2 = s1 << k;
        let circ = |x: u64, y: u64, s: u64| {
            let d = (x % s).abs_diff(y % s);
            d.min(s - d)
        };
        let d1 = circ(a, b, s1);
        let d2 = circ(a, b, s2);
        prop_assert!(d2 >= d1, "d1={d1} d2={d2}");
    }

    /// LRU inclusion (stack) property: a fully-associative LRU cache of
    /// capacity C+k hits whenever a capacity-C one does.
    #[test]
    fn lru_stack_property(trace in trace_strategy(), extra in 1usize..3) {
        let line = 64usize;
        let small_lines = 4usize;
        let big_lines = small_lines << extra;
        let mut small = Cache::new(CacheConfig::new(small_lines * line, line, small_lines, ReplacementPolicy::Lru));
        let mut big = Cache::new(CacheConfig::new(big_lines * line, line, big_lines, ReplacementPolicy::Lru));
        for &a in &trace {
            let sh = small.access(a);
            let bh = big.access(a);
            if sh == Probe::Hit {
                prop_assert_eq!(bh, Probe::Hit, "big LRU cache missed where small hit");
            }
        }
        prop_assert!(big.misses() <= small.misses());
    }

    /// Replaying a trace twice through a cache large enough to hold its
    /// footprint yields no misses on the second pass.
    #[test]
    fn second_pass_hits_when_footprint_fits(trace in prop::collection::vec(0u64..4096, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(8192, 64, 128, ReplacementPolicy::Lru));
        for &a in &trace {
            c.access(a);
        }
        let first_pass_misses = c.misses();
        for &a in &trace {
            prop_assert_eq!(c.access(a), Probe::Hit);
        }
        prop_assert_eq!(c.misses(), first_pass_misses);
    }

    /// Write-backs never exceed misses (every write-back rides an eviction,
    /// and every eviction rides a miss when prefetching is off), and a
    /// read-only trace produces none.
    #[test]
    fn writebacks_bounded_by_misses(
        trace in prop::collection::vec((0u64..(1 << 14), prop::bool::ANY), 1..400),
        assoc_log in 0u32..3,
    ) {
        let mut c = Cache::new(CacheConfig::new(2048, 64, 1 << assoc_log, ReplacementPolicy::Lru));
        for &(a, w) in &trace {
            c.access_kind(a, w);
        }
        prop_assert!(c.writebacks() <= c.misses());
        let mut ro = Cache::new(CacheConfig::new(2048, 64, 1 << assoc_log, ReplacementPolicy::Lru));
        for &(a, _) in &trace {
            ro.access_kind(a, false);
        }
        prop_assert_eq!(ro.writebacks(), 0);
        // Load/store distinction never changes hit/miss outcomes.
        prop_assert_eq!(ro.misses(), c.misses());
        prop_assert_eq!(ro.accesses(), c.accesses());
    }

    /// Misses never exceed accesses, and peek never changes outcomes.
    #[test]
    fn counters_consistent(trace in trace_strategy(), assoc_log in 0u32..4) {
        let mut c = Cache::new(CacheConfig::new(4096, 64, 1 << assoc_log, ReplacementPolicy::Lru));
        for &a in &trace {
            let before = c.peek(a);
            let got = c.access(a);
            prop_assert_eq!(before, got);
        }
        prop_assert!(c.misses() <= c.accesses());
        prop_assert_eq!(c.accesses(), trace.len() as u64);
    }
}
