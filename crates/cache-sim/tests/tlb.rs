//! Integration tests for the TLB model: behavior as an [`AccessSink`],
//! interaction with the trace generator's run-length fast path, and the
//! UltraSparc I ablation configuration.
//!
//! The TLB only implements `access()`, so the `run`/`run_group` defaults
//! expand every batched run back into scalar accesses. That makes it an
//! independent unbatching consumer: feeding it the fast-path trace and the
//! scalar trace must produce identical counts, which pins down the
//! generator's run emission (start, stride, count) — a bug there would show
//! up here even if the cache simulator's own batched sink compensated.

use mlc_cache_sim::rng::DetRng;
use mlc_cache_sim::tlb::Tlb;
use mlc_cache_sim::trace::{Access, AccessKind, AccessSink, Run};
use mlc_model::arbitrary::{arbitrary_layout, arbitrary_program, ProgramGenConfig};
use mlc_model::trace_gen::try_generate_with;

#[test]
fn run_expansion_matches_manual_scalar_loop() {
    // A Run fed through the default `run` must count exactly like the same
    // addresses pushed one by one — including zero and negative strides.
    for &(start, stride, count) in &[
        (0u64, 8i64, 100u64),
        (4096, 0, 17),
        (65536, -16, 50),
        (8 * 1024 * 1024, 8192, 9),
    ] {
        let mut batched = Tlb::new(4, 8192);
        let mut scalar = Tlb::new(4, 8192);
        batched.run(Run {
            start,
            stride,
            count,
            kind: AccessKind::Read,
        });
        let mut addr = start;
        for _ in 0..count {
            scalar.access(Access::read(addr));
            addr = addr.wrapping_add(stride as u64);
        }
        assert_eq!(
            batched.accesses(),
            scalar.accesses(),
            "({start},{stride},{count})"
        );
        assert_eq!(
            batched.misses(),
            scalar.misses(),
            "({start},{stride},{count})"
        );
        assert_eq!(batched.accesses(), count);
    }
}

#[test]
fn run_group_interleaves_rather_than_concatenates() {
    // Two runs ping-ponging between pages through a 1-entry TLB: the
    // interleaved order misses on every access, while concatenation (run A
    // fully, then run B) would hit within each run. The distinction is the
    // whole point of `run_group`.
    let a = Run {
        start: 0,
        stride: 8,
        count: 64,
        kind: AccessKind::Read,
    };
    let b = Run {
        start: 8192,
        stride: 8,
        count: 64,
        kind: AccessKind::Write,
    };
    let mut interleaved = Tlb::new(1, 8192);
    interleaved.run_group(&[a, b]);
    assert_eq!(interleaved.accesses(), 128);
    assert_eq!(interleaved.misses(), 128, "ping-pong must thrash");

    let mut concatenated = Tlb::new(1, 8192);
    concatenated.run(a);
    concatenated.run(b);
    assert_eq!(concatenated.misses(), 2, "concatenation must not");
}

#[test]
fn generator_fast_path_and_scalar_agree_through_the_tlb() {
    // The differential at the heart of the tlb-run-parity fuzz oracle, as a
    // deterministic fixed-seed sweep: the generator's batched (fast) and
    // scalar emissions must be indistinguishable to a scalar-only sink.
    let cfg = ProgramGenConfig::default();
    for seed in 0..50 {
        let mut rng = DetRng::new(seed);
        let p = arbitrary_program(&mut rng, &cfg);
        let layout = arbitrary_layout(&mut rng, &p.arrays);
        let mut fast_sink = Tlb::new(8, 64);
        let mut scalar_sink = Tlb::new(8, 64);
        let fast = try_generate_with(&p, &layout, &mut fast_sink, true)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let scalar = try_generate_with(&p, &layout, &mut scalar_sink, false)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(fast, scalar, "seed {seed}: reference counts differ");
        assert_eq!(
            fast_sink.accesses(),
            scalar_sink.accesses(),
            "seed {seed}: access counts differ"
        );
        assert_eq!(
            fast_sink.misses(),
            scalar_sink.misses(),
            "seed {seed}: miss counts differ"
        );
    }
}

#[test]
fn tiny_pages_magnify_generator_order_differences() {
    // With 64-byte "pages" and 8 entries the TLB is as reorder-sensitive as
    // an 8-line fully-associative cache; a single transposed access in the
    // fast path would flip a miss. Sanity-check the sweep above is not
    // vacuous: some generated program actually misses between the cold
    // walk and the end.
    let cfg = ProgramGenConfig::default();
    let mut nontrivial = false;
    for seed in 0..50 {
        let mut rng = DetRng::new(seed);
        let p = arbitrary_program(&mut rng, &cfg);
        let layout = arbitrary_layout(&mut rng, &p.arrays);
        let mut t = Tlb::new(8, 64);
        try_generate_with(&p, &layout, &mut t, true).unwrap();
        if t.misses() > 16 && t.miss_ratio() < 1.0 {
            nontrivial = true;
            break;
        }
    }
    assert!(nontrivial, "sweep never produced an interesting TLB load");
}

#[test]
fn ultrasparc_ablation_configuration() {
    // The ablation experiments rely on these exact parameters (64 entries,
    // 8 KB pages => 512 KB of reach) matching Mitchell et al.'s treatment
    // of the TLB as "one more level".
    let mut t = Tlb::ultrasparc_i();
    // Walk exactly the TLB reach: one miss per page, then a second pass
    // hits everywhere (fully-associative LRU keeps all 64 pages).
    let pages = 64u64;
    let page = 8 * 1024u64;
    for p in 0..pages {
        t.access_addr(p * page);
    }
    assert_eq!(t.misses(), pages);
    for p in 0..pages {
        assert!(t.access_addr(p * page + 4096), "page {p} should hit");
    }
    assert_eq!(t.misses(), pages);
    assert_eq!(t.accesses(), 2 * pages);
    // One page past the reach evicts the LRU entry (page 0).
    t.access_addr(pages * page);
    assert!(!t.access_addr(0));
}
