//! Probe and miss-classification behavior against the real simulator:
//! attaching telemetry never changes simulation results, and the shadow
//! classifier labels the canonical traces correctly.
#![cfg(feature = "telemetry")]

use mlc_cache_sim::rng::DetRng;
use mlc_cache_sim::trace::{Access, AccessSink};
use mlc_cache_sim::{Cache, CacheConfig, Hierarchy, HierarchyConfig, ReplacementPolicy};
use mlc_telemetry::{AccessEvent, CacheProbe, EvictionEvent, MissClass, NopProbe};

/// Probe that counts events and remembers the last one.
#[derive(Default)]
struct Recorder {
    accesses: Vec<AccessEvent>,
    evictions: Vec<EvictionEvent>,
}

impl CacheProbe for Recorder {
    fn on_access(&mut self, event: AccessEvent) {
        self.accesses.push(event);
    }
    fn on_eviction(&mut self, event: EvictionEvent) {
        self.evictions.push(event);
    }
}

/// Attaching a probe (even a recording one) leaves every counter and the
/// full hit/miss outcome sequence bitwise identical to the unprobed run.
#[test]
fn probed_run_is_identical_to_plain_run() {
    for seed in 0..16 {
        let mut rng = DetRng::new(seed);
        let len = rng.range_usize(100, 2000);
        let trace: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.range_u64(0, 1 << 18), rng.bool()))
            .collect();
        let cfg = HierarchyConfig::ultrasparc_i();
        let mut plain = Hierarchy::new(cfg.clone());
        let mut probed = Hierarchy::new(cfg.clone());
        let mut nop = NopProbe;
        let mut rec = Recorder::default();
        let mut probed2 = Hierarchy::new(cfg);
        for &(a, w) in &trace {
            let p = plain.access_addr_kind(a, w);
            let q = probed.access_addr_kind_probed(a, w, &mut nop);
            let r = probed2.access_addr_kind_probed(a, w, &mut rec);
            assert_eq!(p, q, "seed {seed}: NopProbe changed an outcome");
            assert_eq!(p, r, "seed {seed}: recording probe changed an outcome");
        }
        assert_eq!(plain.stats(), probed.stats(), "seed {seed}");
        assert_eq!(plain.stats(), probed2.stats(), "seed {seed}");
        assert_eq!(plain.writebacks(), probed2.writebacks(), "seed {seed}");
        // The probe saw exactly one event per level probe: L1 sees every
        // access, L2 only L1's misses.
        let l1_events = rec.accesses.iter().filter(|e| e.level == 0).count() as u64;
        let l2_events = rec.accesses.iter().filter(|e| e.level == 1).count() as u64;
        assert_eq!(l1_events, plain.stats()[0].accesses(), "seed {seed}");
        assert_eq!(l2_events, plain.stats()[1].accesses(), "seed {seed}");
    }
}

/// The probed sink wrapper drives the same state as plain sink access.
#[test]
fn probed_sink_matches_plain_sink() {
    let cfg = HierarchyConfig::ultrasparc_i();
    let mut a = Hierarchy::new(cfg.clone());
    let mut b = Hierarchy::new(cfg);
    let mut nop = NopProbe;
    let addrs = [0u64, 16 * 1024, 0, 64, 512 * 1024, 0, 32];
    for &addr in &addrs {
        a.access(Access::read(addr));
        b.probed(&mut nop).access(Access::read(addr));
    }
    assert_eq!(a.stats(), b.stats());
}

/// Event payloads carry the right geometry: line-aligned addresses and
/// in-range set indices; evictions at L1 are reported for ping-pong.
#[test]
fn event_payloads_are_line_granular() {
    let mut h = Hierarchy::new(HierarchyConfig::ultrasparc_i());
    let mut rec = Recorder::default();
    for i in 0..100u64 {
        h.access_addr_kind_probed(i * 8 + 3, i % 2 == 0, &mut rec);
    }
    for e in &rec.accesses {
        let line = h.config().levels[e.level].line as u64;
        assert_eq!(e.line_addr % line, 0, "event address not line-aligned");
        assert!(e.set < h.config().levels[e.level].num_sets());
    }
}

/// A cold stream that never revisits a line: every miss is compulsory.
#[test]
fn cold_stream_is_all_compulsory() {
    let cfg = HierarchyConfig::ultrasparc_i();
    let mut h = Hierarchy::new(cfg.clone());
    let mut cls = cfg.miss_classifier();
    for i in 0..4096u64 {
        h.access_addr_kind_probed(i * 8, false, &mut cls);
    }
    for (lvl, b) in cls.breakdowns().iter().enumerate() {
        assert_eq!(b.misses(), b.compulsory, "level {lvl}: {b:?}");
        assert_eq!(b.capacity, 0, "level {lvl}");
        assert_eq!(b.conflict, 0, "level {lvl}");
        // And the classifier agrees with the real simulator's counts.
        assert_eq!(b.accesses, h.stats()[lvl].accesses());
        assert_eq!(b.misses(), h.stats()[lvl].misses());
    }
}

/// Two lines one L1-size apart ping-pong in the direct-mapped L1 while
/// trivially fitting a 512-line fully-associative shadow: after the two
/// cold misses, every L1 miss is a conflict miss.
#[test]
fn ping_pong_is_all_conflict_after_cold_start() {
    let cfg = HierarchyConfig::ultrasparc_i();
    let mut h = Hierarchy::new(cfg.clone());
    let mut cls = cfg.miss_classifier();
    let rounds = 500u64;
    for _ in 0..rounds {
        h.access_addr_kind_probed(0, false, &mut cls);
        h.access_addr_kind_probed(16 * 1024, false, &mut cls);
    }
    let l1 = cls.breakdown(0);
    assert_eq!(l1.misses(), h.stats()[0].misses());
    assert_eq!(l1.compulsory, 2, "exactly the two cold misses");
    assert_eq!(l1.capacity, 0);
    assert_eq!(
        l1.conflict,
        l1.misses() - 2,
        "all warm misses are conflicts"
    );
    // 100% of warm misses classified conflict.
    assert_eq!(l1.misses(), 2 * rounds);
    // L2: the two lines coexist (512 KB apart they are not), so only the
    // two compulsory misses reach memory.
    let l2 = cls.breakdown(1);
    assert_eq!(l2.misses(), 2);
    assert_eq!(l2.conflict, 0);
}

/// A loop over a footprint larger than the cache in a fully-associative
/// shadow too: those misses are capacity, not conflict.
#[test]
fn oversized_sequential_loop_is_capacity() {
    // Single-level hierarchy: 1 KB direct-mapped, 32 B lines = 32 lines.
    let cfg = HierarchyConfig::new(vec![CacheConfig::direct_mapped(1024, 32)], vec![10.0]);
    let mut h = Hierarchy::new(cfg.clone());
    let mut cls = cfg.miss_classifier();
    // Stream 64 lines (2x capacity) repeatedly: LRU shadow also misses all.
    for _ in 0..10 {
        for line in 0..64u64 {
            h.access_addr_kind_probed(line * 32, false, &mut cls);
        }
    }
    let b = cls.breakdown(0);
    assert_eq!(b.misses(), h.stats()[0].misses());
    assert_eq!(b.compulsory, 64);
    assert_eq!(
        b.conflict, 0,
        "fully-assoc shadow misses these too: not conflicts"
    );
    assert_eq!(b.capacity, b.misses() - 64);
}

/// Set-associative levels classify the same way: a 2-way cache absorbs the
/// ping-pong entirely, so the classifier sees only the two cold misses.
#[test]
fn two_way_absorbs_ping_pong_no_conflicts() {
    let cfg = HierarchyConfig::new(
        vec![CacheConfig::new(16 * 1024, 32, 2, ReplacementPolicy::Lru)],
        vec![10.0],
    );
    let mut h = Hierarchy::new(cfg.clone());
    let mut cls = cfg.miss_classifier();
    for _ in 0..100 {
        h.access_addr_kind_probed(0, false, &mut cls);
        h.access_addr_kind_probed(16 * 1024, false, &mut cls);
    }
    let b = cls.breakdown(0);
    assert_eq!(b.misses(), 2);
    assert_eq!(b.compulsory, 2);
    assert_eq!(b.conflict, 0);
}

/// Single-cache probed access agrees with the plain one and reports
/// evictions with the evicted (not the incoming) line address.
#[test]
fn cache_level_probe_reports_evicted_line() {
    let mut c = Cache::new(CacheConfig::direct_mapped(1024, 32));
    let mut rec = Recorder::default();
    c.access_kind_probed(0, true, 0, &mut rec); // cold, dirty
    c.access_kind_probed(1024, false, 0, &mut rec); // evicts dirty line 0
    assert_eq!(rec.evictions.len(), 1);
    let ev = &rec.evictions[0];
    assert_eq!(ev.line_addr, 0, "eviction reports the evicted line");
    assert!(ev.dirty);
    assert_eq!(ev.level, 0);
    assert_eq!(c.writebacks(), 1);
}

/// install_metrics exports per-level counts under the given prefix that
/// match the classifier's breakdowns.
#[test]
fn classifier_metrics_export_matches_breakdown() {
    let cfg = HierarchyConfig::ultrasparc_i();
    let mut h = Hierarchy::new(cfg.clone());
    let mut cls = cfg.miss_classifier();
    for _ in 0..50 {
        h.access_addr_kind_probed(0, false, &mut cls);
        h.access_addr_kind_probed(16 * 1024, true, &mut cls);
    }
    let mut m = mlc_telemetry::MetricsRegistry::new();
    cls.install_metrics(&mut m, "sim");
    let b = cls.breakdown(0);
    assert_eq!(m.counter("sim.l1.accesses"), b.accesses);
    assert_eq!(m.counter("sim.l1.miss.conflict"), b.conflict);
    assert_eq!(m.counter("sim.l1.miss.compulsory"), b.compulsory);
    assert_eq!(m.counter("sim.l2.accesses"), cls.breakdown(1).accesses);
    assert!(m.histogram("sim.l1.conflict_distance").is_some());
    let _ = MissClass::Conflict.label();
}
