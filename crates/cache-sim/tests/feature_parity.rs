//! Golden simulation results that must hold regardless of whether the
//! `telemetry` feature is compiled in.
//!
//! This file deliberately uses no telemetry APIs, so the same test runs
//! under `cargo test -p mlc-cache-sim` (feature on, probes compiled in but
//! not attached) and `cargo test -p mlc-cache-sim --no-default-features`
//! (hooks compiled out entirely). The hard-coded digests pin the exact
//! per-level access/miss/write-back counts: if instrumentation ever
//! perturbed the simulation, one of the two configurations would diverge
//! from the golden value. CI runs both.

use mlc_cache_sim::rng::DetRng;
use mlc_cache_sim::{Hierarchy, HierarchyConfig};

/// FNV-1a over each level's (accesses, misses, writebacks) triple.
fn stats_digest(h: &Hierarchy) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            acc ^= u64::from(b);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (s, wb) in h.stats().iter().zip(h.writebacks()) {
        fold(s.accesses());
        fold(s.misses());
        fold(wb);
    }
    fold(h.prefetch_fills());
    acc
}

#[test]
fn golden_random_trace_digest() {
    let mut h = Hierarchy::new(HierarchyConfig::ultrasparc_i());
    let mut rng = DetRng::new(0xFEED_0001);
    for _ in 0..200_000 {
        let addr = rng.range_u64(0, 1 << 21);
        let write = rng.bool();
        h.access_addr_kind(addr, write);
    }
    assert_eq!(
        stats_digest(&h),
        0x3301_4716_3A83_A17B,
        "simulation results drifted"
    );
}

#[test]
fn golden_strided_trace_digest() {
    let mut h = Hierarchy::new(HierarchyConfig::alpha_21164_like());
    for i in 0..500_000u64 {
        h.access_addr_kind(i.wrapping_mul(40) & 0x3F_FFFF, i % 3 == 0);
    }
    assert_eq!(
        stats_digest(&h),
        0xF379_61B4_6560_EC45,
        "simulation results drifted"
    );
}

#[test]
fn golden_prefetch_trace_digest() {
    let mut h = Hierarchy::with_next_line_prefetch(HierarchyConfig::ultrasparc_i());
    let mut rng = DetRng::new(0xFEED_0002);
    for i in 0..100_000u64 {
        // Mix of streaming and random accesses.
        let addr = if i % 4 == 0 {
            rng.range_u64(0, 1 << 20)
        } else {
            (i * 8) & 0xF_FFFF
        };
        h.access_addr_kind(addr, false);
    }
    assert_eq!(
        stats_digest(&h),
        0x4C90_F614_6AA9_5448,
        "simulation results drifted"
    );
}
