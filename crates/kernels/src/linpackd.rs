//! LINPACKD — Gaussian elimination with partial pivoting.
//!
//! The runnable kernel is a faithful `dgefa`/`dgesl` pair (column-oriented
//! DAXPY elimination with partial pivoting plus a solve). The loop-nest
//! model captures the dominant access pattern — the rank-1 trailing-matrix
//! update and the column scaling — as two triangular nests. (The model
//! hoists the per-`k` scaling out of the factorization interleaving; this
//! changes when columns are touched, not which addresses conflict, which is
//! all the padding analyses consume.)

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// LINPACK factor+solve of an `n`×`n` system.
#[derive(Debug, Clone, Copy)]
pub struct Linpackd {
    /// Problem size.
    pub n: usize,
}

impl Linpackd {
    /// Construct the kernel at the given problem size.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        Self { n }
    }
}

impl Kernel for Linpackd {
    fn name(&self) -> String {
        "linpackd".to_string()
    }

    fn description(&self) -> &'static str {
        "Gaussian Elimination w/Pivoting"
    }

    fn source_lines(&self) -> usize {
        795
    }

    fn suite(&self) -> Suite {
        Suite::Kernels
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let mut p = Program::new(self.name());
        let a = p.add_array(ArrayDecl::f64("A", vec![self.n, self.n]));
        let b = p.add_array(ArrayDecl::f64("B", vec![self.n]));
        let ipvt = p.add_array(ArrayDecl::f64("IPVT", vec![self.n]));
        // Column scaling: for k, for i in k+1..n: A(i,k) *= t.
        p.add_nest(LoopNest::new(
            "scale",
            vec![
                Loop::counted("k", 0, n - 2),
                Loop::new("i", E::var_plus("k", 1), E::constant(n - 1)),
            ],
            vec![
                ArrayRef::read(a, vec![E::var("i"), E::var("k")]),
                ArrayRef::write(a, vec![E::var("i"), E::var("k")]),
            ],
        ));
        // Trailing update: for k, for j in k+1.., for i in k+1..:
        // A(i,j) -= A(i,k) * A(k,j).
        p.add_nest(LoopNest::new(
            "update",
            vec![
                Loop::counted("k", 0, n - 2),
                Loop::new("j", E::var_plus("k", 1), E::constant(n - 1)),
                Loop::new("i", E::var_plus("k", 1), E::constant(n - 1)),
            ],
            vec![
                ArrayRef::read(a, vec![E::var("i"), E::var("k")]),
                ArrayRef::read(a, vec![E::var("k"), E::var("j")]),
                ArrayRef::read(a, vec![E::var("i"), E::var("j")]),
                ArrayRef::write(a, vec![E::var("i"), E::var("j")]),
            ],
        ));
        // Solve sweep over B.
        p.add_nest(LoopNest::new(
            "solve",
            vec![
                Loop::counted("k", 0, n - 2),
                Loop::new("i", E::var_plus("k", 1), E::constant(n - 1)),
            ],
            vec![
                ArrayRef::read(ipvt, vec![E::var("k")]),
                ArrayRef::read(a, vec![E::var("i"), E::var("k")]),
                ArrayRef::read(b, vec![E::var("i")]),
                ArrayRef::write(b, vec![E::var("i")]),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        let n = self.n as u64;
        2 * n * n * n / 3 + 2 * n * n
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n;
        // Diagonally dominant matrix: stable without needing row swaps to
        // rescue singularity, but pivoting still exercises its code path.
        ws.fill2(0, |i, j| {
            if i == j {
                n as f64 + 1.0
            } else {
                (((i * 31 + j * 17) % 13) as f64 - 6.0) / 13.0
            }
        });
        ws.fill1(1, |i| 1.0 + (i % 3) as f64);
        ws.fill1(2, |_| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (a, b, ipvt) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let d = ws.data_mut();
        // dgefa: LU factorization with partial pivoting.
        for k in 0..n - 1 {
            // Find pivot in column k.
            let mut l = k;
            let mut amax = ld(d, a.at(k, k)).abs();
            for i in k + 1..n {
                let v = ld(d, a.at(i, k)).abs();
                if v > amax {
                    amax = v;
                    l = i;
                }
            }
            st(d, ipvt.at1(k), l as f64);
            if l != k {
                for j in k..n {
                    let t = ld(d, a.at(l, j));
                    let s = ld(d, a.at(k, j));
                    st(d, a.at(l, j), s);
                    st(d, a.at(k, j), t);
                }
            }
            let pivot = ld(d, a.at(k, k));
            let t = -1.0 / pivot;
            for i in k + 1..n {
                let v = ld(d, a.at(i, k)) * t;
                st(d, a.at(i, k), v);
            }
            // DAXPY column updates.
            for j in k + 1..n {
                let akj = ld(d, a.at(k, j));
                for i in k + 1..n {
                    let v = ld(d, a.at(i, j)) + akj * ld(d, a.at(i, k));
                    st(d, a.at(i, j), v);
                }
            }
        }
        // dgesl: forward elimination on B.
        for k in 0..n - 1 {
            let l = ld(d, ipvt.at1(k)) as usize;
            let t = ld(d, b.at1(l));
            if l != k {
                let bk = ld(d, b.at1(k));
                st(d, b.at1(l), bk);
                st(d, b.at1(k), t);
            }
            for i in k + 1..n {
                let v = ld(d, b.at1(i)) + t * ld(d, a.at(i, k));
                st(d, b.at1(i), v);
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let v = ld(d, b.at1(k)) / ld(d, a.at(k, k));
            st(d, b.at1(k), v);
            for i in 0..k {
                let w = ld(d, b.at1(i)) - v * ld(d, a.at(i, k));
                st(d, b.at1(i), w);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum1(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Solve and verify residual against a fresh copy of the system.
    #[test]
    fn solves_the_system() {
        let k = Linpackd::new(24);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        // Capture A and b before factorization destroys them.
        let n = k.n;
        let a0: Vec<f64> = (0..n * n)
            .map(|t| ws.data()[ws.mat(0).at(t % n, t / n)])
            .collect();
        let b0: Vec<f64> = (0..n).map(|i| ws.data()[ws.mat(1).at1(i)]).collect();
        k.sweep(&mut ws);
        let x: Vec<f64> = (0..n).map(|i| ws.data()[ws.mat(1).at1(i)]).collect();
        for i in 0..n {
            let mut r = -b0[i];
            for j in 0..n {
                r += a0[i + j * n] * x[j];
            }
            assert!(r.abs() < 1e-8, "residual[{i}] = {r}");
        }
    }

    #[test]
    fn model_is_triangular() {
        let k = Linpackd::new(16);
        let p = k.model();
        p.validate().unwrap();
        // Triangular bounds: no constant iteration count.
        assert_eq!(p.nests[1].const_iterations(), None);
        // Trace generation covers sum_{k} (n-1-k)^2 update iterations * 4.
        let l = DataLayout::contiguous(&p.arrays);
        let mut c = mlc_cache_sim::trace::CountingSink::default();
        mlc_model::trace_gen::generate_nest(&p, &p.nests[1], &l, &mut c);
        let expect: u64 = (0..15u64).map(|k| (15 - k) * (15 - k) * 4).sum();
        assert_eq!(c.total, expect);
    }

    #[test]
    fn pivoting_actually_swaps() {
        // A matrix needing a swap in the first column.
        let k = Linpackd::new(4);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        ws.fill2(0, |i, j| match (i, j) {
            (0, 0) => 0.001,
            (3, 0) => 5.0,
            (i, j) if i == j => 3.0,
            _ => 1.0,
        });
        ws.fill1(1, |_| 1.0);
        k.sweep(&mut ws);
        assert_eq!(ws.data()[ws.mat(2).at1(0)], 3.0, "pivot row should be 3");
    }
}
