//! NAS benchmark proxies.
//!
//! From-scratch Rust kernels reproducing the *dominant array-access
//! structure* of the eight NAS codes in Table 1 at reduced scale — the
//! quantity the paper's padding experiments depend on (see DESIGN.md §4).
//! Each proxy is a real computation (sorts sort, CG iterates, FFTs
//! transform) with a loop-nest model of its main sweeps.

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

// ---------------------------------------------------------------------------
// BUK — integer bucket sort.
// ---------------------------------------------------------------------------

/// Bucket sort of `n` keys into `buckets` buckets (NAS IS).
#[derive(Debug, Clone, Copy)]
pub struct Buk {
    /// Problem size.
    pub n: usize,
    /// Buckets.
    pub buckets: usize,
}

impl Buk {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self {
            n: 1 << 16,
            buckets: 1 << 10,
        }
    }
}

impl Kernel for Buk {
    fn name(&self) -> String {
        "buk".into()
    }

    fn description(&self) -> &'static str {
        "Integer Bucket Sort"
    }

    fn source_lines(&self) -> usize {
        305
    }

    fn suite(&self) -> Suite {
        Suite::Nas
    }

    fn model(&self) -> Program {
        let mut p = Program::new("buk");
        let key = p.add_array(ArrayDecl::f64("KEY", vec![self.n]));
        let cnt = p.add_array(ArrayDecl::f64("COUNT", vec![self.buckets]));
        let rank = p.add_array(ArrayDecl::f64("RANK", vec![self.n]));
        p.add_nest(LoopNest::new(
            "count",
            vec![Loop::counted("i", 0, self.n as i64 - 1)],
            vec![ArrayRef::read(key, vec![E::var("i")])],
        ));
        p.add_nest(LoopNest::new(
            "prefix",
            vec![Loop::counted("b", 1, self.buckets as i64 - 1)],
            vec![
                ArrayRef::read(cnt, vec![E::var_plus("b", -1)]),
                ArrayRef::read(cnt, vec![E::var("b")]),
                ArrayRef::write(cnt, vec![E::var("b")]),
            ],
        ));
        p.add_nest(LoopNest::new(
            "rank",
            vec![Loop::counted("i", 0, self.n as i64 - 1)],
            vec![
                ArrayRef::read(key, vec![E::var("i")]),
                ArrayRef::write(rank, vec![E::var("i")]),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        (2 * self.n + self.buckets) as u64
    }

    fn init(&self, ws: &mut Workspace) {
        let b = self.buckets as u64;
        ws.fill1(0, |i| {
            // Deterministic scrambled keys in [0, buckets).
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
            (h % b) as f64
        });
        ws.fill1(1, |_| 0.0);
        ws.fill1(2, |_| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let (key, cnt, rank) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let (n, buckets) = (self.n, self.buckets);
        let d = ws.data_mut();
        for b in 0..buckets {
            st(d, cnt.at1(b), 0.0);
        }
        for i in 0..n {
            let k = ld(d, key.at1(i)) as usize;
            let c = ld(d, cnt.at1(k)) + 1.0;
            st(d, cnt.at1(k), c);
        }
        for b in 1..buckets {
            let c = ld(d, cnt.at1(b)) + ld(d, cnt.at1(b - 1));
            st(d, cnt.at1(b), c);
        }
        for i in (0..n).rev() {
            let k = ld(d, key.at1(i)) as usize;
            let c = ld(d, cnt.at1(k)) - 1.0;
            st(d, cnt.at1(k), c);
            st(d, rank.at1(i), c);
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        // Σ i * rank(i) is order-sensitive: catches wrong permutations.
        let rank = ws.mat(2);
        (0..self.n).map(|i| i as f64 * ws.data()[rank.at1(i)]).sum()
    }
}

// ---------------------------------------------------------------------------
// CGM — conjugate-gradient iteration on a 2-D Laplacian.
// ---------------------------------------------------------------------------

/// One CG iteration on an `m`×`m` grid (NAS CG's sparse structure realized
/// as the pentadiagonal 2-D Laplacian, keeping every reference affine).
#[derive(Debug, Clone, Copy)]
pub struct Cgm {
    /// M.
    pub m: usize,
}

impl Cgm {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { m: 256 }
    }

    fn nv(&self) -> usize {
        self.m * self.m
    }
}

impl Kernel for Cgm {
    fn name(&self) -> String {
        "cgm".into()
    }

    fn description(&self) -> &'static str {
        "Sparse Conjugate Gradient"
    }

    fn source_lines(&self) -> usize {
        855
    }

    fn suite(&self) -> Suite {
        Suite::Nas
    }

    fn model(&self) -> Program {
        let nv = self.nv() as i64;
        let m = self.m as i64;
        let mut prog = Program::new("cgm");
        let p = prog.add_array(ArrayDecl::f64("P", vec![self.nv()]));
        let q = prog.add_array(ArrayDecl::f64("Q", vec![self.nv()]));
        let r = prog.add_array(ArrayDecl::f64("R", vec![self.nv()]));
        let x = prog.add_array(ArrayDecl::f64("X", vec![self.nv()]));
        prog.add_nest(LoopNest::new(
            "spmv",
            vec![Loop::counted("i", m, nv - m - 1)],
            vec![
                ArrayRef::read(p, vec![E::var("i")]),
                ArrayRef::read(p, vec![E::var_plus("i", -1)]),
                ArrayRef::read(p, vec![E::var_plus("i", 1)]),
                ArrayRef::read(p, vec![E::var_plus("i", -m)]),
                ArrayRef::read(p, vec![E::var_plus("i", m)]),
                ArrayRef::write(q, vec![E::var("i")]),
            ],
        ));
        prog.add_nest(LoopNest::new(
            "dots",
            vec![Loop::counted("i", 0, nv - 1)],
            vec![
                ArrayRef::read(r, vec![E::var("i")]),
                ArrayRef::read(p, vec![E::var("i")]),
                ArrayRef::read(q, vec![E::var("i")]),
            ],
        ));
        prog.add_nest(LoopNest::new(
            "axpys",
            vec![Loop::counted("i", 0, nv - 1)],
            vec![
                ArrayRef::read(p, vec![E::var("i")]),
                ArrayRef::read(x, vec![E::var("i")]),
                ArrayRef::write(x, vec![E::var("i")]),
                ArrayRef::read(q, vec![E::var("i")]),
                ArrayRef::read(r, vec![E::var("i")]),
                ArrayRef::write(r, vec![E::var("i")]),
                ArrayRef::write(p, vec![E::var("i")]),
            ],
        ));
        prog
    }

    fn flops(&self) -> u64 {
        (9 + 6 + 6) * self.nv() as u64
    }

    fn init(&self, ws: &mut Workspace) {
        // p = r = b initially (x = 0). The SpMV truncates to the interior
        // rows, so the boundary band of the right-hand side must be zero for
        // the iteration to be a consistent CG on the interior operator.
        let (m, nv) = (self.m, self.nv());
        let interior = move |i: usize| i >= m && i < nv - m;
        ws.fill1(0, |i| {
            if interior(i) {
                ((i % 17) as f64 - 8.0) / 17.0
            } else {
                0.0
            }
        });
        ws.fill1(1, |_| 0.0);
        ws.fill1(2, |i| {
            if interior(i) {
                ((i % 17) as f64 - 8.0) / 17.0
            } else {
                0.0
            }
        });
        ws.fill1(3, |_| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let (p, q, r, x) = (ws.mat(0), ws.mat(1), ws.mat(2), ws.mat(3));
        let (nv, m) = (self.nv(), self.m);
        let d = ws.data_mut();
        // q = A p (5-point Laplacian).
        for i in m..nv - m {
            let v = 4.0 * ld(d, p.at1(i))
                - ld(d, p.at1(i - 1))
                - ld(d, p.at1(i + 1))
                - ld(d, p.at1(i - m))
                - ld(d, p.at1(i + m));
            st(d, q.at1(i), v);
        }
        // alpha = (r.r)/(p.q).
        let mut rr = 0.0;
        let mut pq = 0.0;
        for i in 0..nv {
            rr += ld(d, r.at1(i)) * ld(d, r.at1(i));
            pq += ld(d, p.at1(i)) * ld(d, q.at1(i));
        }
        let alpha = if pq.abs() > 1e-300 { rr / pq } else { 0.0 };
        // x += alpha p; r -= alpha q; beta; p = r + beta p.
        let mut rr_new = 0.0;
        for i in 0..nv {
            let xv = ld(d, x.at1(i)) + alpha * ld(d, p.at1(i));
            st(d, x.at1(i), xv);
            let rv = ld(d, r.at1(i)) - alpha * ld(d, q.at1(i));
            st(d, r.at1(i), rv);
            rr_new += rv * rv;
        }
        let beta = if rr.abs() > 1e-300 { rr_new / rr } else { 0.0 };
        for i in 0..nv {
            let pv = ld(d, r.at1(i)) + beta * ld(d, p.at1(i));
            st(d, p.at1(i), pv);
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum1(3) + ws.sum1(2)
    }
}

// ---------------------------------------------------------------------------
// EMBAR — embarrassingly parallel Monte Carlo.
// ---------------------------------------------------------------------------

/// Marsaglia-polar Gaussian-pair counting (NAS EP).
#[derive(Debug, Clone, Copy)]
pub struct Embar {
    /// Pairs.
    pub pairs: usize,
}

impl Embar {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { pairs: 1 << 16 }
    }
}

impl Kernel for Embar {
    fn name(&self) -> String {
        "embar".into()
    }

    fn description(&self) -> &'static str {
        "Monte Carlo"
    }

    fn source_lines(&self) -> usize {
        265
    }

    fn suite(&self) -> Suite {
        Suite::Nas
    }

    fn model(&self) -> Program {
        let n = self.pairs as i64;
        let mut p = Program::new("embar");
        let xs = p.add_array(ArrayDecl::f64("XS", vec![2 * self.pairs]));
        let qq = p.add_array(ArrayDecl::f64("QQ", vec![16]));
        p.add_nest(LoopNest::new(
            "generate",
            vec![Loop::counted("i", 0, 2 * n - 1)],
            vec![ArrayRef::write(xs, vec![E::var("i")])],
        ));
        p.add_nest(LoopNest::new(
            "accumulate",
            vec![Loop::counted("i", 0, n - 1)],
            vec![
                ArrayRef::read(xs, vec![E::scaled("i", 2)]),
                ArrayRef::read(xs, vec![E::scaled("i", 2).plus(1)]),
                ArrayRef::read(qq, vec![E::constant(0)]),
                ArrayRef::write(qq, vec![E::constant(0)]),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        12 * self.pairs as u64
    }

    fn init(&self, ws: &mut Workspace) {
        ws.fill1(0, |_| 0.0);
        ws.fill1(1, |_| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let (xs, qq) = (ws.mat(0), ws.mat(1));
        let pairs = self.pairs;
        let d = ws.data_mut();
        // NAS EP's linear congruential generator (reduced modulus).
        let mut seed: u64 = 271_828_183;
        for i in 0..2 * pairs {
            seed = seed
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            st(d, xs.at1(i), (seed >> 11) as f64 / (1u64 << 53) as f64);
        }
        for i in 0..pairs {
            let x = 2.0 * ld(d, xs.at1(2 * i)) - 1.0;
            let y = 2.0 * ld(d, xs.at1(2 * i + 1)) - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                let gx = (x * f).abs();
                let gy = (y * f).abs();
                let bin = (gx.max(gy) as usize).min(15);
                let c = ld(d, qq.at1(bin)) + 1.0;
                st(d, qq.at1(bin), c);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum1(1)
    }
}

// ---------------------------------------------------------------------------
// FFTPDE — 3-D fast Fourier transform.
// ---------------------------------------------------------------------------

/// Radix-2 complex FFT applied along each dimension of an n³ grid (NAS FT's
/// transform step; the PDE evolution multiply is folded into init/checksum).
#[derive(Debug, Clone, Copy)]
pub struct Fftpde {
    /// Problem size.
    pub n: usize,
}

impl Fftpde {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { n: 64 }
    }
}

/// In-place radix-2 DIT FFT over `len` complex points at stride `stride`,
/// starting at `base`, re/im split across two buffers at identical offsets.
fn fft_strided(d: &mut [f64], re0: usize, im0: usize, base: usize, len: usize, stride: usize) {
    debug_assert!(len.is_power_of_two());
    // Bit reversal.
    let mut j = 0usize;
    for i in 0..len {
        if i < j {
            let (ai, aj) = (base + i * stride, base + j * stride);
            d.swap(re0 + ai, re0 + aj);
            d.swap(im0 + ai, im0 + aj);
        }
        let mut m = len >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
    // Butterflies.
    let mut half = 1usize;
    while half < len {
        let theta = -std::f64::consts::PI / half as f64;
        let (wr0, wi0) = (theta.cos(), theta.sin());
        let mut k = 0;
        while k < len {
            let (mut wr, mut wi) = (1.0f64, 0.0f64);
            for t in 0..half {
                let a = base + (k + t) * stride;
                let b = base + (k + t + half) * stride;
                let (br, bi) = (ld(d, re0 + b), ld(d, im0 + b));
                let (tr, ti) = (wr * br - wi * bi, wr * bi + wi * br);
                let (ar, ai) = (ld(d, re0 + a), ld(d, im0 + a));
                st(d, re0 + b, ar - tr);
                st(d, im0 + b, ai - ti);
                st(d, re0 + a, ar + tr);
                st(d, im0 + a, ai + ti);
                let nwr = wr * wr0 - wi * wi0;
                wi = wr * wi0 + wi * wr0;
                wr = nwr;
            }
            k += 2 * half;
        }
        half <<= 1;
    }
}

impl Kernel for Fftpde {
    fn name(&self) -> String {
        "fftpde".into()
    }

    fn description(&self) -> &'static str {
        "3D Fast Fourier Transform"
    }

    fn source_lines(&self) -> usize {
        773
    }

    fn suite(&self) -> Suite {
        Suite::Nas
    }

    fn model(&self) -> Program {
        // The padding-relevant structure: RE and IM are equal-sized grids
        // swept in lockstep once per dimension — a textbook severe-conflict
        // pair when their bases coincide on the cache.
        let n = self.n as i64;
        let mut p = Program::new("fftpde");
        let re = p.add_array(ArrayDecl::f64("RE", vec![self.n, self.n, self.n]));
        let im = p.add_array(ArrayDecl::f64("IM", vec![self.n, self.n, self.n]));
        for (nest, (vars, half_dim)) in [
            (["k", "j", "i"], 0usize),
            (["k", "i", "j"], 1),
            (["j", "i", "k"], 2),
        ]
        .into_iter()
        .enumerate()
        {
            let mut subs_lo = vec![E::var("i"), E::var("j"), E::var("k")];
            let mut subs_hi = subs_lo.clone();
            subs_hi[half_dim] = E::var_plus(["i", "j", "k"][half_dim], n / 2);
            // The transformed dimension's loop covers only its lower half;
            // butterflies touch x and x + n/2.
            let loops: Vec<Loop> = vars
                .iter()
                .map(|v| {
                    let upper = if *v == ["i", "j", "k"][half_dim] {
                        n / 2 - 1
                    } else {
                        n - 1
                    };
                    Loop::counted(*v, 0, upper)
                })
                .collect();
            subs_lo.rotate_left(0);
            p.add_nest(LoopNest::new(
                format!("fft_dim{nest}"),
                loops,
                vec![
                    ArrayRef::read(re, subs_lo.clone()),
                    ArrayRef::read(im, subs_lo.clone()),
                    ArrayRef::read(re, subs_hi.clone()),
                    ArrayRef::read(im, subs_hi.clone()),
                    ArrayRef::write(re, subs_lo.clone()),
                    ArrayRef::write(im, subs_lo.clone()),
                    ArrayRef::write(re, subs_hi.clone()),
                    ArrayRef::write(im, subs_hi),
                ],
            ));
        }
        p
    }

    fn flops(&self) -> u64 {
        // 3 dims * n^2 FFTs * 5 n log2 n flops.
        let n = self.n as u64;
        3 * n * n * 5 * n * (n.trailing_zeros() as u64)
    }

    fn init(&self, ws: &mut Workspace) {
        ws.fill3(0, |i, j, k| {
            (((i * 7 + j * 3 + k) % 32) as f64) / 32.0 - 0.5
        });
        ws.fill3(1, |_, _, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (re, im) = (ws.mat(0), ws.mat(1));
        let d = ws.data_mut();
        // Along dim 0 (unit stride).
        for k in 0..n {
            for j in 0..n {
                fft_strided(d, re.off, im.off, j * re.ld + k * re.ld2, n, 1);
            }
        }
        // Along dim 1.
        for k in 0..n {
            for i in 0..n {
                fft_strided(d, re.off, im.off, i + k * re.ld2, n, re.ld);
            }
        }
        // Along dim 2.
        for j in 0..n {
            for i in 0..n {
                fft_strided(d, re.off, im.off, i + j * re.ld, n, re.ld2);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum3(0).abs() + ws.sum3(1).abs()
    }
}

// ---------------------------------------------------------------------------
// MGRID — multigrid V-cycle.
// ---------------------------------------------------------------------------

/// One smoothed two-grid cycle of a 7-point Poisson multigrid (NAS MG).
#[derive(Debug, Clone, Copy)]
pub struct Mgrid {
    /// Problem size.
    pub n: usize,
}

impl Mgrid {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { n: 64 }
    }
}

impl Kernel for Mgrid {
    fn name(&self) -> String {
        "mgrid".into()
    }

    fn description(&self) -> &'static str {
        "Multigrid Solver"
    }

    fn source_lines(&self) -> usize {
        680
    }

    fn suite(&self) -> Suite {
        Suite::Nas
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let h = self.n / 2;
        let mut p = Program::new("mgrid");
        let u = p.add_array(ArrayDecl::f64("U", vec![self.n, self.n, self.n]));
        let v = p.add_array(ArrayDecl::f64("V", vec![self.n, self.n, self.n]));
        let r = p.add_array(ArrayDecl::f64("R", vec![self.n, self.n, self.n]));
        let r2 = p.add_array(ArrayDecl::f64("R2", vec![h, h, h]));
        let u2 = p.add_array(ArrayDecl::f64("U2", vec![h, h, h]));
        let ijk = |di: i64, dj: i64, dk: i64| {
            vec![
                E::var_plus("i", di),
                E::var_plus("j", dj),
                E::var_plus("k", dk),
            ]
        };
        let interior = |hi: i64| {
            vec![
                Loop::counted("k", 1, hi - 2),
                Loop::counted("j", 1, hi - 2),
                Loop::counted("i", 1, hi - 2),
            ]
        };
        // Residual: R = V - A U (7-point).
        p.add_nest(LoopNest::new(
            "residual",
            interior(n),
            vec![
                ArrayRef::read(v, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(-1, 0, 0)),
                ArrayRef::read(u, ijk(1, 0, 0)),
                ArrayRef::read(u, ijk(0, -1, 0)),
                ArrayRef::read(u, ijk(0, 1, 0)),
                ArrayRef::read(u, ijk(0, 0, -1)),
                ArrayRef::read(u, ijk(0, 0, 1)),
                ArrayRef::write(r, ijk(0, 0, 0)),
            ],
        ));
        // Restriction: R2(i,j,k) = R(2i,2j,2k) (+ neighbor average).
        let two = |v: &str| E::scaled(v, 2);
        p.add_nest(LoopNest::new(
            "restrict",
            interior(h as i64),
            vec![
                ArrayRef::read(r, vec![two("i"), two("j"), two("k")]),
                ArrayRef::read(r, vec![two("i").plus(1), two("j"), two("k")]),
                ArrayRef::read(r, vec![two("i"), two("j").plus(1), two("k")]),
                ArrayRef::read(r, vec![two("i"), two("j"), two("k").plus(1)]),
                ArrayRef::write(r2, ijk(0, 0, 0)),
            ],
        ));
        // Coarse smoothing.
        p.add_nest(LoopNest::new(
            "smooth_coarse",
            interior(h as i64),
            vec![
                ArrayRef::read(r2, ijk(0, 0, 0)),
                ArrayRef::read(u2, ijk(-1, 0, 0)),
                ArrayRef::read(u2, ijk(1, 0, 0)),
                ArrayRef::read(u2, ijk(0, -1, 0)),
                ArrayRef::read(u2, ijk(0, 1, 0)),
                ArrayRef::read(u2, ijk(0, 0, -1)),
                ArrayRef::read(u2, ijk(0, 0, 1)),
                ArrayRef::write(u2, ijk(0, 0, 0)),
            ],
        ));
        // Prolongation + fine smoothing: U(2i,2j,2k) += U2(i,j,k) etc.
        p.add_nest(LoopNest::new(
            "prolongate",
            interior(h as i64),
            vec![
                ArrayRef::read(u2, ijk(0, 0, 0)),
                ArrayRef::read(u, vec![two("i"), two("j"), two("k")]),
                ArrayRef::write(u, vec![two("i"), two("j"), two("k")]),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        let n = self.n as u64;
        10 * n * n * n
    }

    fn init(&self, ws: &mut Workspace) {
        ws.fill3(0, |_, _, _| 0.0);
        ws.fill3(1, |i, j, k| {
            if (i, j, k) == (self.n / 3, self.n / 2, self.n / 4) {
                1.0
            } else {
                0.0
            }
        });
        ws.fill3(2, |_, _, _| 0.0);
        ws.fill3(3, |_, _, _| 0.0);
        ws.fill3(4, |_, _, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let h = n / 2;
        let (u, v, r, r2, u2) = (ws.mat(0), ws.mat(1), ws.mat(2), ws.mat(3), ws.mat(4));
        let d = ws.data_mut();
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let lap = 6.0 * ld(d, u.at3(i, j, k))
                        - ld(d, u.at3(i - 1, j, k))
                        - ld(d, u.at3(i + 1, j, k))
                        - ld(d, u.at3(i, j - 1, k))
                        - ld(d, u.at3(i, j + 1, k))
                        - ld(d, u.at3(i, j, k - 1))
                        - ld(d, u.at3(i, j, k + 1));
                    st(d, r.at3(i, j, k), ld(d, v.at3(i, j, k)) - lap);
                }
            }
        }
        for k in 1..h - 1 {
            for j in 1..h - 1 {
                for i in 1..h - 1 {
                    let s = 0.25
                        * (ld(d, r.at3(2 * i, 2 * j, 2 * k))
                            + ld(d, r.at3(2 * i + 1, 2 * j, 2 * k))
                            + ld(d, r.at3(2 * i, 2 * j + 1, 2 * k))
                            + ld(d, r.at3(2 * i, 2 * j, 2 * k + 1)));
                    st(d, r2.at3(i, j, k), s);
                }
            }
        }
        for k in 1..h - 1 {
            for j in 1..h - 1 {
                for i in 1..h - 1 {
                    let s = (ld(d, r2.at3(i, j, k))
                        + ld(d, u2.at3(i - 1, j, k))
                        + ld(d, u2.at3(i + 1, j, k))
                        + ld(d, u2.at3(i, j - 1, k))
                        + ld(d, u2.at3(i, j + 1, k))
                        + ld(d, u2.at3(i, j, k - 1))
                        + ld(d, u2.at3(i, j, k + 1)))
                        / 6.0;
                    st(d, u2.at3(i, j, k), s);
                }
            }
        }
        for k in 1..h - 1 {
            for j in 1..h - 1 {
                for i in 1..h - 1 {
                    let val = ld(d, u.at3(2 * i, 2 * j, 2 * k)) + ld(d, u2.at3(i, j, k));
                    st(d, u.at3(2 * i, 2 * j, 2 * k), val);
                }
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum3(0) * 1e6 + ws.sum3(2)
    }
}

// ---------------------------------------------------------------------------
// APPBT / APPLU / APPSP — PDE solver proxies.
// ---------------------------------------------------------------------------

/// Which NAS pseudo-application flavour a [`Pde3d`] instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdeFlavor {
    /// Block-tridiagonal: line tridiagonal solves along every dimension.
    Appbt,
    /// SSOR: lower then upper wavefront-style sweeps.
    Applu,
    /// Scalar pentadiagonal: 5-point line recurrences along each dimension.
    Appsp,
}

/// A 3-D PDE-solver proxy: RHS stencil + flavour-specific implicit sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Pde3d {
    /// Problem size.
    pub n: usize,
    /// Flavor.
    pub flavor: PdeFlavor,
}

impl Pde3d {
    /// The paper-scale configuration of this proxy.
    pub fn paper(flavor: PdeFlavor) -> Self {
        Self { n: 32, flavor }
    }
}

impl Kernel for Pde3d {
    fn name(&self) -> String {
        match self.flavor {
            PdeFlavor::Appbt => "appbt".into(),
            PdeFlavor::Applu => "applu".into(),
            PdeFlavor::Appsp => "appsp".into(),
        }
    }

    fn description(&self) -> &'static str {
        match self.flavor {
            PdeFlavor::Appbt => "Block-Tridiagonal PDE Solver",
            PdeFlavor::Applu => "Parabolic/Elliptic PDE Solver",
            PdeFlavor::Appsp => "Scalar-Pentadiagonal PDE Solver",
        }
    }

    fn source_lines(&self) -> usize {
        match self.flavor {
            PdeFlavor::Appbt => 4441,
            PdeFlavor::Applu => 3417,
            PdeFlavor::Appsp => 3991,
        }
    }

    fn suite(&self) -> Suite {
        Suite::Nas
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let mut p = Program::new(self.name());
        let u = p.add_array(ArrayDecl::f64("U", vec![self.n, self.n, self.n]));
        let rhs = p.add_array(ArrayDecl::f64("RHS", vec![self.n, self.n, self.n]));
        let c = p.add_array(ArrayDecl::f64("C", vec![self.n, self.n, self.n]));
        let ijk = |di: i64, dj: i64, dk: i64| {
            vec![
                E::var_plus("i", di),
                E::var_plus("j", dj),
                E::var_plus("k", dk),
            ]
        };
        let interior = || {
            vec![
                Loop::counted("k", 1, n - 2),
                Loop::counted("j", 1, n - 2),
                Loop::counted("i", 1, n - 2),
            ]
        };
        p.add_nest(LoopNest::new(
            "rhs",
            interior(),
            vec![
                ArrayRef::read(u, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(-1, 0, 0)),
                ArrayRef::read(u, ijk(1, 0, 0)),
                ArrayRef::read(u, ijk(0, -1, 0)),
                ArrayRef::read(u, ijk(0, 1, 0)),
                ArrayRef::read(u, ijk(0, 0, -1)),
                ArrayRef::read(u, ijk(0, 0, 1)),
                ArrayRef::write(rhs, ijk(0, 0, 0)),
            ],
        ));
        match self.flavor {
            PdeFlavor::Appbt => {
                // Line solves along each dimension.
                for (name, (di, dj, dk)) in [
                    ("xsolve", (-1, 0, 0)),
                    ("ysolve", (0, -1, 0)),
                    ("zsolve", (0, 0, -1)),
                ] {
                    p.add_nest(LoopNest::new(
                        name,
                        interior(),
                        vec![
                            ArrayRef::read(c, ijk(0, 0, 0)),
                            ArrayRef::read(rhs, ijk(di, dj, dk)),
                            ArrayRef::read(rhs, ijk(0, 0, 0)),
                            ArrayRef::write(rhs, ijk(0, 0, 0)),
                        ],
                    ));
                }
            }
            PdeFlavor::Applu => {
                // Lower sweep (forward) and upper sweep (backward).
                p.add_nest(LoopNest::new(
                    "lower",
                    interior(),
                    vec![
                        ArrayRef::read(c, ijk(0, 0, 0)),
                        ArrayRef::read(rhs, ijk(-1, 0, 0)),
                        ArrayRef::read(rhs, ijk(0, -1, 0)),
                        ArrayRef::read(rhs, ijk(0, 0, -1)),
                        ArrayRef::read(rhs, ijk(0, 0, 0)),
                        ArrayRef::write(rhs, ijk(0, 0, 0)),
                    ],
                ));
                let mut rev = interior();
                for l in &mut rev {
                    l.step = -1;
                }
                p.add_nest(LoopNest::new(
                    "upper",
                    rev,
                    vec![
                        ArrayRef::read(c, ijk(0, 0, 0)),
                        ArrayRef::read(rhs, ijk(1, 0, 0)),
                        ArrayRef::read(rhs, ijk(0, 1, 0)),
                        ArrayRef::read(rhs, ijk(0, 0, 1)),
                        ArrayRef::read(rhs, ijk(0, 0, 0)),
                        ArrayRef::write(rhs, ijk(0, 0, 0)),
                    ],
                ));
            }
            PdeFlavor::Appsp => {
                // Pentadiagonal recurrence along k (two-back terms).
                p.add_nest(LoopNest::new(
                    "penta_z",
                    vec![
                        Loop::counted("k", 2, n - 3),
                        Loop::counted("j", 1, n - 2),
                        Loop::counted("i", 1, n - 2),
                    ],
                    vec![
                        ArrayRef::read(c, ijk(0, 0, 0)),
                        ArrayRef::read(rhs, ijk(0, 0, -1)),
                        ArrayRef::read(rhs, ijk(0, 0, -2)),
                        ArrayRef::read(rhs, ijk(0, 0, 0)),
                        ArrayRef::write(rhs, ijk(0, 0, 0)),
                    ],
                ));
            }
        }
        // Update U from RHS.
        p.add_nest(LoopNest::new(
            "update",
            interior(),
            vec![
                ArrayRef::read(rhs, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(0, 0, 0)),
                ArrayRef::write(u, ijk(0, 0, 0)),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        let pts = (self.n as u64 - 2).pow(3);
        match self.flavor {
            PdeFlavor::Appbt => (8 + 3 * 3 + 2) * pts,
            PdeFlavor::Applu => (8 + 2 * 4 + 2) * pts,
            PdeFlavor::Appsp => (8 + 5 + 2) * pts,
        }
    }

    fn init(&self, ws: &mut Workspace) {
        ws.fill3(0, |i, j, k| 1.0 + (((i + j + k) % 7) as f64) * 0.01);
        ws.fill3(1, |_, _, _| 0.0);
        ws.fill3(2, |i, j, k| 0.1 + 0.05 * (((i * j + k) % 5) as f64) / 5.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (u, rhs, c) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let d = ws.data_mut();
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let lap = 6.0 * ld(d, u.at3(i, j, k))
                        - ld(d, u.at3(i - 1, j, k))
                        - ld(d, u.at3(i + 1, j, k))
                        - ld(d, u.at3(i, j - 1, k))
                        - ld(d, u.at3(i, j + 1, k))
                        - ld(d, u.at3(i, j, k - 1))
                        - ld(d, u.at3(i, j, k + 1));
                    st(d, rhs.at3(i, j, k), -0.1 * lap);
                }
            }
        }
        match self.flavor {
            PdeFlavor::Appbt => {
                for axis in 0..3 {
                    for k in 1..n - 1 {
                        for j in 1..n - 1 {
                            for i in 1..n - 1 {
                                let prev = match axis {
                                    0 => rhs.at3(i - 1, j, k),
                                    1 => rhs.at3(i, j - 1, k),
                                    _ => rhs.at3(i, j, k - 1),
                                };
                                let v =
                                    ld(d, rhs.at3(i, j, k)) - ld(d, c.at3(i, j, k)) * ld(d, prev);
                                st(d, rhs.at3(i, j, k), v);
                            }
                        }
                    }
                }
            }
            PdeFlavor::Applu => {
                for k in 1..n - 1 {
                    for j in 1..n - 1 {
                        for i in 1..n - 1 {
                            let v = ld(d, rhs.at3(i, j, k))
                                - ld(d, c.at3(i, j, k))
                                    * (ld(d, rhs.at3(i - 1, j, k))
                                        + ld(d, rhs.at3(i, j - 1, k))
                                        + ld(d, rhs.at3(i, j, k - 1)));
                            st(d, rhs.at3(i, j, k), v);
                        }
                    }
                }
                for k in (1..n - 1).rev() {
                    for j in (1..n - 1).rev() {
                        for i in (1..n - 1).rev() {
                            let v = ld(d, rhs.at3(i, j, k))
                                - ld(d, c.at3(i, j, k))
                                    * (ld(d, rhs.at3(i + 1, j, k))
                                        + ld(d, rhs.at3(i, j + 1, k))
                                        + ld(d, rhs.at3(i, j, k + 1)));
                            st(d, rhs.at3(i, j, k), v);
                        }
                    }
                }
            }
            PdeFlavor::Appsp => {
                for k in 2..n - 2 {
                    for j in 1..n - 1 {
                        for i in 1..n - 1 {
                            let v = ld(d, rhs.at3(i, j, k))
                                - ld(d, c.at3(i, j, k))
                                    * (ld(d, rhs.at3(i, j, k - 1))
                                        + 0.5 * ld(d, rhs.at3(i, j, k - 2)));
                            st(d, rhs.at3(i, j, k), v);
                        }
                    }
                }
            }
        }
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let v = ld(d, u.at3(i, j, k)) + ld(d, rhs.at3(i, j, k));
                    st(d, u.at3(i, j, k), v);
                }
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum3(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;
    use mlc_model::DataLayout;

    #[test]
    fn buk_sorts() {
        let k = Buk {
            n: 256,
            buckets: 16,
        };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        k.sweep(&mut ws);
        // Verify rank is a permutation consistent with key order.
        let (key, rank) = (ws.mat(0), ws.mat(2));
        let mut seen = vec![false; k.n];
        let mut sorted = vec![0.0; k.n];
        for i in 0..k.n {
            let r = ws.data()[rank.at1(i)] as usize;
            assert!(!seen[r], "rank collision at {r}");
            seen[r] = true;
            sorted[r] = ws.data()[key.at1(i)];
        }
        for w in sorted.windows(2) {
            assert!(w[0] <= w[1], "not sorted: {} > {}", w[0], w[1]);
        }
    }

    #[test]
    fn cgm_reduces_residual() {
        let k = Cgm { m: 16 };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        let r0: f64 = (0..k.nv())
            .map(|i| ws.data()[ws.mat(2).at1(i)].powi(2))
            .sum();
        for _ in 0..10 {
            k.sweep(&mut ws);
        }
        let r1: f64 = (0..k.nv())
            .map(|i| ws.data()[ws.mat(2).at1(i)].powi(2))
            .sum();
        assert!(r1 < r0, "CG must reduce the residual: {r0} -> {r1}");
    }

    #[test]
    fn embar_counts_pairs() {
        let k = Embar { pairs: 4096 };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        k.sweep(&mut ws);
        let total = k.checksum(&ws);
        // ~ pi/4 of pairs accepted.
        let frac = total / k.pairs as f64;
        assert!(
            (frac - std::f64::consts::FRAC_PI_4).abs() < 0.05,
            "acceptance {frac}"
        );
    }

    #[test]
    fn fft_parseval_energy_scales_by_n_per_dim() {
        let k = Fftpde { n: 8 };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        let energy_in: f64 = {
            let re = ws.mat(0);
            let mut s = 0.0;
            for kk in 0..8 {
                for j in 0..8 {
                    for i in 0..8 {
                        s += ws.data()[re.at3(i, j, kk)].powi(2);
                    }
                }
            }
            s
        };
        k.sweep(&mut ws);
        let energy_out: f64 = {
            let (re, im) = (ws.mat(0), ws.mat(1));
            let mut s = 0.0;
            for kk in 0..8 {
                for j in 0..8 {
                    for i in 0..8 {
                        s += ws.data()[re.at3(i, j, kk)].powi(2)
                            + ws.data()[im.at3(i, j, kk)].powi(2);
                    }
                }
            }
            s
        };
        // Parseval over 3 unnormalized transforms: factor n^3 = 512.
        let ratio = energy_out / energy_in;
        assert!((ratio - 512.0).abs() / 512.0 < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn mgrid_moves_toward_solution() {
        let k = Mgrid { n: 16 };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        k.sweep(&mut ws);
        // The point source must have propagated into U via the coarse grid.
        assert_ne!(ws.sum3(0), 0.0);
    }

    #[test]
    fn pde_proxies_run_and_differ() {
        let mut sums = Vec::new();
        for flavor in [PdeFlavor::Appbt, PdeFlavor::Applu, PdeFlavor::Appsp] {
            let k = Pde3d { n: 12, flavor };
            let p = k.model();
            p.validate().unwrap();
            let mut ws = Workspace::contiguous(&p);
            k.init(&mut ws);
            k.sweep(&mut ws);
            let c = k.checksum(&ws);
            assert!(c.is_finite());
            sums.push(c);
        }
        assert_ne!(sums[0], sums[1]);
        assert_ne!(sums[1], sums[2]);
    }

    #[test]
    fn all_nas_models_validate() {
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(Buk {
                n: 128,
                buckets: 16,
            }),
            Box::new(Cgm { m: 8 }),
            Box::new(Embar { pairs: 64 }),
            Box::new(Fftpde { n: 8 }),
            Box::new(Mgrid { n: 8 }),
            Box::new(Pde3d {
                n: 8,
                flavor: PdeFlavor::Appbt,
            }),
        ];
        for k in kernels {
            k.model().validate().unwrap();
        }
    }

    #[test]
    fn padding_safe_for_proxies() {
        let k = Cgm { m: 8 };
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[32, 64, 0, 128]);
        assert!(layouts_agree(&k, &a, &b, 3));

        let k = Fftpde { n: 8 };
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[64, 192]);
        assert!(layouts_agree(&k, &a, &b, 1));
    }
}
