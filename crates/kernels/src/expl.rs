//! EXPL — 2-D explicit hydrodynamics (Livermore loop 18).
//!
//! The paper's workhorse: `expl512` appears in every padding figure, the
//! problem-size sweep (Figure 11) and the fusion study (Figure 12). The
//! code is the classic Livermore kernel 18 fragment: nine N×N arrays
//! (`ZA ZB ZM ZP ZQ ZR ZU ZV ZZ`), three loop nests per time step, and
//! plenty of group reuse across the `k` (column) direction — columns `k-1`,
//! `k`, `k+1` of several arrays are live at once.
//!
//! Fortran indexing `Z*(j,k)` maps to our column-major model with `j` the
//! unit-stride subscript; all loops run over the interior `1..=n-2`
//! (0-based) so the ±1 stencils stay in bounds.

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// The EXPL kernel at a given interior size `n` (arrays are `n`×`n`).
#[derive(Debug, Clone, Copy)]
pub struct Expl {
    /// Problem size.
    pub n: usize,
}

impl Expl {
    /// Construct the kernel at the given problem size.
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "EXPL needs at least a 4x4 grid");
        Self { n }
    }

    fn names() -> [&'static str; 9] {
        ["ZA", "ZB", "ZM", "ZP", "ZQ", "ZR", "ZU", "ZV", "ZZ"]
    }
}

const S: f64 = 0.0041;
const T: f64 = 0.0037;

impl Kernel for Expl {
    fn name(&self) -> String {
        format!("expl{}", self.n)
    }

    fn description(&self) -> &'static str {
        "2D Explicit Hydrodynamics (Liv18)"
    }

    fn source_lines(&self) -> usize {
        59
    }

    fn suite(&self) -> Suite {
        Suite::Kernels
    }

    fn model(&self) -> Program {
        let n = self.n;
        let mut p = Program::new(self.name());
        let ids: Vec<ArrayId> = Self::names()
            .iter()
            .map(|nm| p.add_array(ArrayDecl::f64(*nm, vec![n, n])))
            .collect();
        let [za, zb, zm, zp, zq, zr, zu, zv, zz] = [
            ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7], ids[8],
        ];
        let jk = |dj: i64, dk: i64| vec![E::var_plus("j", dj), E::var_plus("k", dk)];
        let loops = || {
            vec![
                Loop::counted("k", 1, n as i64 - 2),
                Loop::counted("j", 1, n as i64 - 2),
            ]
        };

        // Loop 75: ZA, ZB from ZP, ZQ, ZR, ZM.
        p.add_nest(LoopNest::new(
            "calc_ab",
            loops(),
            vec![
                ArrayRef::read(zp, jk(-1, 1)),
                ArrayRef::read(zq, jk(-1, 1)),
                ArrayRef::read(zp, jk(-1, 0)),
                ArrayRef::read(zq, jk(-1, 0)),
                ArrayRef::read(zr, jk(0, 0)),
                ArrayRef::read(zr, jk(-1, 0)),
                ArrayRef::read(zm, jk(-1, 0)),
                ArrayRef::read(zm, jk(-1, 1)),
                ArrayRef::write(za, jk(0, 0)),
                ArrayRef::read(zp, jk(0, 0)),
                ArrayRef::read(zq, jk(0, 0)),
                ArrayRef::read(zr, jk(0, -1)),
                ArrayRef::read(zm, jk(0, 0)),
                ArrayRef::write(zb, jk(0, 0)),
            ],
        ));
        // Loop 76: ZU += f(ZA, ZB, ZZ); ZV += f(ZA, ZB, ZR).
        p.add_nest(LoopNest::new(
            "calc_uv",
            loops(),
            vec![
                ArrayRef::read(zu, jk(0, 0)),
                ArrayRef::read(za, jk(0, 0)),
                ArrayRef::read(zz, jk(0, 0)),
                ArrayRef::read(zz, jk(1, 0)),
                ArrayRef::read(za, jk(-1, 0)),
                ArrayRef::read(zz, jk(-1, 0)),
                ArrayRef::read(zb, jk(0, 0)),
                ArrayRef::read(zz, jk(0, -1)),
                ArrayRef::read(zb, jk(0, 1)),
                ArrayRef::read(zz, jk(0, 1)),
                ArrayRef::write(zu, jk(0, 0)),
                ArrayRef::read(zv, jk(0, 0)),
                ArrayRef::read(zr, jk(0, 0)),
                ArrayRef::read(zr, jk(1, 0)),
                ArrayRef::read(zr, jk(-1, 0)),
                ArrayRef::read(zr, jk(0, -1)),
                ArrayRef::read(zr, jk(0, 1)),
                ArrayRef::write(zv, jk(0, 0)),
            ],
        ));
        // Loop 77: ZR += T*ZU; ZZ += T*ZV.
        p.add_nest(LoopNest::new(
            "update_rz",
            loops(),
            vec![
                ArrayRef::read(zu, jk(0, 0)),
                ArrayRef::read(zr, jk(0, 0)),
                ArrayRef::write(zr, jk(0, 0)),
                ArrayRef::read(zv, jk(0, 0)),
                ArrayRef::read(zz, jk(0, 0)),
                ArrayRef::write(zz, jk(0, 0)),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        // ~14 flops in calc_ab, ~26 in calc_uv, 4 in update_rz per point.
        44 * (self.n as u64 - 2) * (self.n as u64 - 2)
    }

    fn init(&self, ws: &mut Workspace) {
        for id in 0..9 {
            // Smooth, deterministic fields; ZM strictly positive (divisor).
            ws.fill2(id, |i, j| {
                let x = i as f64 * 0.01 + j as f64 * 0.007 + id as f64 * 0.1;
                1.0 + 0.5 * (x.sin() * 0.5 + 0.5)
            });
        }
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (za, zb, zm, zp, zq, zr, zu, zv, zz) = (
            ws.mat(0),
            ws.mat(1),
            ws.mat(2),
            ws.mat(3),
            ws.mat(4),
            ws.mat(5),
            ws.mat(6),
            ws.mat(7),
            ws.mat(8),
        );
        let d = ws.data_mut();
        // Loop 75.
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                let a = (ld(d, zp.at(j - 1, k + 1)) + ld(d, zq.at(j - 1, k + 1))
                    - ld(d, zp.at(j - 1, k))
                    - ld(d, zq.at(j - 1, k)))
                    * (ld(d, zr.at(j, k)) + ld(d, zr.at(j - 1, k)))
                    / (ld(d, zm.at(j - 1, k)) + ld(d, zm.at(j - 1, k + 1)));
                st(d, za.at(j, k), a);
                let b = (ld(d, zp.at(j - 1, k)) + ld(d, zq.at(j - 1, k))
                    - ld(d, zp.at(j, k))
                    - ld(d, zq.at(j, k)))
                    * (ld(d, zr.at(j, k)) + ld(d, zr.at(j, k - 1)))
                    / (ld(d, zm.at(j, k)) + ld(d, zm.at(j - 1, k)));
                st(d, zb.at(j, k), b);
            }
        }
        // Loop 76.
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                let u = ld(d, zu.at(j, k))
                    + S * (ld(d, za.at(j, k)) * (ld(d, zz.at(j, k)) - ld(d, zz.at(j + 1, k)))
                        - ld(d, za.at(j - 1, k)) * (ld(d, zz.at(j, k)) - ld(d, zz.at(j - 1, k)))
                        - ld(d, zb.at(j, k)) * (ld(d, zz.at(j, k)) - ld(d, zz.at(j, k - 1)))
                        + ld(d, zb.at(j, k + 1)) * (ld(d, zz.at(j, k)) - ld(d, zz.at(j, k + 1))));
                st(d, zu.at(j, k), u);
                let v = ld(d, zv.at(j, k))
                    + S * (ld(d, za.at(j, k)) * (ld(d, zr.at(j, k)) - ld(d, zr.at(j + 1, k)))
                        - ld(d, za.at(j - 1, k)) * (ld(d, zr.at(j, k)) - ld(d, zr.at(j - 1, k)))
                        - ld(d, zb.at(j, k)) * (ld(d, zr.at(j, k)) - ld(d, zr.at(j, k - 1)))
                        + ld(d, zb.at(j, k + 1)) * (ld(d, zr.at(j, k)) - ld(d, zr.at(j, k + 1))));
                st(d, zv.at(j, k), v);
            }
        }
        // Loop 77.
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                let r = ld(d, zr.at(j, k)) + T * ld(d, zu.at(j, k));
                st(d, zr.at(j, k), r);
                let z = ld(d, zz.at(j, k)) + T * ld(d, zv.at(j, k));
                st(d, zz.at(j, k), z);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(5) + ws.sum2(8) + ws.sum2(6) + ws.sum2(7) // ZR + ZZ + ZU + ZV
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;
    use mlc_cache_sim::trace::CountingSink;
    use mlc_model::trace_gen;

    #[test]
    fn model_validates_and_counts() {
        let k = Expl::new(64);
        let p = k.model();
        p.validate().unwrap();
        assert_eq!(p.arrays.len(), 9);
        assert_eq!(p.nests.len(), 3);
        // Reference count: (n-2)^2 * (14 + 18 + 6).
        let expect = 62u64 * 62 * 38;
        assert_eq!(p.const_references(), Some(expect));
        let l = DataLayout::contiguous(&p.arrays);
        let mut c = CountingSink::default();
        assert_eq!(trace_gen::generate(&p, &l, &mut c), expect);
    }

    #[test]
    fn sweep_changes_state_deterministically() {
        let k = Expl::new(32);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        let before = k.checksum(&ws);
        k.sweep(&mut ws);
        let after = k.checksum(&ws);
        assert!(after.is_finite());
        assert_ne!(before, after);
        // Determinism.
        let mut ws2 = Workspace::contiguous(&p);
        k.init(&mut ws2);
        k.sweep(&mut ws2);
        assert_eq!(after, k.checksum(&ws2));
    }

    #[test]
    fn padding_does_not_change_results() {
        let k = Expl::new(32);
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[64, 128, 0, 32, 1024, 64, 0, 32, 96]);
        assert!(layouts_agree(&k, &a, &b, 3));
    }

    #[test]
    fn group_reuse_exists_across_k_columns() {
        // ZB(j,k) and ZB(j,k+1) in calc_uv form a uniformly generated pair.
        let k = Expl::new(64);
        let p = k.model();
        let groups = mlc_model::reuse::uniformly_generated_sets(&p.nests[1], &p.arrays);
        let zb_group = groups.iter().find(|g| g.array == 1).unwrap();
        assert_eq!(zb_group.members.len(), 2);
        assert_eq!(
            zb_group.members[1].offset_elems - zb_group.members[0].offset_elems,
            64
        );
    }

    #[test]
    fn flops_match_interior() {
        let k = Expl::new(512);
        assert_eq!(k.flops(), 44 * 510 * 510);
    }
}
