//! SPEC95 floating-point proxies.
//!
//! SWIM and TOMCATV are implemented in full (see [`crate::shal`] and
//! [`crate::tomcatv`]); the remaining six SPEC codes are proxies of their
//! dominant compute loops, preserving array counts, dimensionalities and
//! reference patterns (DESIGN.md §4).

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

fn ij(di: i64, dj: i64) -> Vec<E> {
    vec![E::var_plus("i", di), E::var_plus("j", dj)]
}

// ---------------------------------------------------------------------------
// HYDRO2D — Navier-Stokes / hydrodynamical equations.
// ---------------------------------------------------------------------------

/// Godunov-style 2-D hydrodynamics proxy: density/momentum/energy fields
/// with x-flux, y-flux and update sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Hydro2d {
    /// Problem size.
    pub n: usize,
}

impl Hydro2d {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { n: 256 }
    }
}

impl Kernel for Hydro2d {
    fn name(&self) -> String {
        "hydro2d".into()
    }

    fn description(&self) -> &'static str {
        "Navier-Stokes"
    }

    fn source_lines(&self) -> usize {
        4292
    }

    fn suite(&self) -> Suite {
        Suite::Spec95
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let mut p = Program::new("hydro2d");
        let ro = p.add_array(ArrayDecl::f64("RO", vec![self.n, self.n]));
        let mu = p.add_array(ArrayDecl::f64("MU", vec![self.n, self.n]));
        let mv = p.add_array(ArrayDecl::f64("MV", vec![self.n, self.n]));
        let en = p.add_array(ArrayDecl::f64("EN", vec![self.n, self.n]));
        let fx = p.add_array(ArrayDecl::f64("FX", vec![self.n, self.n]));
        let fy = p.add_array(ArrayDecl::f64("FY", vec![self.n, self.n]));
        let interior = || vec![Loop::counted("j", 1, n - 2), Loop::counted("i", 1, n - 2)];
        p.add_nest(LoopNest::new(
            "xflux",
            interior(),
            vec![
                ArrayRef::read(ro, ij(-1, 0)),
                ArrayRef::read(ro, ij(1, 0)),
                ArrayRef::read(mu, ij(0, 0)),
                ArrayRef::write(fx, ij(0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "yflux",
            interior(),
            vec![
                ArrayRef::read(ro, ij(0, -1)),
                ArrayRef::read(ro, ij(0, 1)),
                ArrayRef::read(mv, ij(0, 0)),
                ArrayRef::write(fy, ij(0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "update",
            interior(),
            vec![
                ArrayRef::read(fx, ij(-1, 0)),
                ArrayRef::read(fx, ij(1, 0)),
                ArrayRef::read(fy, ij(0, -1)),
                ArrayRef::read(fy, ij(0, 1)),
                ArrayRef::read(ro, ij(0, 0)),
                ArrayRef::write(ro, ij(0, 0)),
                ArrayRef::read(en, ij(0, 0)),
                ArrayRef::write(en, ij(0, 0)),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        14 * (self.n as u64 - 2).pow(2)
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n as f64;
        ws.fill2(0, |i, j| {
            1.0 + 0.1 * ((i as f64 / n * 6.0).sin() * (j as f64 / n * 4.0).cos())
        });
        ws.fill2(1, |i, _| 0.01 * (i as f64 / n - 0.5));
        ws.fill2(2, |_, j| 0.01 * (0.5 - j as f64 / n));
        ws.fill2(3, |_, _| 2.5);
        ws.fill2(4, |_, _| 0.0);
        ws.fill2(5, |_, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (ro, mu, mv, en, fx, fy) = (
            ws.mat(0),
            ws.mat(1),
            ws.mat(2),
            ws.mat(3),
            ws.mat(4),
            ws.mat(5),
        );
        let d = ws.data_mut();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let f =
                    0.5 * (ld(d, ro.at(i + 1, j)) - ld(d, ro.at(i - 1, j))) * ld(d, mu.at(i, j));
                st(d, fx.at(i, j), f);
            }
        }
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let f =
                    0.5 * (ld(d, ro.at(i, j + 1)) - ld(d, ro.at(i, j - 1))) * ld(d, mv.at(i, j));
                st(d, fy.at(i, j), f);
            }
        }
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let div = 0.5
                    * (ld(d, fx.at(i + 1, j)) - ld(d, fx.at(i - 1, j)) + ld(d, fy.at(i, j + 1))
                        - ld(d, fy.at(i, j - 1)));
                let r = ld(d, ro.at(i, j)) - 0.1 * div;
                st(d, ro.at(i, j), r);
                let e = ld(d, en.at(i, j)) - 0.05 * div;
                st(d, en.at(i, j), e);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(0) + ws.sum2(3)
    }
}

// ---------------------------------------------------------------------------
// SU2COR — quantum physics (quark propagators).
// ---------------------------------------------------------------------------

/// Lattice gauge proxy: complex field times complex link variables with
/// nearest-neighbour hops.
#[derive(Debug, Clone, Copy)]
pub struct Su2cor {
    /// Problem size.
    pub n: usize,
}

impl Su2cor {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { n: 256 }
    }
}

impl Kernel for Su2cor {
    fn name(&self) -> String {
        "su2cor".into()
    }

    fn description(&self) -> &'static str {
        "Quantum Physics"
    }

    fn source_lines(&self) -> usize {
        2332
    }

    fn suite(&self) -> Suite {
        Suite::Spec95
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let mut p = Program::new("su2cor");
        let pr = p.add_array(ArrayDecl::f64("PR", vec![self.n, self.n]));
        let pi = p.add_array(ArrayDecl::f64("PI", vec![self.n, self.n]));
        let ur = p.add_array(ArrayDecl::f64("UR", vec![self.n, self.n]));
        let ui = p.add_array(ArrayDecl::f64("UI", vec![self.n, self.n]));
        let qr = p.add_array(ArrayDecl::f64("QR", vec![self.n, self.n]));
        let qi = p.add_array(ArrayDecl::f64("QI", vec![self.n, self.n]));
        let interior = || vec![Loop::counted("j", 1, n - 2), Loop::counted("i", 1, n - 2)];
        p.add_nest(LoopNest::new(
            "hop",
            interior(),
            vec![
                ArrayRef::read(ur, ij(0, 0)),
                ArrayRef::read(ui, ij(0, 0)),
                ArrayRef::read(pr, ij(1, 0)),
                ArrayRef::read(pi, ij(1, 0)),
                ArrayRef::read(pr, ij(0, 1)),
                ArrayRef::read(pi, ij(0, 1)),
                ArrayRef::read(pr, ij(-1, 0)),
                ArrayRef::read(pi, ij(-1, 0)),
                ArrayRef::read(pr, ij(0, -1)),
                ArrayRef::read(pi, ij(0, -1)),
                ArrayRef::write(qr, ij(0, 0)),
                ArrayRef::write(qi, ij(0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "copy",
            interior(),
            vec![
                ArrayRef::read(qr, ij(0, 0)),
                ArrayRef::write(pr, ij(0, 0)),
                ArrayRef::read(qi, ij(0, 0)),
                ArrayRef::write(pi, ij(0, 0)),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        20 * (self.n as u64 - 2).pow(2)
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n as f64;
        ws.fill2(0, |i, j| ((i + j) as f64 / n).cos());
        ws.fill2(1, |i, j| ((i as f64 - j as f64) / n).sin());
        // Unitary-ish link variables: cos/sin of a smooth phase.
        ws.fill2(2, |i, j| ((i * 3 + j) as f64 / n).cos() * 0.25);
        ws.fill2(3, |i, j| ((i * 3 + j) as f64 / n).sin() * 0.25);
        ws.fill2(4, |_, _| 0.0);
        ws.fill2(5, |_, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (pr, pi, ur, ui, qr, qi) = (
            ws.mat(0),
            ws.mat(1),
            ws.mat(2),
            ws.mat(3),
            ws.mat(4),
            ws.mat(5),
        );
        let d = ws.data_mut();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let hr = ld(d, pr.at(i + 1, j))
                    + ld(d, pr.at(i - 1, j))
                    + ld(d, pr.at(i, j + 1))
                    + ld(d, pr.at(i, j - 1));
                let hi = ld(d, pi.at(i + 1, j))
                    + ld(d, pi.at(i - 1, j))
                    + ld(d, pi.at(i, j + 1))
                    + ld(d, pi.at(i, j - 1));
                let (cr, ci) = (ld(d, ur.at(i, j)), ld(d, ui.at(i, j)));
                st(d, qr.at(i, j), cr * hr - ci * hi);
                st(d, qi.at(i, j), cr * hi + ci * hr);
            }
        }
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let r = ld(d, qr.at(i, j));
                st(d, pr.at(i, j), r);
                let im = ld(d, qi.at(i, j));
                st(d, pi.at(i, j), im);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(0) + ws.sum2(1)
    }
}

// ---------------------------------------------------------------------------
// TURB3D — isotropic turbulence.
// ---------------------------------------------------------------------------

/// 3-D velocity-field advection/damping proxy.
#[derive(Debug, Clone, Copy)]
pub struct Turb3d {
    /// Problem size.
    pub n: usize,
}

impl Turb3d {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { n: 32 }
    }
}

impl Kernel for Turb3d {
    fn name(&self) -> String {
        "turb3d".into()
    }

    fn description(&self) -> &'static str {
        "Isotropic Turbulence"
    }

    fn source_lines(&self) -> usize {
        2100
    }

    fn suite(&self) -> Suite {
        Suite::Spec95
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let mut p = Program::new("turb3d");
        let u = p.add_array(ArrayDecl::f64("U", vec![self.n, self.n, self.n]));
        let v = p.add_array(ArrayDecl::f64("V", vec![self.n, self.n, self.n]));
        let w = p.add_array(ArrayDecl::f64("W", vec![self.n, self.n, self.n]));
        let t = p.add_array(ArrayDecl::f64("T", vec![self.n, self.n, self.n]));
        let ijk = |di: i64, dj: i64, dk: i64| {
            vec![
                E::var_plus("i", di),
                E::var_plus("j", dj),
                E::var_plus("k", dk),
            ]
        };
        let interior = || {
            vec![
                Loop::counted("k", 1, n - 2),
                Loop::counted("j", 1, n - 2),
                Loop::counted("i", 1, n - 2),
            ]
        };
        p.add_nest(LoopNest::new(
            "advect",
            interior(),
            vec![
                ArrayRef::read(u, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(1, 0, 0)),
                ArrayRef::read(u, ijk(-1, 0, 0)),
                ArrayRef::read(v, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(0, 1, 0)),
                ArrayRef::read(u, ijk(0, -1, 0)),
                ArrayRef::read(w, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(0, 0, 1)),
                ArrayRef::read(u, ijk(0, 0, -1)),
                ArrayRef::write(t, ijk(0, 0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "damp",
            interior(),
            vec![
                ArrayRef::read(t, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(0, 0, 0)),
                ArrayRef::write(u, ijk(0, 0, 0)),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        14 * (self.n as u64 - 2).pow(3)
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n as f64;
        for id in 0..3 {
            ws.fill3(id, |i, j, k| {
                let (x, y, z) = (i as f64 / n, j as f64 / n, k as f64 / n);
                match id {
                    0 => (std::f64::consts::TAU * y).sin() * (std::f64::consts::TAU * z).cos(),
                    1 => (std::f64::consts::TAU * z).sin() * (std::f64::consts::TAU * x).cos(),
                    _ => (std::f64::consts::TAU * x).sin() * (std::f64::consts::TAU * y).cos(),
                }
            });
        }
        ws.fill3(3, |_, _, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (u, v, w, t) = (ws.mat(0), ws.mat(1), ws.mat(2), ws.mat(3));
        let d = ws.data_mut();
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let adv = ld(d, u.at3(i, j, k))
                        * (ld(d, u.at3(i + 1, j, k)) - ld(d, u.at3(i - 1, j, k)))
                        + ld(d, v.at3(i, j, k))
                            * (ld(d, u.at3(i, j + 1, k)) - ld(d, u.at3(i, j - 1, k)))
                        + ld(d, w.at3(i, j, k))
                            * (ld(d, u.at3(i, j, k + 1)) - ld(d, u.at3(i, j, k - 1)));
                    st(d, t.at3(i, j, k), adv);
                }
            }
        }
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let un = ld(d, u.at3(i, j, k)) - 0.01 * ld(d, t.at3(i, j, k));
                    st(d, u.at3(i, j, k), un);
                }
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum3(0)
    }
}

// ---------------------------------------------------------------------------
// WAVE5 — Maxwell's equations (particle-in-cell field solve).
// ---------------------------------------------------------------------------

/// Yee-scheme electromagnetic field update proxy.
#[derive(Debug, Clone, Copy)]
pub struct Wave5 {
    /// Problem size.
    pub n: usize,
}

impl Wave5 {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { n: 512 }
    }
}

impl Kernel for Wave5 {
    fn name(&self) -> String {
        "wave5".into()
    }

    fn description(&self) -> &'static str {
        "Maxwell's Equations"
    }

    fn source_lines(&self) -> usize {
        7764
    }

    fn suite(&self) -> Suite {
        Suite::Spec95
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let mut p = Program::new("wave5");
        let ex = p.add_array(ArrayDecl::f64("EX", vec![self.n, self.n]));
        let ey = p.add_array(ArrayDecl::f64("EY", vec![self.n, self.n]));
        let bz = p.add_array(ArrayDecl::f64("BZ", vec![self.n, self.n]));
        let interior = || vec![Loop::counted("j", 1, n - 2), Loop::counted("i", 1, n - 2)];
        p.add_nest(LoopNest::new(
            "faraday",
            interior(),
            vec![
                ArrayRef::read(ey, ij(1, 0)),
                ArrayRef::read(ey, ij(0, 0)),
                ArrayRef::read(ex, ij(0, 1)),
                ArrayRef::read(ex, ij(0, 0)),
                ArrayRef::read(bz, ij(0, 0)),
                ArrayRef::write(bz, ij(0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "ampere",
            interior(),
            vec![
                ArrayRef::read(bz, ij(0, 0)),
                ArrayRef::read(bz, ij(0, -1)),
                ArrayRef::read(ex, ij(0, 0)),
                ArrayRef::write(ex, ij(0, 0)),
                ArrayRef::read(bz, ij(-1, 0)),
                ArrayRef::read(ey, ij(0, 0)),
                ArrayRef::write(ey, ij(0, 0)),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        12 * (self.n as u64 - 2).pow(2)
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n;
        let c = n / 2;
        ws.fill2(0, |_, _| 0.0);
        ws.fill2(1, |_, _| 0.0);
        ws.fill2(2, |i, j| {
            let (di, dj) = (i as f64 - c as f64, j as f64 - c as f64);
            (-(di * di + dj * dj) / (n as f64)).exp()
        });
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (ex, ey, bz) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let d = ws.data_mut();
        const DT: f64 = 0.4;
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let curl = (ld(d, ey.at(i + 1, j)) - ld(d, ey.at(i, j)))
                    - (ld(d, ex.at(i, j + 1)) - ld(d, ex.at(i, j)));
                let b = ld(d, bz.at(i, j)) - DT * curl;
                st(d, bz.at(i, j), b);
            }
        }
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let e1 = ld(d, ex.at(i, j)) + DT * (ld(d, bz.at(i, j)) - ld(d, bz.at(i, j - 1)));
                st(d, ex.at(i, j), e1);
                let e2 = ld(d, ey.at(i, j)) - DT * (ld(d, bz.at(i, j)) - ld(d, bz.at(i - 1, j)));
                st(d, ey.at(i, j), e2);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(2) + ws.sum2(0).abs() + ws.sum2(1).abs()
    }
}

// ---------------------------------------------------------------------------
// APSI — pseudospectral air pollution.
// ---------------------------------------------------------------------------

/// 3-D advection-diffusion of a pollutant field over a wind field.
#[derive(Debug, Clone, Copy)]
pub struct Apsi {
    /// Nx.
    pub nx: usize,
    /// Nz.
    pub nz: usize,
}

impl Apsi {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { nx: 64, nz: 16 }
    }
}

impl Kernel for Apsi {
    fn name(&self) -> String {
        "apsi".into()
    }

    fn description(&self) -> &'static str {
        "Pseudospectral Air Pollution"
    }

    fn source_lines(&self) -> usize {
        7361
    }

    fn suite(&self) -> Suite {
        Suite::Spec95
    }

    fn model(&self) -> Program {
        let (nx, nz) = (self.nx as i64, self.nz as i64);
        let mut p = Program::new("apsi");
        let c = p.add_array(ArrayDecl::f64("C", vec![self.nx, self.nx, self.nz]));
        let cn = p.add_array(ArrayDecl::f64("CN", vec![self.nx, self.nx, self.nz]));
        let wind = p.add_array(ArrayDecl::f64("WIND", vec![self.nx, self.nx, self.nz]));
        let ijk = |di: i64, dj: i64, dk: i64| {
            vec![
                E::var_plus("i", di),
                E::var_plus("j", dj),
                E::var_plus("k", dk),
            ]
        };
        p.add_nest(LoopNest::new(
            "advect_diffuse",
            vec![
                Loop::counted("k", 1, nz - 2),
                Loop::counted("j", 1, nx - 2),
                Loop::counted("i", 1, nx - 2),
            ],
            vec![
                ArrayRef::read(wind, ijk(0, 0, 0)),
                ArrayRef::read(c, ijk(-1, 0, 0)),
                ArrayRef::read(c, ijk(1, 0, 0)),
                ArrayRef::read(c, ijk(0, -1, 0)),
                ArrayRef::read(c, ijk(0, 1, 0)),
                ArrayRef::read(c, ijk(0, 0, -1)),
                ArrayRef::read(c, ijk(0, 0, 1)),
                ArrayRef::read(c, ijk(0, 0, 0)),
                ArrayRef::write(cn, ijk(0, 0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "commit",
            vec![
                Loop::counted("k", 1, nz - 2),
                Loop::counted("j", 1, nx - 2),
                Loop::counted("i", 1, nx - 2),
            ],
            vec![
                ArrayRef::read(cn, ijk(0, 0, 0)),
                ArrayRef::write(c, ijk(0, 0, 0)),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        12 * (self.nx as u64 - 2).pow(2) * (self.nz as u64 - 2)
    }

    fn init(&self, ws: &mut Workspace) {
        let nx = self.nx;
        ws.fill3(0, |i, j, k| {
            if i == nx / 2 && j == nx / 2 && k <= 2 {
                100.0
            } else {
                0.0
            }
        });
        ws.fill3(1, |_, _, _| 0.0);
        ws.fill3(2, |i, j, _| 0.1 + 0.01 * (((i + 2 * j) % 9) as f64));
    }

    fn sweep(&self, ws: &mut Workspace) {
        let (nx, nz) = (self.nx, self.nz);
        let (c, cn, wind) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let d = ws.data_mut();
        for k in 1..nz - 1 {
            for j in 1..nx - 1 {
                for i in 1..nx - 1 {
                    let w = ld(d, wind.at3(i, j, k));
                    let adv = w * (ld(d, c.at3(i, j, k)) - ld(d, c.at3(i - 1, j, k)));
                    let diff = ld(d, c.at3(i + 1, j, k))
                        + ld(d, c.at3(i - 1, j, k))
                        + ld(d, c.at3(i, j + 1, k))
                        + ld(d, c.at3(i, j - 1, k))
                        + ld(d, c.at3(i, j, k + 1))
                        + ld(d, c.at3(i, j, k - 1))
                        - 6.0 * ld(d, c.at3(i, j, k));
                    st(
                        d,
                        cn.at3(i, j, k),
                        ld(d, c.at3(i, j, k)) - 0.2 * adv + 0.05 * diff,
                    );
                }
            }
        }
        for k in 1..nz - 1 {
            for j in 1..nx - 1 {
                for i in 1..nx - 1 {
                    let v = ld(d, cn.at3(i, j, k));
                    st(d, c.at3(i, j, k), v);
                }
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum3(0)
    }
}

// ---------------------------------------------------------------------------
// FPPPP — two-electron integral derivatives.
// ---------------------------------------------------------------------------

/// Dense integral-contraction proxy: quadruple loops over a small basis with
/// large straight-line bodies and little exploitable stencil reuse — FPPPP's
/// signature behaviour (it is dominated by enormous basic blocks).
#[derive(Debug, Clone, Copy)]
pub struct Fpppp {
    /// M.
    pub m: usize,
}

impl Fpppp {
    /// The paper-scale configuration of this proxy.
    pub fn paper() -> Self {
        Self { m: 48 }
    }
}

impl Kernel for Fpppp {
    fn name(&self) -> String {
        "fpppp".into()
    }

    fn description(&self) -> &'static str {
        "2 Electron Integral Derivative"
    }

    fn source_lines(&self) -> usize {
        2784
    }

    fn suite(&self) -> Suite {
        Suite::Spec95
    }

    fn model(&self) -> Program {
        let m = self.m as i64;
        let mut p = Program::new("fpppp");
        let f = p.add_array(ArrayDecl::f64("F", vec![self.m, self.m]));
        let g = p.add_array(ArrayDecl::f64("G", vec![self.m, self.m]));
        let t = p.add_array(ArrayDecl::f64("T", vec![self.m, self.m]));
        p.add_nest(LoopNest::new(
            "contract",
            vec![
                Loop::counted("i", 0, m - 1),
                Loop::counted("j", 0, m - 1),
                Loop::counted("k", 0, m - 1),
            ],
            vec![
                ArrayRef::read(f, vec![E::var("i"), E::var("k")]),
                ArrayRef::read(g, vec![E::var("k"), E::var("j")]),
                ArrayRef::read(t, vec![E::var("i"), E::var("j")]),
                ArrayRef::write(t, vec![E::var("i"), E::var("j")]),
            ],
        ));
        p.add_nest(LoopNest::new(
            "symmetrize",
            vec![Loop::counted("i", 0, m - 1), Loop::counted("j", 0, m - 1)],
            vec![
                ArrayRef::read(t, vec![E::var("i"), E::var("j")]),
                ArrayRef::read(t, vec![E::var("j"), E::var("i")]),
                ArrayRef::write(g, vec![E::var("i"), E::var("j")]),
            ],
        ));
        p
    }

    fn flops(&self) -> u64 {
        let m = self.m as u64;
        2 * m * m * m + 2 * m * m
    }

    fn init(&self, ws: &mut Workspace) {
        ws.fill2(0, |i, j| 1.0 / (1.0 + (i + j) as f64));
        ws.fill2(1, |i, j| 1.0 / (1.0 + i.abs_diff(j) as f64));
        ws.fill2(2, |_, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let m = self.m;
        let (f, g, t) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let d = ws.data_mut();
        // Row-major (i outer) contraction: deliberately strided, as the
        // original's access patterns defeat simple spatial locality.
        for i in 0..m {
            for j in 0..m {
                let mut acc = ld(d, t.at(i, j));
                for k in 0..m {
                    acc += ld(d, f.at(i, k)) * ld(d, g.at(k, j));
                }
                st(d, t.at(i, j), acc);
            }
        }
        for i in 0..m {
            for j in 0..m {
                let v = 0.5 * (ld(d, t.at(i, j)) + ld(d, t.at(j, i)));
                st(d, g.at(i, j), v);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;
    use mlc_model::DataLayout;

    fn all_small() -> Vec<Box<dyn Kernel>> {
        vec![
            Box::new(Hydro2d { n: 16 }),
            Box::new(Su2cor { n: 16 }),
            Box::new(Turb3d { n: 8 }),
            Box::new(Wave5 { n: 16 }),
            Box::new(Apsi { nx: 12, nz: 6 }),
            Box::new(Fpppp { m: 12 }),
        ]
    }

    #[test]
    fn all_models_validate_and_sweeps_run() {
        for k in all_small() {
            let p = k.model();
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            let mut ws = Workspace::contiguous(&p);
            k.init(&mut ws);
            k.sweep(&mut ws);
            k.sweep(&mut ws);
            assert!(k.checksum(&ws).is_finite(), "{}", k.name());
        }
    }

    #[test]
    fn padding_safe_for_all_proxies() {
        for k in all_small() {
            let p = k.model();
            let a = DataLayout::contiguous(&p.arrays);
            let pads: Vec<u64> = (0..p.arrays.len() as u64).map(|i| (i % 4) * 64).collect();
            let b = DataLayout::with_pads(&p.arrays, &pads);
            assert!(
                layouts_agree(k.as_ref(), &a, &b, 2),
                "{} diverged under padding",
                k.name()
            );
        }
    }

    #[test]
    fn wave5_conserves_field_shape() {
        let k = Wave5 { n: 32 };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        let b0 = ws.sum2(2);
        for _ in 0..10 {
            k.sweep(&mut ws);
        }
        // Yee updates preserve total Bz up to boundary leakage.
        let b1 = ws.sum2(2);
        assert!((b1 - b0).abs() < 0.1 * b0.abs() + 1.0, "{b0} -> {b1}");
    }

    #[test]
    fn apsi_spreads_pollutant_mass() {
        let k = Apsi { nx: 16, nz: 8 };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        let m0 = ws.sum3(0);
        k.sweep(&mut ws);
        let nonzero = {
            let c = ws.mat(0);
            let mut count = 0;
            for kk in 0..8 {
                for j in 0..16 {
                    for i in 0..16 {
                        if ws.data()[c.at3(i, j, kk)] != 0.0 {
                            count += 1;
                        }
                    }
                }
            }
            count
        };
        assert!(nonzero > 3, "plume should spread, {nonzero} cells");
        // Upwind advection with a varying wind is not exactly conservative;
        // mass must stay in the right ballpark though.
        let m1 = ws.sum3(0);
        assert!(m1 > 0.0 && m1 < 2.0 * m0, "mass {m0} -> {m1}");
    }

    #[test]
    fn fpppp_contraction_matches_reference() {
        let k = Fpppp { m: 8 };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        k.sweep(&mut ws);
        // T = F*G with these inits; check one element against a direct sum.
        let t = ws.mat(2);
        let mut expect = 0.0;
        for kk in 0..8usize {
            expect += 1.0 / (1.0 + (2 + kk) as f64) * (1.0 / (1.0 + kk.abs_diff(3) as f64));
        }
        assert!((ws.data()[t.at(2, 3)] - expect).abs() < 1e-12);
    }
}
