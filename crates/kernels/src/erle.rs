//! ERLE — 3-D tridiagonal solver (Erlebacher's derivative code).
//!
//! Tridiagonal solves along the third dimension of 64³ double arrays:
//! forward elimination then back substitution. Each k-plane is
//! 64·64·8 = 32 KiB — an exact multiple of the 16 KiB L1 — so the
//! plane-to-plane recurrence references self-conflict severely, the second
//! program Section 6.1 applies intra-variable padding to.

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// ERLE on an `n`³ grid (n = 64 in the paper).
#[derive(Debug, Clone, Copy)]
pub struct Erle {
    /// Problem size.
    pub n: usize,
}

impl Erle {
    /// Construct the kernel at the given problem size.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3);
        Self { n }
    }
}

impl Kernel for Erle {
    fn name(&self) -> String {
        format!("erle{}", self.n)
    }

    fn description(&self) -> &'static str {
        "3D Tridiagonal Solver"
    }

    fn source_lines(&self) -> usize {
        612
    }

    fn suite(&self) -> Suite {
        Suite::Kernels
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let mut p = Program::new(self.name());
        let f = p.add_array(ArrayDecl::f64("F", vec![self.n, self.n, self.n]));
        let d = p.add_array(ArrayDecl::f64("D", vec![self.n, self.n, self.n]));
        let x = p.add_array(ArrayDecl::f64("X", vec![self.n, self.n, self.n]));
        let ijk = |di: i64, dj: i64, dk: i64| {
            vec![
                E::var_plus("i", di),
                E::var_plus("j", dj),
                E::var_plus("k", dk),
            ]
        };
        // RHS from central differences of F along k.
        p.add_nest(LoopNest::new(
            "rhs",
            vec![
                Loop::counted("k", 1, n - 2),
                Loop::counted("j", 0, n - 1),
                Loop::counted("i", 0, n - 1),
            ],
            vec![
                ArrayRef::read(f, ijk(0, 0, 1)),
                ArrayRef::read(f, ijk(0, 0, -1)),
                ArrayRef::write(x, ijk(0, 0, 0)),
            ],
        ));
        // Forward elimination along k (plane recurrence).
        p.add_nest(LoopNest::new(
            "forward",
            vec![
                Loop::counted("k", 1, n - 1),
                Loop::counted("j", 0, n - 1),
                Loop::counted("i", 0, n - 1),
            ],
            vec![
                ArrayRef::read(d, ijk(0, 0, 0)),
                ArrayRef::read(x, ijk(0, 0, -1)),
                ArrayRef::read(x, ijk(0, 0, 0)),
                ArrayRef::write(x, ijk(0, 0, 0)),
            ],
        ));
        // Back substitution along k (reversed plane recurrence).
        let mut back_k = Loop::counted("k", 0, n - 2);
        back_k.step = -1;
        p.add_nest(LoopNest::new(
            "backward",
            vec![
                back_k,
                Loop::counted("j", 0, n - 1),
                Loop::counted("i", 0, n - 1),
            ],
            vec![
                ArrayRef::read(d, ijk(0, 0, 0)),
                ArrayRef::read(x, ijk(0, 0, 1)),
                ArrayRef::read(x, ijk(0, 0, 0)),
                ArrayRef::write(x, ijk(0, 0, 0)),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        let pts = (self.n as u64).pow(3);
        // 2 (rhs) + 2 (forward) + 2 (backward) per point.
        6 * pts
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n as f64;
        ws.fill3(0, |i, j, k| {
            ((i as f64 / n) * 2.0).sin() + (j as f64 / n) + 0.1 * k as f64 / n
        });
        // D holds precomputed stable elimination multipliers in (0, 0.5).
        ws.fill3(1, |i, j, k| 0.2 + 0.1 * (((i + j + k) % 3) as f64) / 3.0);
        ws.fill3(2, |_, _, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (f, dd, x) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let d = ws.data_mut();
        for k in 1..n - 1 {
            for j in 0..n {
                for i in 0..n {
                    st(
                        d,
                        x.at3(i, j, k),
                        0.5 * (ld(d, f.at3(i, j, k + 1)) - ld(d, f.at3(i, j, k - 1))),
                    );
                }
            }
        }
        for k in 1..n {
            for j in 0..n {
                for i in 0..n {
                    let v =
                        ld(d, x.at3(i, j, k)) - ld(d, dd.at3(i, j, k)) * ld(d, x.at3(i, j, k - 1));
                    st(d, x.at3(i, j, k), v);
                }
            }
        }
        for k in (0..n - 1).rev() {
            for j in 0..n {
                for i in 0..n {
                    let v =
                        ld(d, x.at3(i, j, k)) - ld(d, dd.at3(i, j, k)) * ld(d, x.at3(i, j, k + 1));
                    st(d, x.at3(i, j, k), v);
                }
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum3(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;
    use mlc_cache_sim::CacheConfig;
    use mlc_core::conflict::severe_self_conflicts;

    #[test]
    fn erle64_planes_are_two_l1_spans() {
        let k = Erle::new(64);
        let p = k.model();
        assert_eq!(p.arrays[0].strides()[2] * 8, 32 * 1024);
        let l1 = CacheConfig::direct_mapped(16 * 1024, 32);
        let layout = DataLayout::contiguous(&p.arrays);
        assert!(!severe_self_conflicts(&p, &layout, l1).is_empty());
    }

    #[test]
    fn backward_nest_has_negative_step() {
        let k = Erle::new(8);
        let p = k.model();
        assert_eq!(p.nests[2].loops[0].step, -1);
        // It still covers (n-1) * n * n iterations.
        assert_eq!(p.nests[2].const_iterations(), Some(7 * 8 * 8));
    }

    #[test]
    fn solver_is_deterministic_and_finite() {
        let k = Erle::new(8);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        k.sweep(&mut ws);
        let c = k.checksum(&ws);
        assert!(c.is_finite());
        assert_ne!(c, 0.0);
    }

    #[test]
    fn padding_does_not_change_results() {
        let k = Erle::new(8);
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[0, 32 * 1024, 64]);
        assert!(layouts_agree(&k, &a, &b, 2));
    }
}
