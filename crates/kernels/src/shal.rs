//! SHAL / SWIM — shallow-water weather model.
//!
//! `shal512` (Table 1's kernel) and SPEC95's `swim` are the same physics:
//! the classic shallow-water benchmark with thirteen N×N arrays and three
//! big sweeps per time step (CALC1: mass fluxes/vorticity/height, CALC2:
//! new velocity/pressure fields, CALC3: time smoothing). SPEC's swim runs
//! on a 513×513 grid; the kernel version uses N=512. Both are implemented
//! here over one parameterized core (interior sweeps; the original's
//! periodic-boundary copy loops are dropped — they touch O(N) data and do
//! not affect the conflict/reuse structure the paper studies).

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// Array order (model ids follow this order).
const NAMES: [&str; 13] = [
    "U", "V", "P", "UNEW", "VNEW", "PNEW", "UOLD", "VOLD", "POLD", "CU", "CV", "Z", "H",
];

// Nondimensionalized coefficients: the original SWIM constants with its
// physical grid spacing produce fields of order 1e5 whose repeated products
// overflow after a few dozen steps with synthetic initial data; these keep
// the same loop structure with O(1) fields stable over long timing runs.
const FSDX: f64 = 0.25;
const FSDY: f64 = 0.25;
const TDTS8: f64 = 0.05;
const TDTSDX: f64 = 0.05;
const TDTSDY: f64 = 0.05;
const ALPHA: f64 = 0.001;

/// Shared shallow-water kernel.
#[derive(Debug, Clone, Copy)]
pub struct Shallow {
    /// Problem size.
    pub n: usize,
    spec_flavor: bool,
}

impl Shallow {
    /// Table-1 kernel `shalN`.
    pub fn shal(n: usize) -> Self {
        assert!(n >= 4);
        Self {
            n,
            spec_flavor: false,
        }
    }

    /// SPEC95 `swim` (513×513 in the original; any n here).
    pub fn swim(n: usize) -> Self {
        assert!(n >= 4);
        Self {
            n,
            spec_flavor: true,
        }
    }
}

impl Kernel for Shallow {
    fn name(&self) -> String {
        if self.spec_flavor {
            "swim".to_string()
        } else {
            format!("shal{}", self.n)
        }
    }

    fn description(&self) -> &'static str {
        if self.spec_flavor {
            "Vector Shallow Water Model"
        } else {
            "Shallow Water Model"
        }
    }

    fn source_lines(&self) -> usize {
        if self.spec_flavor {
            429
        } else {
            227
        }
    }

    fn suite(&self) -> Suite {
        if self.spec_flavor {
            Suite::Spec95
        } else {
            Suite::Kernels
        }
    }

    fn model(&self) -> Program {
        let n = self.n;
        let mut p = Program::new(self.name());
        let ids: Vec<ArrayId> = NAMES
            .iter()
            .map(|nm| p.add_array(ArrayDecl::f64(*nm, vec![n, n])))
            .collect();
        let [u, v, pp, unew, vnew, pnew, uold, vold, pold, cu, cv, z, h] = [
            ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7], ids[8], ids[9],
            ids[10], ids[11], ids[12],
        ];
        let ij = |di: i64, dj: i64| vec![E::var_plus("i", di), E::var_plus("j", dj)];
        let loops = || {
            vec![
                Loop::counted("j", 1, n as i64 - 2),
                Loop::counted("i", 1, n as i64 - 2),
            ]
        };

        p.add_nest(LoopNest::new(
            "calc1",
            loops(),
            vec![
                ArrayRef::read(pp, ij(0, 0)),
                ArrayRef::read(pp, ij(-1, 0)),
                ArrayRef::read(u, ij(0, 0)),
                ArrayRef::write(cu, ij(0, 0)),
                ArrayRef::read(pp, ij(0, -1)),
                ArrayRef::read(v, ij(0, 0)),
                ArrayRef::write(cv, ij(0, 0)),
                ArrayRef::read(v, ij(-1, 0)),
                ArrayRef::read(u, ij(0, -1)),
                ArrayRef::read(pp, ij(-1, -1)),
                ArrayRef::write(z, ij(0, 0)),
                ArrayRef::read(u, ij(1, 0)),
                ArrayRef::read(v, ij(0, 1)),
                ArrayRef::write(h, ij(0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "calc2",
            loops(),
            vec![
                ArrayRef::read(uold, ij(0, 0)),
                ArrayRef::read(z, ij(0, 1)),
                ArrayRef::read(z, ij(0, 0)),
                ArrayRef::read(cv, ij(0, 1)),
                ArrayRef::read(cv, ij(-1, 1)),
                ArrayRef::read(cv, ij(-1, 0)),
                ArrayRef::read(cv, ij(0, 0)),
                ArrayRef::read(h, ij(0, 0)),
                ArrayRef::read(h, ij(-1, 0)),
                ArrayRef::write(unew, ij(0, 0)),
                ArrayRef::read(vold, ij(0, 0)),
                ArrayRef::read(z, ij(1, 0)),
                ArrayRef::read(cu, ij(1, 0)),
                ArrayRef::read(cu, ij(0, 0)),
                ArrayRef::read(cu, ij(1, -1)),
                ArrayRef::read(cu, ij(0, -1)),
                ArrayRef::read(h, ij(0, -1)),
                ArrayRef::write(vnew, ij(0, 0)),
                ArrayRef::read(pold, ij(0, 0)),
                ArrayRef::read(cu, ij(-1, 0)),
                ArrayRef::read(cv, ij(0, -1)),
                ArrayRef::write(pnew, ij(0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "calc3",
            loops(),
            vec![
                ArrayRef::read(u, ij(0, 0)),
                ArrayRef::read(unew, ij(0, 0)),
                ArrayRef::read(uold, ij(0, 0)),
                ArrayRef::write(uold, ij(0, 0)),
                ArrayRef::write(u, ij(0, 0)),
                ArrayRef::read(v, ij(0, 0)),
                ArrayRef::read(vnew, ij(0, 0)),
                ArrayRef::read(vold, ij(0, 0)),
                ArrayRef::write(vold, ij(0, 0)),
                ArrayRef::write(v, ij(0, 0)),
                ArrayRef::read(pp, ij(0, 0)),
                ArrayRef::read(pnew, ij(0, 0)),
                ArrayRef::read(pold, ij(0, 0)),
                ArrayRef::write(pold, ij(0, 0)),
                ArrayRef::write(pp, ij(0, 0)),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        // ~24 + ~26 + ~15 flops per interior point across the three sweeps.
        65 * (self.n as u64 - 2) * (self.n as u64 - 2)
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n as f64;
        for (id, _) in NAMES.iter().enumerate() {
            ws.fill2(id, |i, j| {
                let x = i as f64 / n;
                let y = j as f64 / n;
                match id {
                    2 | 5 | 8 => 2.0 + 0.1 * ((2.0 * x).sin() + (2.0 * y).cos()), // P fields
                    12 => 2.0,                                                    // H
                    _ => 0.1 * ((x * 3.0).sin() * (y * 2.0).cos()),
                }
            });
        }
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let m: Vec<_> = (0..13).map(|i| ws.mat(i)).collect();
        let (u, v, pp, unew, vnew, pnew, uold, vold, pold, cu, cv, z, h) = (
            m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7], m[8], m[9], m[10], m[11], m[12],
        );
        let d = ws.data_mut();
        // CALC1.
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                st(
                    d,
                    cu.at(i, j),
                    0.5 * (ld(d, pp.at(i, j)) + ld(d, pp.at(i - 1, j))) * ld(d, u.at(i, j)),
                );
                st(
                    d,
                    cv.at(i, j),
                    0.5 * (ld(d, pp.at(i, j)) + ld(d, pp.at(i, j - 1))) * ld(d, v.at(i, j)),
                );
                let denom = ld(d, pp.at(i - 1, j - 1))
                    + ld(d, pp.at(i, j - 1))
                    + ld(d, pp.at(i, j))
                    + ld(d, pp.at(i - 1, j));
                st(
                    d,
                    z.at(i, j),
                    (FSDX * (ld(d, v.at(i, j)) - ld(d, v.at(i - 1, j)))
                        - FSDY * (ld(d, u.at(i, j)) - ld(d, u.at(i, j - 1))))
                        / denom,
                );
                st(
                    d,
                    h.at(i, j),
                    ld(d, pp.at(i, j))
                        + 0.25
                            * (ld(d, u.at(i + 1, j)) * ld(d, u.at(i + 1, j))
                                + ld(d, u.at(i, j)) * ld(d, u.at(i, j))
                                + ld(d, v.at(i, j + 1)) * ld(d, v.at(i, j + 1))
                                + ld(d, v.at(i, j)) * ld(d, v.at(i, j))),
                );
            }
        }
        // CALC2.
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let cvsum = ld(d, cv.at(i, j + 1))
                    + ld(d, cv.at(i - 1, j + 1))
                    + ld(d, cv.at(i - 1, j))
                    + ld(d, cv.at(i, j));
                st(
                    d,
                    unew.at(i, j),
                    ld(d, uold.at(i, j))
                        + TDTS8 * (ld(d, z.at(i, j + 1)) + ld(d, z.at(i, j))) * cvsum
                        - TDTSDX * (ld(d, h.at(i, j)) - ld(d, h.at(i - 1, j))),
                );
                let cusum = ld(d, cu.at(i + 1, j))
                    + ld(d, cu.at(i, j))
                    + ld(d, cu.at(i + 1, j - 1))
                    + ld(d, cu.at(i, j - 1));
                st(
                    d,
                    vnew.at(i, j),
                    ld(d, vold.at(i, j))
                        - TDTS8 * (ld(d, z.at(i + 1, j)) + ld(d, z.at(i, j))) * cusum
                        - TDTSDY * (ld(d, h.at(i, j)) - ld(d, h.at(i, j - 1))),
                );
                st(
                    d,
                    pnew.at(i, j),
                    ld(d, pold.at(i, j))
                        - TDTSDX * (ld(d, cu.at(i, j)) - ld(d, cu.at(i - 1, j)))
                        - TDTSDY * (ld(d, cv.at(i, j)) - ld(d, cv.at(i, j - 1))),
                );
            }
        }
        // CALC3: time smoothing.
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let un = ld(d, unew.at(i, j));
                let vo = ld(d, u.at(i, j));
                st(
                    d,
                    uold.at(i, j),
                    vo + ALPHA * (un - 2.0 * vo + ld(d, uold.at(i, j))),
                );
                st(d, u.at(i, j), un);
                let vn = ld(d, vnew.at(i, j));
                let vv = ld(d, v.at(i, j));
                st(
                    d,
                    vold.at(i, j),
                    vv + ALPHA * (vn - 2.0 * vv + ld(d, vold.at(i, j))),
                );
                st(d, v.at(i, j), vn);
                let pn = ld(d, pnew.at(i, j));
                let pv = ld(d, pp.at(i, j));
                st(
                    d,
                    pold.at(i, j),
                    pv + ALPHA * (pn - 2.0 * pv + ld(d, pold.at(i, j))),
                );
                st(d, pp.at(i, j), pn);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(0) + ws.sum2(1) + ws.sum2(2) / 1e5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;

    #[test]
    fn model_validates() {
        let k = Shallow::shal(64);
        let p = k.model();
        p.validate().unwrap();
        assert_eq!(p.arrays.len(), 13);
        assert_eq!(p.nests.len(), 3);
    }

    #[test]
    fn names_and_suites() {
        assert_eq!(Shallow::shal(512).name(), "shal512");
        assert_eq!(Shallow::swim(512).name(), "swim");
        assert_eq!(Shallow::shal(512).suite(), Suite::Kernels);
        assert_eq!(Shallow::swim(512).suite(), Suite::Spec95);
    }

    #[test]
    fn sweep_is_stable_and_deterministic() {
        let k = Shallow::shal(24);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        for _ in 0..3 {
            k.sweep(&mut ws);
        }
        let c = k.checksum(&ws);
        assert!(c.is_finite());
        let mut ws2 = Workspace::contiguous(&p);
        k.init(&mut ws2);
        for _ in 0..3 {
            k.sweep(&mut ws2);
        }
        assert_eq!(c, k.checksum(&ws2));
    }

    #[test]
    fn long_runs_stay_bounded() {
        // The timing experiments run dozens of sweeps; the fields must not
        // blow up into infinities (which would distort FP timing).
        let k = Shallow::shal(32);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        for _ in 0..60 {
            k.sweep(&mut ws);
        }
        let c = k.checksum(&ws);
        assert!(c.is_finite(), "diverged: {c}");
        assert!(c.abs() < 1e9, "fields too large: {c}");
    }

    #[test]
    fn padding_does_not_change_results() {
        let k = Shallow::shal(20);
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let pads: Vec<u64> = (0..13).map(|i| (i as u64 % 5) * 64).collect();
        let b = DataLayout::with_pads(&p.arrays, &pads);
        assert!(layouts_agree(&k, &a, &b, 2));
    }

    #[test]
    fn column_group_reuse_present() {
        // CALC2 reads Z(i,j) and Z(i,j+1): one-column group reuse.
        let k = Shallow::shal(64);
        let p = k.model();
        let groups = mlc_model::reuse::uniformly_generated_sets(&p.nests[1], &p.arrays);
        let zg = groups.iter().find(|g| g.array == 11).unwrap();
        assert!(zg.members.len() >= 2);
    }
}
