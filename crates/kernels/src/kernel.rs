//! The kernel abstraction tying models to runnable code.

use crate::workspace::Workspace;
use mlc_model::Program;

/// Which Table-1 group a program belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// The eight scientific kernels.
    Kernels,
    /// NAS benchmarks (proxies).
    Nas,
    /// SPEC95 floating-point benchmarks (SWIM/TOMCATV full, rest proxies).
    Spec95,
}

impl Suite {
    /// Table-1 section heading.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Kernels => "KERNELS",
            Suite::Nas => "NAS BENCHMARKS",
            Suite::Spec95 => "SPEC95 BENCHMARKS",
        }
    }
}

/// A benchmark program: an analyzable loop-nest model plus a runnable
/// numeric sweep over a layout-controlled workspace.
pub trait Kernel {
    /// Program name as the paper's figures label it (e.g. `expl512`).
    fn name(&self) -> String;

    /// Table-1 description.
    fn description(&self) -> &'static str;

    /// Table-1 source line count of the original Fortran program.
    fn source_lines(&self) -> usize;

    /// Which suite it belongs to.
    fn suite(&self) -> Suite;

    /// The loop-nest model of one sweep / time step — what the padding
    /// algorithms analyze and the cache simulator runs.
    fn model(&self) -> Program;

    /// Floating-point operations per sweep (for MFLOPS reporting).
    fn flops(&self) -> u64;

    /// Initialize the workspace's arrays with the kernel's data.
    fn init(&self, ws: &mut Workspace);

    /// Execute one sweep / time step against the workspace.
    fn sweep(&self, ws: &mut Workspace);

    /// A deterministic checksum of the result state, used to verify that
    /// padded and unpadded layouts compute identical answers.
    fn checksum(&self, ws: &Workspace) -> f64;
}

/// Shared verification helper: run `sweeps` sweeps under two layouts and
/// compare checksums. Padding must never change results.
pub fn layouts_agree(
    kernel: &dyn Kernel,
    a: &mlc_model::DataLayout,
    b: &mlc_model::DataLayout,
    sweeps: usize,
) -> bool {
    let program = kernel.model();
    let mut wa = Workspace::new(&program, a);
    let mut wb = Workspace::new(&program, b);
    kernel.init(&mut wa);
    kernel.init(&mut wb);
    for _ in 0..sweeps {
        kernel.sweep(&mut wa);
        kernel.sweep(&mut wb);
    }
    let (ca, cb) = (kernel.checksum(&wa), kernel.checksum(&wb));
    let tol = 1e-9 * ca.abs().max(cb.abs()).max(1.0);
    (ca - cb).abs() <= tol
}
