//! Time-step tiling (Song & Li, PLDI '99 — the paper's Section 5 exception).
//!
//! "Song and Li recently extended tiling techniques to handle multiple loop
//! nests enclosed in a single time-step loop, allowing tiles to be
//! overlapped from different time steps. Because of the large amount of
//! data that must be held in cache spans many loop nests, the L1 cache is
//! unlikely to be sufficiently large for reasonable sized tiles. As a
//! result the tiling algorithm targets the L2 cache, completely bypassing
//! the L1 cache."
//!
//! This module builds both forms of a T-step Gauss–Seidel 2-D relaxation:
//! the plain sequence of T whole-grid sweeps, and the time-skewed tiled
//! version that processes `w` skewed columns for all T steps before moving
//! on. A tile's footprint is roughly `(w + T + 1)` grid *columns*, so with
//! 4 KB columns no useful tile fits the 16 KB L1 — the tile width must be
//! chosen against the L2 capacity, exactly the exception the paper notes.

use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// The 5-point in-place (Gauss–Seidel) update body at logical column
/// expression `j`, which keeps all time-skew dependences lexicographically
/// forward.
fn gs_body(a: ArrayId, j: &E) -> Vec<ArrayRef> {
    let ij = |di: i64, dj: i64| vec![E::var_plus("i", di), j.clone().plus(dj)];
    vec![
        ArrayRef::read(a, ij(-1, 0)),
        ArrayRef::read(a, ij(1, 0)),
        ArrayRef::read(a, ij(0, -1)),
        ArrayRef::read(a, ij(0, 1)),
        ArrayRef::read(a, ij(0, 0)),
        ArrayRef::write(a, ij(0, 0)),
    ]
}

/// T separate whole-grid sweeps (the untiled form: one nest per time step).
pub fn time_stepped_jacobi2d(n: usize, t_steps: usize) -> Program {
    assert!(n >= 4 && t_steps >= 1);
    let mut p = Program::new(format!("gs2d_{n}x{t_steps}"));
    let a = p.add_array(ArrayDecl::f64("A", vec![n, n]));
    for t in 0..t_steps {
        p.add_nest(LoopNest::new(
            format!("step{t}"),
            vec![
                Loop::counted("j", 1, n as i64 - 2),
                Loop::counted("i", 1, n as i64 - 2),
            ],
            gs_body(a, &E::var("j")),
        ));
    }
    debug_assert!(p.validate().is_ok());
    p
}

/// The time-skewed tiled form: skew columns by the time step (`jp = j + t`)
/// and tile the skewed axis by `w`:
///
/// ```text
/// for jj  = 1 .. (n-2)+(T-1) step w        // tile of skewed columns
///   for t = 0 .. T-1                       // all time steps inside a tile
///     for jp = max(jj, t+1) ..
///              min(jj+w-1, t+n-2)          // skewed column
///       for i = 1 .. n-2
///         A(i, jp-t) = f(A(i±1, jp-t), A(i, jp-t±1))
/// ```
///
/// Touches exactly the same multiset of addresses as
/// [`time_stepped_jacobi2d`] (property-checked in the tests), but a tile
/// keeps `w + T + 1` columns live across all T steps.
pub fn time_tiled_jacobi2d(n: usize, t_steps: usize, w: usize) -> Program {
    assert!(n >= 4 && t_steps >= 1 && w >= 1);
    let mut p = Program::new(format!("gs2d_tiled_{n}x{t_steps}w{w}"));
    let a = p.add_array(ArrayDecl::f64("A", vec![n, n]));
    let mut jj = Loop::counted("jj", 1, (n as i64 - 2) + (t_steps as i64 - 1));
    jj.step = w as i64;
    let t = Loop::counted("t", 0, t_steps as i64 - 1);
    let jp = Loop {
        var: "jp".into(),
        lowers: vec![E::var("jj"), E::var_plus("t", 1)],
        uppers: vec![
            E::var_plus("jj", w as i64 - 1),
            E::var_plus("t", n as i64 - 2),
        ],
        step: 1,
    };
    let i = Loop::counted("i", 1, n as i64 - 2);
    // Logical column j = jp - t.
    let j = E::var("jp").sub(&E::var("t"));
    p.add_nest(LoopNest::new("skewed", vec![jj, t, jp, i], gs_body(a, &j)));
    debug_assert!(p.validate().is_ok());
    p
}

/// The tile's data footprint in bytes: `w + T + 1` columns (the `w` skewed
/// columns slide back by one column per time step, plus the ±1 halo).
pub fn tile_footprint_bytes(n: usize, t_steps: usize, w: usize) -> usize {
    (w + t_steps + 1) * n * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache_sim::trace::RecordingSink;
    use mlc_model::trace_gen::generate;

    fn multiset(p: &Program) -> Vec<u64> {
        let l = DataLayout::contiguous(&p.arrays);
        let mut rec = RecordingSink::default();
        generate(p, &l, &mut rec);
        let mut v: Vec<u64> = rec.accesses.iter().map(|a| a.addr).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn tiled_touches_same_addresses_as_stepped() {
        for (n, t, w) in [(8usize, 3usize, 2usize), (10, 4, 3), (12, 2, 5), (8, 1, 1)] {
            let stepped = time_stepped_jacobi2d(n, t);
            let tiled = time_tiled_jacobi2d(n, t, w);
            assert_eq!(
                multiset(&stepped),
                multiset(&tiled),
                "mismatch at n={n}, T={t}, w={w}"
            );
        }
    }

    #[test]
    fn coupled_subscripts_are_conservatively_unanalyzable() {
        // The skewed nest's `jp - t` subscripts couple two loop variables;
        // the distance-vector analyzer correctly refuses such references
        // rather than guessing (legality of the skewed form is established
        // by construction — the skew is the textbook one — and by the
        // multiset equivalence test above).
        let p = time_tiled_jacobi2d(10, 3, 2);
        assert!(mlc_model::dependence::carried_distances(&p.nests[0]).is_err());
        // The unskewed per-step nests, by contrast, analyze fine.
        let stepped = time_stepped_jacobi2d(10, 3);
        let dists = mlc_model::dependence::carried_distances(&stepped.nests[0]).unwrap();
        for d in &dists {
            assert!(mlc_model::dependence::lex_sign(d) >= 0, "{d:?}");
        }
    }

    #[test]
    fn footprint_formula_matches_reality() {
        // Addresses touched by one tile span at most (w + T + 1) columns.
        let (n, t, w) = (16usize, 4usize, 3usize);
        let p = time_tiled_jacobi2d(n, t, w);
        let l = DataLayout::contiguous(&p.arrays);
        // Trace only the first tile by shrinking the jj loop to one trip.
        let mut first_tile = p.clone();
        first_tile.nests[0].loops[0].uppers = vec![mlc_model::AffineExpr::constant(1)];
        let mut rec = RecordingSink::default();
        generate(&first_tile, &l, &mut rec);
        let min = rec.accesses.iter().map(|a| a.addr).min().unwrap();
        let max = rec.accesses.iter().map(|a| a.addr).max().unwrap();
        assert!(
            (max - min) as usize <= tile_footprint_bytes(n, t, w),
            "span {} > formula {}",
            max - min,
            tile_footprint_bytes(n, t, w)
        );
    }

    #[test]
    fn reference_counts_match() {
        let (n, t) = (20usize, 5usize);
        let stepped = time_stepped_jacobi2d(n, t);
        let expect = (t as u64) * 18 * 18 * 6;
        assert_eq!(stepped.const_references(), Some(expect));
        let tiled = time_tiled_jacobi2d(n, t, 4);
        let l = DataLayout::contiguous(&tiled.arrays);
        let mut c = mlc_cache_sim::trace::CountingSink::default();
        assert_eq!(generate(&tiled, &l, &mut c), expect);
    }
}
