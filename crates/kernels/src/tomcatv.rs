//! TOMCATV — vectorized mesh generation (SPEC95).
//!
//! The classic thermal mesh-generation benchmark: seven N×N arrays
//! (coordinates `X Y`, residuals `RX RY`, tridiagonal workspace `AA DD D`).
//! One iteration computes residuals from 9-point stencils of the
//! coordinates, forward-eliminates a line tridiagonal system along `j`,
//! back-substitutes, and adds the correction to the coordinates — four
//! loop nests with column-direction group reuse, which is why the paper
//! uses it in the GROUPPAD experiments (Figure 10).

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// TOMCATV on an `n`×`n` mesh (513 in SPEC; 512 here by default).
#[derive(Debug, Clone, Copy)]
pub struct Tomcatv {
    /// Problem size.
    pub n: usize,
}

impl Tomcatv {
    /// Construct the kernel at the given problem size.
    pub fn new(n: usize) -> Self {
        assert!(n >= 4);
        Self { n }
    }
}

const REL: f64 = 0.98;

impl Kernel for Tomcatv {
    fn name(&self) -> String {
        "tomcatv".to_string()
    }

    fn description(&self) -> &'static str {
        "Mesh Generation"
    }

    fn source_lines(&self) -> usize {
        190
    }

    fn suite(&self) -> Suite {
        Suite::Spec95
    }

    fn model(&self) -> Program {
        let n = self.n as i64;
        let mut p = Program::new(self.name());
        let x = p.add_array(ArrayDecl::f64("X", vec![self.n, self.n]));
        let y = p.add_array(ArrayDecl::f64("Y", vec![self.n, self.n]));
        let rx = p.add_array(ArrayDecl::f64("RX", vec![self.n, self.n]));
        let ry = p.add_array(ArrayDecl::f64("RY", vec![self.n, self.n]));
        let aa = p.add_array(ArrayDecl::f64("AA", vec![self.n, self.n]));
        let dd = p.add_array(ArrayDecl::f64("DD", vec![self.n, self.n]));
        let ij = |di: i64, dj: i64| vec![E::var_plus("i", di), E::var_plus("j", dj)];
        let interior = || vec![Loop::counted("j", 1, n - 2), Loop::counted("i", 1, n - 2)];

        // Residuals from 9-point stencils of X and Y.
        p.add_nest(LoopNest::new(
            "residual",
            interior(),
            vec![
                ArrayRef::read(x, ij(-1, 0)),
                ArrayRef::read(x, ij(1, 0)),
                ArrayRef::read(x, ij(0, -1)),
                ArrayRef::read(x, ij(0, 1)),
                ArrayRef::read(x, ij(-1, -1)),
                ArrayRef::read(x, ij(1, 1)),
                ArrayRef::read(x, ij(0, 0)),
                ArrayRef::write(rx, ij(0, 0)),
                ArrayRef::read(y, ij(-1, 0)),
                ArrayRef::read(y, ij(1, 0)),
                ArrayRef::read(y, ij(0, -1)),
                ArrayRef::read(y, ij(0, 1)),
                ArrayRef::read(y, ij(-1, 1)),
                ArrayRef::read(y, ij(1, -1)),
                ArrayRef::read(y, ij(0, 0)),
                ArrayRef::write(ry, ij(0, 0)),
                ArrayRef::write(aa, ij(0, 0)),
                ArrayRef::write(dd, ij(0, 0)),
            ],
        ));
        // Forward elimination of the line tridiagonal systems along j.
        p.add_nest(LoopNest::new(
            "forward",
            vec![Loop::counted("j", 2, n - 2), Loop::counted("i", 1, n - 2)],
            vec![
                ArrayRef::read(aa, ij(0, 0)),
                ArrayRef::read(dd, ij(0, -1)),
                ArrayRef::read(dd, ij(0, 0)),
                ArrayRef::write(dd, ij(0, 0)),
                ArrayRef::read(rx, ij(0, -1)),
                ArrayRef::read(rx, ij(0, 0)),
                ArrayRef::write(rx, ij(0, 0)),
                ArrayRef::read(ry, ij(0, -1)),
                ArrayRef::read(ry, ij(0, 0)),
                ArrayRef::write(ry, ij(0, 0)),
            ],
        ));
        // Back substitution along j (reversed).
        let mut back_j = Loop::counted("j", 1, n - 3);
        back_j.step = -1;
        p.add_nest(LoopNest::new(
            "backward",
            vec![back_j, Loop::counted("i", 1, n - 2)],
            vec![
                ArrayRef::read(dd, ij(0, 0)),
                ArrayRef::read(rx, ij(0, 1)),
                ArrayRef::read(rx, ij(0, 0)),
                ArrayRef::write(rx, ij(0, 0)),
                ArrayRef::read(ry, ij(0, 1)),
                ArrayRef::read(ry, ij(0, 0)),
                ArrayRef::write(ry, ij(0, 0)),
            ],
        ));
        // Add corrections.
        p.add_nest(LoopNest::new(
            "update",
            interior(),
            vec![
                ArrayRef::read(rx, ij(0, 0)),
                ArrayRef::read(x, ij(0, 0)),
                ArrayRef::write(x, ij(0, 0)),
                ArrayRef::read(ry, ij(0, 0)),
                ArrayRef::read(y, ij(0, 0)),
                ArrayRef::write(y, ij(0, 0)),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        // ~20 (residual) + 12 (forward) + 6 (backward) + 4 (update).
        42 * (self.n as u64 - 2) * (self.n as u64 - 2)
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n as f64;
        // A gently skewed mesh.
        ws.fill2(0, |i, j| i as f64 + 0.1 * (j as f64 / n).sin());
        ws.fill2(1, |i, j| j as f64 + 0.1 * (i as f64 / n).cos());
        for id in 2..6 {
            ws.fill2(id, |_, _| 0.0);
        }
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (x, y, rx, ry, aa, dd) = (
            ws.mat(0),
            ws.mat(1),
            ws.mat(2),
            ws.mat(3),
            ws.mat(4),
            ws.mat(5),
        );
        let d = ws.data_mut();
        // Residuals.
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let xxi = 0.5 * (ld(d, x.at(i + 1, j)) - ld(d, x.at(i - 1, j)));
                let xeta = 0.5 * (ld(d, x.at(i, j + 1)) - ld(d, x.at(i, j - 1)));
                let yxi = 0.5 * (ld(d, y.at(i + 1, j)) - ld(d, y.at(i - 1, j)));
                let yeta = 0.5 * (ld(d, y.at(i, j + 1)) - ld(d, y.at(i, j - 1)));
                let a = xeta * xeta + yeta * yeta;
                let b = xxi * xxi + yxi * yxi;
                let pxx = ld(d, x.at(i + 1, j)) - 2.0 * ld(d, x.at(i, j)) + ld(d, x.at(i - 1, j));
                let qxx = ld(d, x.at(i, j + 1)) - 2.0 * ld(d, x.at(i, j)) + ld(d, x.at(i, j - 1));
                let pyy = ld(d, y.at(i + 1, j)) - 2.0 * ld(d, y.at(i, j)) + ld(d, y.at(i - 1, j));
                let qyy = ld(d, y.at(i, j + 1)) - 2.0 * ld(d, y.at(i, j)) + ld(d, y.at(i, j - 1));
                let cross_x = 0.25
                    * (ld(d, x.at(i + 1, j + 1))
                        - ld(d, x.at(i - 1, j - 1))
                        - ld(d, x.at(i + 1, j - 1))
                        + ld(d, x.at(i - 1, j + 1)));
                let cross_y = 0.25
                    * (ld(d, y.at(i + 1, j + 1))
                        - ld(d, y.at(i - 1, j - 1))
                        - ld(d, y.at(i + 1, j - 1))
                        + ld(d, y.at(i - 1, j + 1)));
                st(d, rx.at(i, j), a * pxx + b * qxx - 0.5 * cross_x);
                st(d, ry.at(i, j), a * pyy + b * qyy - 0.5 * cross_y);
                st(d, aa.at(i, j), -b);
                st(d, dd.at(i, j), b + b + a * REL);
            }
        }
        // Forward elimination along j.
        for j in 2..n - 1 {
            for i in 1..n - 1 {
                let r = ld(d, aa.at(i, j)) / ld(d, dd.at(i, j - 1));
                let nd = ld(d, dd.at(i, j)) - r * ld(d, aa.at(i, j));
                st(d, dd.at(i, j), nd);
                let nrx = ld(d, rx.at(i, j)) - r * ld(d, rx.at(i, j - 1));
                st(d, rx.at(i, j), nrx);
                let nry = ld(d, ry.at(i, j)) - r * ld(d, ry.at(i, j - 1));
                st(d, ry.at(i, j), nry);
            }
        }
        // Back substitution.
        for j in (1..n - 2).rev() {
            for i in 1..n - 1 {
                let f = ld(d, aa.at(i, j + 1)) / ld(d, dd.at(i, j));
                let nrx = (ld(d, rx.at(i, j)) - f * ld(d, rx.at(i, j + 1))) / ld(d, dd.at(i, j));
                st(d, rx.at(i, j), nrx);
                let nry = (ld(d, ry.at(i, j)) - f * ld(d, ry.at(i, j + 1))) / ld(d, dd.at(i, j));
                st(d, ry.at(i, j), nry);
            }
        }
        // Add corrections.
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let nx = ld(d, x.at(i, j)) + REL * 1e-3 * ld(d, rx.at(i, j));
                st(d, x.at(i, j), nx);
                let ny = ld(d, y.at(i, j)) + REL * 1e-3 * ld(d, ry.at(i, j));
                st(d, y.at(i, j), ny);
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(0) + ws.sum2(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;

    #[test]
    fn model_has_four_nests_and_validates() {
        let k = Tomcatv::new(64);
        let p = k.model();
        p.validate().unwrap();
        assert_eq!(p.nests.len(), 4);
        assert_eq!(p.arrays.len(), 6);
        assert_eq!(p.nests[2].loops[0].step, -1);
    }

    #[test]
    fn sweep_finite_and_deterministic() {
        let k = Tomcatv::new(20);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        for _ in 0..3 {
            k.sweep(&mut ws);
        }
        let c = k.checksum(&ws);
        assert!(c.is_finite());
        let mut ws2 = Workspace::contiguous(&p);
        k.init(&mut ws2);
        for _ in 0..3 {
            k.sweep(&mut ws2);
        }
        assert_eq!(c, k.checksum(&ws2));
    }

    #[test]
    fn padding_does_not_change_results() {
        let k = Tomcatv::new(16);
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[0, 64, 128, 64, 0, 256]);
        assert!(layouts_agree(&k, &a, &b, 2));
    }

    #[test]
    fn forward_nest_has_j_column_reuse() {
        let k = Tomcatv::new(64);
        let p = k.model();
        let groups = mlc_model::reuse::uniformly_generated_sets(&p.nests[1], &p.arrays);
        // DD(i,j-1)/DD(i,j), RX pair, RY pair: three multi-member groups.
        let multi = groups.iter().filter(|g| g.members.len() >= 2).count();
        assert!(multi >= 3);
    }
}
