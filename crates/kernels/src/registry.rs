//! Kernel registry: name → kernel, in Table-1 order.

use crate::adi::Adi;
use crate::dot::Dot;
use crate::erle::Erle;
use crate::expl::Expl;
use crate::irr::Irr;
use crate::jacobi::Jacobi;
use crate::kernel::Kernel;
use crate::linpackd::Linpackd;
use crate::nas::{Buk, Cgm, Embar, Fftpde, Mgrid, Pde3d, PdeFlavor};
use crate::shal::Shallow;
use crate::spec::{Apsi, Fpppp, Hydro2d, Su2cor, Turb3d, Wave5};
use crate::tomcatv::Tomcatv;

/// Every Table-1 program at its paper-scale configuration, in table order
/// (kernels, then NAS, then SPEC95).
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        // KERNELS
        Box::new(Adi::new(32)),
        Box::new(Dot::kb(512)),
        Box::new(Erle::new(64)),
        Box::new(Expl::new(512)),
        Box::new(Irr::paper()),
        Box::new(Jacobi::new(512)),
        Box::new(Linpackd::new(256)),
        Box::new(Shallow::shal(512)),
        // NAS
        Box::new(Pde3d::paper(PdeFlavor::Appbt)),
        Box::new(Pde3d::paper(PdeFlavor::Applu)),
        Box::new(Pde3d::paper(PdeFlavor::Appsp)),
        Box::new(Buk::paper()),
        Box::new(Cgm::paper()),
        Box::new(Embar::paper()),
        Box::new(Fftpde::paper()),
        Box::new(Mgrid::paper()),
        // SPEC95
        Box::new(Apsi::paper()),
        Box::new(Fpppp::paper()),
        Box::new(Hydro2d::paper()),
        Box::new(Su2cor::paper()),
        Box::new(Shallow::swim(512)),
        Box::new(Tomcatv::new(512)),
        Box::new(Turb3d::paper()),
        Box::new(Wave5::paper()),
    ]
}

/// Find a kernel by its figure label (e.g. `"expl512"`, `"swim"`).
pub fn kernel_by_name(name: &str) -> Option<Box<dyn Kernel>> {
    all_kernels().into_iter().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Suite;

    #[test]
    fn registry_covers_table_1() {
        let ks = all_kernels();
        assert_eq!(ks.len(), 24);
        let kernels = ks.iter().filter(|k| k.suite() == Suite::Kernels).count();
        let nas = ks.iter().filter(|k| k.suite() == Suite::Nas).count();
        let spec = ks.iter().filter(|k| k.suite() == Suite::Spec95).count();
        assert_eq!((kernels, nas, spec), (8, 8, 8));
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let ks = all_kernels();
        let mut names: Vec<String> = ks.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 24);
        assert!(kernel_by_name("expl512").is_some());
        assert!(kernel_by_name("tomcatv").is_some());
        assert!(kernel_by_name("nonesuch").is_none());
    }

    #[test]
    fn every_model_validates() {
        for k in all_kernels() {
            k.model()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        }
    }

    #[test]
    fn paper_figure_names_present() {
        // Names as they appear on the Figure 9 axes.
        for name in [
            "adi32",
            "dot512",
            "erle64",
            "expl512",
            "irr500K",
            "jacobi512",
            "linpackd",
            "shal512",
            "appbt",
            "applu",
            "appsp",
            "buk",
            "cgm",
            "embar",
            "fftpde",
            "mgrid",
            "apsi",
            "fpppp",
            "hydro2d",
            "su2cor",
            "swim",
            "tomcatv",
            "turb3d",
            "wave5",
        ] {
            assert!(kernel_by_name(name).is_some(), "missing kernel {name}");
        }
    }
}
