//! IRR — relaxation over an irregular mesh.
//!
//! Edge-based relaxation: for every edge `e`, the value at its first
//! endpoint is nudged toward the value at its second. The gathers through
//! the index arrays are not affine, so the loop-nest model covers the
//! streaming arrays (edge weights and the two endpoint-index streams) plus
//! the node-sweep normalization pass; the gathered endpoint accesses are
//! what padding *cannot* help with, which is exactly why IRR shows small
//! padding benefits in the paper's Figure 9 (see DESIGN.md §4).
//!
//! The mesh is a deterministic pseudo-random graph (xorshift-seeded) so
//! runs are reproducible without carrying a mesh file.

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// Irregular relaxation with `nodes` vertices and `edges` edges.
#[derive(Debug, Clone, Copy)]
pub struct Irr {
    /// Nodes.
    pub nodes: usize,
    /// Edges.
    pub edges: usize,
}

impl Irr {
    /// The paper's IRR500K: 500 K edges over 100 K nodes.
    pub fn paper() -> Self {
        Self {
            nodes: 100_000,
            edges: 500_000,
        }
    }

    /// A small instance for tests.
    pub fn small(nodes: usize, edges: usize) -> Self {
        Self { nodes, edges }
    }
}

#[inline]
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl Kernel for Irr {
    fn name(&self) -> String {
        if self.edges == 500_000 {
            "irr500K".to_string()
        } else {
            format!("irr{}e", self.edges)
        }
    }

    fn description(&self) -> &'static str {
        "Relaxation over Irregular Mesh"
    }

    fn source_lines(&self) -> usize {
        196
    }

    fn suite(&self) -> Suite {
        Suite::Kernels
    }

    fn model(&self) -> Program {
        let mut p = Program::new(self.name());
        let x = p.add_array(ArrayDecl::f64("X", vec![self.nodes]));
        let y = p.add_array(ArrayDecl::f64("Y", vec![self.nodes]));
        let w = p.add_array(ArrayDecl::f64("W", vec![self.edges]));
        let n1 = p.add_array(ArrayDecl::f64("N1", vec![self.edges]));
        let n2 = p.add_array(ArrayDecl::f64("N2", vec![self.edges]));
        // Edge sweep: the three streams (weights + endpoint indices) are
        // affine; the X/Y gathers they drive are not and are omitted.
        p.add_nest(LoopNest::new(
            "edge_sweep",
            vec![Loop::counted("e", 0, self.edges as i64 - 1)],
            vec![
                ArrayRef::read(w, vec![E::var("e")]),
                ArrayRef::read(n1, vec![E::var("e")]),
                ArrayRef::read(n2, vec![E::var("e")]),
            ],
        ));
        // Node sweep: Y(i) = X(i) (copy into the next iteration's field).
        p.add_nest(LoopNest::new(
            "node_sweep",
            vec![Loop::counted("i", 0, self.nodes as i64 - 1)],
            vec![
                ArrayRef::read(x, vec![E::var("i")]),
                ArrayRef::write(y, vec![E::var("i")]),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        3 * self.edges as u64 + self.nodes as u64
    }

    fn init(&self, ws: &mut Workspace) {
        let nodes = self.nodes as u64;
        ws.fill1(0, |i| ((i * 37) % 101) as f64 / 101.0);
        ws.fill1(1, |i| ((i * 17) % 89) as f64 / 89.0);
        ws.fill1(2, |e| 0.01 + ((e * 13) % 7) as f64 * 0.001);
        let mut s1 = 0x1234_5678_dead_beefu64;
        let ends1: Vec<f64> = (0..self.edges)
            .map(|_| (xorshift(&mut s1) % nodes) as f64)
            .collect();
        ws.fill1(3, |e| ends1[e]);
        let mut s2 = 0x0fed_cba9_8765_4321u64;
        let ends2: Vec<f64> = (0..self.edges)
            .map(|_| (xorshift(&mut s2) % nodes) as f64)
            .collect();
        ws.fill1(4, |e| ends2[e]);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let (x, y, w, n1, n2) = (ws.mat(0), ws.mat(1), ws.mat(2), ws.mat(3), ws.mat(4));
        let edges = self.edges;
        let nodes = self.nodes;
        let d = ws.data_mut();
        for e in 0..edges {
            let a = ld(d, n1.at1(e)) as usize;
            let b = ld(d, n2.at1(e)) as usize;
            let we = ld(d, w.at1(e));
            let delta = we * (ld(d, y.at1(b)) - ld(d, y.at1(a)));
            let v = ld(d, x.at1(a)) + delta;
            st(d, x.at1(a), v);
        }
        for i in 0..nodes {
            let v = ld(d, x.at1(i));
            st(d, y.at1(i), v);
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum1(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;

    #[test]
    fn relaxation_conserves_reasonable_range() {
        let k = Irr::small(200, 1000);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        let before = k.checksum(&ws);
        for _ in 0..5 {
            k.sweep(&mut ws);
        }
        let after = k.checksum(&ws);
        assert!(after.is_finite());
        // Small relaxation weights: values stay the same order of magnitude.
        assert!((after - before).abs() < before.abs() + 100.0);
    }

    #[test]
    fn indices_stay_in_bounds() {
        let k = Irr::small(64, 512);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        for e in 0..k.edges {
            let a = ws.data()[ws.mat(3).at1(e)] as usize;
            let b = ws.data()[ws.mat(4).at1(e)] as usize;
            assert!(a < k.nodes && b < k.nodes);
        }
    }

    #[test]
    fn padding_does_not_change_results() {
        let k = Irr::small(100, 400);
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[64, 0, 128, 32, 32]);
        assert!(layouts_agree(&k, &a, &b, 2));
    }

    #[test]
    fn paper_instance_is_500k() {
        let k = Irr::paper();
        assert_eq!(k.name(), "irr500K");
        assert_eq!(k.model().arrays.len(), 5);
    }
}
