//! DOT — vector dot product (Livermore loop 3).
//!
//! Two long vectors streamed in lockstep: the minimal program exhibiting
//! severe cross-variable conflicts when the vectors are a cache-size
//! multiple apart. The paper's footnote about DOT is reproduced by the
//! fig09 experiment: padding by 64 bytes (MULTILVLPAD's `Lmax`) instead of
//! 32 affects how many outstanding misses the memory system can overlap.

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// Dot product of two `n`-element vectors (`Q` holds the scalar result).
#[derive(Debug, Clone, Copy)]
pub struct Dot {
    /// Problem size.
    pub n: usize,
    /// Figure label ("dot512" uses 512 KiB vectors, n = 65536).
    pub label_kb: usize,
}

impl Dot {
    /// `Dot` with vectors of `kb` KiB each (the paper's dot256 / dot512).
    pub fn kb(kb: usize) -> Self {
        Self {
            n: kb * 1024 / 8,
            label_kb: kb,
        }
    }
}

impl Kernel for Dot {
    fn name(&self) -> String {
        format!("dot{}", self.label_kb)
    }

    fn description(&self) -> &'static str {
        "Vector Dot Product (Liv3)"
    }

    fn source_lines(&self) -> usize {
        32
    }

    fn suite(&self) -> Suite {
        Suite::Kernels
    }

    fn model(&self) -> Program {
        let mut p = Program::new(self.name());
        let x = p.add_array(ArrayDecl::f64("X", vec![self.n]));
        let y = p.add_array(ArrayDecl::f64("Y", vec![self.n]));
        let _q = p.add_array(ArrayDecl::f64("Q", vec![8])); // result slot (one line)
        p.add_nest(LoopNest::new(
            "dot",
            vec![Loop::counted("i", 0, self.n as i64 - 1)],
            vec![
                ArrayRef::read(x, vec![E::var("i")]),
                ArrayRef::read(y, vec![E::var("i")]),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        2 * self.n as u64
    }

    fn init(&self, ws: &mut Workspace) {
        ws.fill1(0, |i| 1.0 + (i % 7) as f64 * 0.125);
        ws.fill1(1, |i| 2.0 - (i % 5) as f64 * 0.25);
        ws.fill1(2, |_| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let (x, y, q) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let n = self.n;
        let d = ws.data_mut();
        let mut acc = 0.0;
        for i in 0..n {
            acc += ld(d, x.at1(i)) * ld(d, y.at1(i));
        }
        st(d, q.at1(0), acc);
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.data()[ws.mat(2).at1(0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;

    #[test]
    fn computes_the_dot_product() {
        let k = Dot {
            n: 100,
            label_kb: 0,
        };
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        ws.fill1(0, |_| 2.0);
        ws.fill1(1, |_| 3.0);
        k.sweep(&mut ws);
        assert_eq!(k.checksum(&ws), 600.0);
    }

    #[test]
    fn dot512_vectors_are_cache_size_multiples() {
        // 512 KiB vectors: multiples of both the 16 KiB L1 and 512 KiB L2 —
        // the pathological layout the padding experiments need.
        let k = Dot::kb(512);
        assert_eq!(k.n * 8 % (16 * 1024), 0);
        assert_eq!(k.n * 8 % (512 * 1024), 0);
        assert_eq!(k.name(), "dot512");
    }

    #[test]
    fn padding_does_not_change_results() {
        let k = Dot {
            n: 256,
            label_kb: 2,
        };
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[0, 64, 32]);
        assert!(layouts_agree(&k, &a, &b, 1));
    }
}
