//! ADI — alternating-direction implicit integration fragment (Livermore 8).
//!
//! Three 3-D arrays swept with first-order recurrences along each
//! direction. The geometry (32×64×32 doubles) makes each k-plane exactly
//! 16 KiB, so the `U(i,j,k)` / `U(i,j,k-1)` pair severely self-conflicts on
//! the UltraSparc L1 — this is why Section 6.1 applies intra-variable
//! padding to ADI32 before the inter-variable passes.

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// ADI fragment on an `n`×`2n`×`n` grid (default n=32: 16 KiB planes).
#[derive(Debug, Clone, Copy)]
pub struct Adi {
    /// Problem size.
    pub n: usize,
}

impl Adi {
    /// Construct the kernel at the given problem size.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        Self { n }
    }

    fn dims(&self) -> (usize, usize, usize) {
        (self.n, 2 * self.n, self.n)
    }
}

impl Kernel for Adi {
    fn name(&self) -> String {
        format!("adi{}", self.n)
    }

    fn description(&self) -> &'static str {
        "2D ADI Integration Fragment (Liv8)"
    }

    fn source_lines(&self) -> usize {
        63
    }

    fn suite(&self) -> Suite {
        Suite::Kernels
    }

    fn model(&self) -> Program {
        let (n1, n2, n3) = self.dims();
        let mut p = Program::new(self.name());
        let u = p.add_array(ArrayDecl::f64("U", vec![n1, n2, n3]));
        let v = p.add_array(ArrayDecl::f64("V", vec![n1, n2, n3]));
        let w = p.add_array(ArrayDecl::f64("W", vec![n1, n2, n3]));
        let ijk = |di: i64, dj: i64, dk: i64| {
            vec![
                E::var_plus("i", di),
                E::var_plus("j", dj),
                E::var_plus("k", dk),
            ]
        };
        // k-sweep: recurrence across planes (the self-conflicting one).
        p.add_nest(LoopNest::new(
            "k_sweep",
            vec![
                Loop::counted("k", 1, n3 as i64 - 1),
                Loop::counted("j", 0, n2 as i64 - 1),
                Loop::counted("i", 0, n1 as i64 - 1),
            ],
            vec![
                ArrayRef::read(u, ijk(0, 0, -1)),
                ArrayRef::read(v, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(0, 0, 0)),
                ArrayRef::write(u, ijk(0, 0, 0)),
                ArrayRef::read(w, ijk(0, 0, -1)),
                ArrayRef::read(w, ijk(0, 0, 0)),
                ArrayRef::write(w, ijk(0, 0, 0)),
            ],
        ));
        // j-sweep.
        p.add_nest(LoopNest::new(
            "j_sweep",
            vec![
                Loop::counted("k", 0, n3 as i64 - 1),
                Loop::counted("j", 1, n2 as i64 - 1),
                Loop::counted("i", 0, n1 as i64 - 1),
            ],
            vec![
                ArrayRef::read(u, ijk(0, -1, 0)),
                ArrayRef::read(v, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(0, 0, 0)),
                ArrayRef::write(u, ijk(0, 0, 0)),
            ],
        ));
        // i-sweep.
        p.add_nest(LoopNest::new(
            "i_sweep",
            vec![
                Loop::counted("k", 0, n3 as i64 - 1),
                Loop::counted("j", 0, n2 as i64 - 1),
                Loop::counted("i", 1, n1 as i64 - 1),
            ],
            vec![
                ArrayRef::read(u, ijk(-1, 0, 0)),
                ArrayRef::read(v, ijk(0, 0, 0)),
                ArrayRef::read(u, ijk(0, 0, 0)),
                ArrayRef::write(u, ijk(0, 0, 0)),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        let (n1, n2, n3) = self.dims();
        let pts = (n1 * n2 * n3) as u64;
        // ~4 flops in the k-sweep (two recurrences), 2 each in j/i sweeps.
        8 * pts
    }

    fn init(&self, ws: &mut Workspace) {
        for id in 0..3 {
            ws.fill3(id, |i, j, k| {
                0.5 + 0.1 * (((i + 3 * j + 7 * k + id) % 13) as f64) / 13.0
            });
        }
    }

    fn sweep(&self, ws: &mut Workspace) {
        let (n1, n2, n3) = self.dims();
        let (u, v, w) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let d = ws.data_mut();
        for k in 1..n3 {
            for j in 0..n2 {
                for i in 0..n1 {
                    let f = ld(d, v.at3(i, j, k));
                    let un = ld(d, u.at3(i, j, k)) - f * ld(d, u.at3(i, j, k - 1));
                    st(d, u.at3(i, j, k), un);
                    let wn = ld(d, w.at3(i, j, k)) - f * ld(d, w.at3(i, j, k - 1));
                    st(d, w.at3(i, j, k), wn);
                }
            }
        }
        for k in 0..n3 {
            for j in 1..n2 {
                for i in 0..n1 {
                    let f = ld(d, v.at3(i, j, k));
                    let un = ld(d, u.at3(i, j, k)) - f * ld(d, u.at3(i, j - 1, k));
                    st(d, u.at3(i, j, k), un);
                }
            }
        }
        for k in 0..n3 {
            for j in 0..n2 {
                for i in 1..n1 {
                    let f = ld(d, v.at3(i, j, k));
                    let un = ld(d, u.at3(i, j, k)) - f * ld(d, u.at3(i - 1, j, k));
                    st(d, u.at3(i, j, k), un);
                }
            }
        }
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum3(0) + ws.sum3(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;
    use mlc_cache_sim::CacheConfig;
    use mlc_core::conflict::severe_self_conflicts;
    use mlc_core::intra_pad::intra_pad;

    #[test]
    fn adi32_planes_are_one_l1_span() {
        let k = Adi::new(32);
        let p = k.model();
        // Plane stride: 32 * 64 * 8 bytes = 16 KiB = the L1 cache.
        assert_eq!(p.arrays[0].strides()[2] * 8, 16 * 1024);
    }

    #[test]
    fn self_conflicts_exist_and_intra_pad_fixes_them() {
        let k = Adi::new(32);
        let p = k.model();
        let l1 = CacheConfig::direct_mapped(16 * 1024, 32);
        let layout = DataLayout::contiguous(&p.arrays);
        assert!(!severe_self_conflicts(&p, &layout, l1).is_empty());
        let fixed = intra_pad(&p, l1);
        let layout2 = DataLayout::contiguous(&fixed.program.arrays);
        assert!(severe_self_conflicts(&fixed.program, &layout2, l1).is_empty());
    }

    #[test]
    fn sweep_deterministic_and_finite() {
        let k = Adi::new(8);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        for _ in 0..3 {
            k.sweep(&mut ws);
        }
        assert!(k.checksum(&ws).is_finite());
    }

    #[test]
    fn padding_does_not_change_results() {
        let k = Adi::new(8);
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[96, 0, 160]);
        assert!(layouts_agree(&k, &a, &b, 2));
    }

    #[test]
    fn intra_padded_kernel_still_correct() {
        let k = Adi::new(8);
        let p = k.model();
        let mut padded = p.clone();
        padded.arrays[0].set_dim_pad(0, 4);
        let mut wa = Workspace::contiguous(&p);
        let mut wb = Workspace::contiguous(&padded);
        k.init(&mut wa);
        k.init(&mut wb);
        k.sweep(&mut wa);
        k.sweep(&mut wb);
        assert!((k.checksum(&wa) - k.checksum(&wb)).abs() < 1e-12);
    }
}
