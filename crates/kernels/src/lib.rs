#![warn(missing_docs)]

//! # mlc-kernels — the paper's benchmark programs, runnable
//!
//! Table 1 of the paper lists the programs its experiments use: eight
//! scientific kernels, eight NAS benchmarks and eight SPEC95 floating-point
//! codes. This crate provides each of them in two coupled forms:
//!
//! 1. a **loop-nest model** ([`Kernel::model`]) — the `mlc-model` program
//!    the padding/fusion/tiling algorithms analyze and the cache simulator
//!    executes (one representative time step / sweep);
//! 2. a **runnable numeric implementation** ([`Kernel::sweep`]) over a
//!    [`workspace::Workspace`] whose array placement is controlled by a
//!    [`mlc_model::DataLayout`] — so the padding decisions change the real
//!    addresses the timing experiments touch, exactly as the SUIF passes
//!    changed the Fortran programs' layouts.
//!
//! The kernels (ADI, DOT, ERLE, EXPL/Livermore-18, IRR, JACOBI, LINPACKD,
//! SHAL) plus SPEC's SWIM and TOMCATV are implemented essentially in full;
//! the remaining NAS and SPEC codes are *proxies* reproducing the dominant
//! array-access structure of each original (see DESIGN.md §4 for the
//! substitution argument). Tiled matrix multiplication (the paper's
//! Figure 8) lives in [`matmul`].

pub mod adi;
pub mod dot;
pub mod erle;
pub mod expl;
pub mod irr;
pub mod jacobi;
pub mod kernel;
pub mod linpackd;
pub mod matmul;
pub mod nas;
pub mod registry;
pub mod shal;
pub mod spec;
pub mod timeskew;
pub mod tomcatv;
pub mod workspace;

pub use kernel::{Kernel, Suite};
pub use registry::{all_kernels, kernel_by_name};
pub use workspace::{ld, st, Mat, Workspace};
