//! Layout-backed numeric workspaces.
//!
//! All of a kernel's arrays live in **one** `Vec<f64>` at the byte offsets a
//! [`DataLayout`] assigns — the runnable twin of the paper's "single global
//! variable containing all of the variables to be optimized" (Section 6.1).
//! Changing the layout (PAD, GROUPPAD, …) therefore changes the actual
//! addresses the kernels touch, which is what makes the timing experiments
//! meaningful.
//!
//! Indexing goes through [`Mat`], a tiny copyable descriptor (offset +
//! strides). Hot loops use the [`ld`]/[`st`] accessors: bounds-checked in
//! debug builds, unchecked in release — the usual HPC-Rust compromise so
//! that bounds checks do not distort the measurements the paper's timing
//! comparisons rely on.

use mlc_model::{ArrayId, DataLayout, Program};

/// Copyable array descriptor: element offset plus column-major strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mat {
    /// Offset of element (0,0,..) in the workspace, in elements.
    pub off: usize,
    /// Stride between consecutive columns (allocated leading dimension).
    pub ld: usize,
    /// Stride between consecutive planes (3-D arrays; `0` otherwise).
    pub ld2: usize,
    /// Logical extents (up to 3 dims; unused dims are 1).
    pub dims: [usize; 3],
}

impl Mat {
    /// Linear index of a 1-D element.
    #[inline(always)]
    pub fn at1(&self, i: usize) -> usize {
        self.off + i
    }

    /// Linear index of a 2-D element (column-major: `i` is unit stride).
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> usize {
        self.off + i + j * self.ld
    }

    /// Linear index of a 3-D element.
    #[inline(always)]
    pub fn at3(&self, i: usize, j: usize, k: usize) -> usize {
        self.off + i + j * self.ld + k * self.ld2
    }

    /// Logical rows (first dimension).
    #[inline]
    pub fn rows(&self) -> usize {
        self.dims[0]
    }

    /// Logical columns (second dimension).
    #[inline]
    pub fn cols(&self) -> usize {
        self.dims[1]
    }
}

/// Load element `i`, unchecked in release builds.
#[inline(always)]
pub fn ld(d: &[f64], i: usize) -> f64 {
    debug_assert!(i < d.len(), "load out of bounds: {i} >= {}", d.len());
    unsafe { *d.get_unchecked(i) }
}

/// Store element `i`, unchecked in release builds.
#[inline(always)]
pub fn st(d: &mut [f64], i: usize, v: f64) {
    debug_assert!(i < d.len(), "store out of bounds: {i} >= {}", d.len());
    unsafe {
        *d.get_unchecked_mut(i) = v;
    }
}

/// One flat buffer holding every array of a program at layout-chosen
/// offsets.
#[derive(Debug, Clone)]
pub struct Workspace {
    data: Vec<f64>,
    mats: Vec<Mat>,
}

impl Workspace {
    /// Allocate a zeroed workspace for `program` under `layout`.
    ///
    /// # Panics
    /// Panics if any array is not 8-byte (`f64`) typed or its base address
    /// is not 8-byte aligned (every padding algorithm in `mlc-core` pads in
    /// cache-line multiples, so this holds by construction).
    pub fn new(program: &Program, layout: &DataLayout) -> Self {
        assert_eq!(layout.bases.len(), program.arrays.len());
        let mats = program
            .arrays
            .iter()
            .zip(&layout.bases)
            .map(|(a, &base)| {
                assert_eq!(a.elem_size, 8, "workspace arrays must be f64 ({})", a.name);
                assert_eq!(base % 8, 0, "unaligned base for {}", a.name);
                let strides = a.strides();
                let mut dims = [1usize; 3];
                for (d, &x) in a.dims.iter().take(3).enumerate() {
                    dims[d] = x;
                }
                assert!(
                    a.rank() <= 3,
                    "workspace supports up to 3-D arrays ({})",
                    a.name
                );
                Mat {
                    off: (base / 8) as usize,
                    ld: strides.get(1).copied().unwrap_or(0) as usize,
                    ld2: strides.get(2).copied().unwrap_or(0) as usize,
                    dims,
                }
            })
            .collect();
        let elems = (layout.total_size as usize).div_ceil(8);
        Self {
            data: vec![0.0; elems],
            mats,
        }
    }

    /// Workspace under the contiguous (unpadded) layout.
    pub fn contiguous(program: &Program) -> Self {
        Self::new(program, &DataLayout::contiguous(&program.arrays))
    }

    /// Descriptor for an array.
    #[inline]
    pub fn mat(&self, id: ArrayId) -> Mat {
        self.mats[id]
    }

    /// The backing buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The backing buffer, mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Total elements allocated (including padding).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff no elements are allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Fill a 2-D array: `f(i, j)` per logical element (padding untouched).
    pub fn fill2(&mut self, id: ArrayId, f: impl Fn(usize, usize) -> f64) {
        let m = self.mats[id];
        for j in 0..m.dims[1] {
            for i in 0..m.dims[0] {
                let idx = m.at(i, j);
                self.data[idx] = f(i, j);
            }
        }
    }

    /// Fill a 1-D array.
    pub fn fill1(&mut self, id: ArrayId, f: impl Fn(usize) -> f64) {
        let m = self.mats[id];
        for i in 0..m.dims[0] {
            let idx = m.at1(i);
            self.data[idx] = f(i);
        }
    }

    /// Fill a 3-D array.
    pub fn fill3(&mut self, id: ArrayId, f: impl Fn(usize, usize, usize) -> f64) {
        let m = self.mats[id];
        for k in 0..m.dims[2] {
            for j in 0..m.dims[1] {
                for i in 0..m.dims[0] {
                    let idx = m.at3(i, j, k);
                    self.data[idx] = f(i, j, k);
                }
            }
        }
    }

    /// Sum of a 2-D array's logical elements (checksum helper).
    pub fn sum2(&self, id: ArrayId) -> f64 {
        let m = self.mats[id];
        let mut s = 0.0;
        for j in 0..m.dims[1] {
            for i in 0..m.dims[0] {
                s += self.data[m.at(i, j)];
            }
        }
        s
    }

    /// Sum of a 1-D array's logical elements.
    pub fn sum1(&self, id: ArrayId) -> f64 {
        let m = self.mats[id];
        (0..m.dims[0]).map(|i| self.data[m.at1(i)]).sum()
    }

    /// Sum of a 3-D array's logical elements.
    pub fn sum3(&self, id: ArrayId) -> f64 {
        let m = self.mats[id];
        let mut s = 0.0;
        for k in 0..m.dims[2] {
            for j in 0..m.dims[1] {
                for i in 0..m.dims[0] {
                    s += self.data[m.at3(i, j, k)];
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_model::prelude::*;

    fn two_array_program() -> Program {
        let mut p = Program::new("t");
        p.add_array(ArrayDecl::f64("A", vec![4, 3]));
        p.add_array(ArrayDecl::f64("B", vec![5]));
        p
    }

    #[test]
    fn contiguous_offsets() {
        let p = two_array_program();
        let ws = Workspace::contiguous(&p);
        assert_eq!(ws.mat(0).off, 0);
        assert_eq!(ws.mat(0).ld, 4);
        assert_eq!(ws.mat(1).off, 12);
        assert_eq!(ws.len(), 17);
    }

    #[test]
    fn padded_layout_moves_offsets() {
        let p = two_array_program();
        let l = DataLayout::with_pads(&p.arrays, &[32, 64]); // bytes
        let ws = Workspace::new(&p, &l);
        assert_eq!(ws.mat(0).off, 4);
        assert_eq!(ws.mat(1).off, 4 + 12 + 8);
        assert_eq!(ws.len(), 4 + 12 + 8 + 5);
    }

    #[test]
    fn intra_pad_changes_ld() {
        let mut p = two_array_program();
        p.arrays[0].set_dim_pad(0, 2);
        let ws = Workspace::contiguous(&p);
        assert_eq!(ws.mat(0).ld, 6);
        assert_eq!(ws.mat(0).dims, [4, 3, 1]);
    }

    #[test]
    fn fill_and_sum_roundtrip() {
        let p = two_array_program();
        let mut ws = Workspace::contiguous(&p);
        ws.fill2(0, |i, j| (i + 10 * j) as f64);
        ws.fill1(1, |i| i as f64);
        assert_eq!(ws.sum1(1), 10.0);
        // Σ (i + 10j) over 4x3 = Σi * 3 + 10 Σj * 4 = 6*3 + 10*3*4 = 138.
        assert_eq!(ws.sum2(0), 138.0);
        let m = ws.mat(0);
        assert_eq!(ws.data()[m.at(2, 1)], 12.0);
    }

    #[test]
    fn fill_skips_padding() {
        let mut p = two_array_program();
        p.arrays[0].set_dim_pad(0, 2);
        let mut ws = Workspace::contiguous(&p);
        ws.fill2(0, |_, _| 1.0);
        // 12 logical elements set; the 2-element pads after each column stay 0.
        assert_eq!(ws.sum2(0), 12.0);
        assert_eq!(ws.data().iter().filter(|&&x| x != 0.0).count(), 12);
    }

    #[test]
    fn three_d_mats() {
        let mut p = Program::new("t3");
        p.add_array(ArrayDecl::f64("V", vec![2, 3, 4]));
        let mut ws = Workspace::contiguous(&p);
        ws.fill3(0, |i, j, k| (i + 2 * j + 6 * k) as f64);
        let m = ws.mat(0);
        assert_eq!(m.ld, 2);
        assert_eq!(m.ld2, 6);
        assert_eq!(ws.data()[m.at3(1, 2, 3)], (1 + 4 + 18) as f64);
        assert_eq!(ws.sum3(0), (0..24).sum::<usize>() as f64);
    }

    #[test]
    fn ld_st_roundtrip() {
        let mut d = vec![0.0; 8];
        st(&mut d, 3, 7.5);
        assert_eq!(ld(&d, 3), 7.5);
    }

    #[test]
    #[should_panic(expected = "unaligned base")]
    fn rejects_unaligned_layout() {
        let p = two_array_program();
        let l = DataLayout::with_pads(&p.arrays, &[4, 0]);
        Workspace::new(&p, &l);
    }
}
