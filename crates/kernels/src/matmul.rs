//! Matrix multiplication — untiled and tiled (the paper's Figure 8).
//!
//! ```text
//! do KK=1,N,W            // W = tile width
//!   do II=1,N,H          // H = tile height
//!     do J=1,N
//!       do K=KK,min(KK+W-1,N)
//!         do I=II,min(II+H-1,N)
//!           C(I,J) = C(I,J) + A(I,K)*B(K,J)
//! ```
//!
//! Reference `A(I,K)` sees an H×W tile per `J` iteration; Figure 13 times
//! this code with L1-, 2×L1-, 4×L1- and L2-sized tiles chosen by
//! `mlc_core::tiling::select_tile`.

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Mat, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;
use mlc_model::transform::tile;

/// Square matmul `C += A*B` of size `n`.
#[derive(Debug, Clone, Copy)]
pub struct Matmul {
    /// Problem size.
    pub n: usize,
}

impl Matmul {
    /// Construct the kernel at the given problem size.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self { n }
    }

    /// The untiled J-K-I loop-nest model.
    pub fn base_model(&self) -> Program {
        let n = self.n;
        let mut p = Program::new(format!("matmul{n}"));
        let a = p.add_array(ArrayDecl::f64("A", vec![n, n]));
        let b = p.add_array(ArrayDecl::f64("B", vec![n, n]));
        let c = p.add_array(ArrayDecl::f64("C", vec![n, n]));
        let nn = n as i64 - 1;
        p.add_nest(LoopNest::new(
            "mm",
            vec![
                Loop::counted("J", 0, nn),
                Loop::counted("K", 0, nn),
                Loop::counted("I", 0, nn),
            ],
            vec![
                ArrayRef::read(a, vec![E::var("I"), E::var("K")]),
                ArrayRef::read(b, vec![E::var("K"), E::var("J")]),
                ArrayRef::read(c, vec![E::var("I"), E::var("J")]),
                ArrayRef::write(c, vec![E::var("I"), E::var("J")]),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    /// The Figure-8 tiled model: tiles of height `h` (over I) and width `w`
    /// (over K).
    pub fn tiled_model(&self, h: u64, w: u64) -> Program {
        let mut p = self.base_model();
        // Levels in the J-K-I nest: K = 1, I = 2. Spec order (K first) puts
        // KK outermost then II, matching the paper's listing.
        p.nests[0] = tile(&p.nests[0], &[(1, w), (2, h)]).expect("tiling matmul is always legal");
        p
    }
}

/// The numeric tiled matmul matching the Figure-8 loop structure exactly.
pub fn matmul_tiled(d: &mut [f64], a: Mat, b: Mat, c: Mat, n: usize, h: usize, w: usize) {
    let mut kk = 0;
    while kk < n {
        let kend = (kk + w).min(n);
        let mut ii = 0;
        while ii < n {
            let iend = (ii + h).min(n);
            for j in 0..n {
                for k in kk..kend {
                    let bkj = ld(d, b.at(k, j));
                    for i in ii..iend {
                        let v = ld(d, c.at(i, j)) + ld(d, a.at(i, k)) * bkj;
                        st(d, c.at(i, j), v);
                    }
                }
            }
            ii = iend;
        }
        kk = kend;
    }
}

/// Tiled matmul with the A tile **copied to a contiguous buffer** — the
/// alternative to tile-size selection that Section 5 lists ("avoiding
/// self-interference conflict misses within each tile using techniques such
/// as tile size selection, intra-variable padding, and copying tiles to
/// contiguous buffers"). Copying makes any tile shape self-interference-
/// free at the cost of the copy traffic, so capacity-sized square tiles
/// become usable even when `euc` would reject them.
///
/// `buf` is the reusable tile buffer; it is resized to `h*w` as needed.
#[allow(clippy::too_many_arguments)] // the Fortran-style flat-argument convention of the other variants
pub fn matmul_tiled_copy(
    d: &mut [f64],
    a: Mat,
    b: Mat,
    c: Mat,
    n: usize,
    h: usize,
    w: usize,
    buf: &mut Vec<f64>,
) {
    buf.resize(h * w, 0.0);
    let mut kk = 0;
    while kk < n {
        let kend = (kk + w).min(n);
        let mut ii = 0;
        while ii < n {
            let iend = (ii + h).min(n);
            let th = iend - ii;
            // Copy the A tile, column-major with leading dimension th.
            for k in kk..kend {
                for i in ii..iend {
                    buf[(i - ii) + (k - kk) * th] = ld(d, a.at(i, k));
                }
            }
            for j in 0..n {
                for k in kk..kend {
                    let bkj = ld(d, b.at(k, j));
                    let col = (k - kk) * th;
                    for i in ii..iend {
                        let v = ld(d, c.at(i, j)) + buf[col + (i - ii)] * bkj;
                        st(d, c.at(i, j), v);
                    }
                }
            }
            ii = iend;
        }
        kk = kend;
    }
}

/// Plain (untiled) J-K-I matmul.
pub fn matmul_untiled(d: &mut [f64], a: Mat, b: Mat, c: Mat, n: usize) {
    for j in 0..n {
        for k in 0..n {
            let bkj = ld(d, b.at(k, j));
            for i in 0..n {
                let v = ld(d, c.at(i, j)) + ld(d, a.at(i, k)) * bkj;
                st(d, c.at(i, j), v);
            }
        }
    }
}

impl Kernel for Matmul {
    fn name(&self) -> String {
        format!("matmul{}", self.n)
    }

    fn description(&self) -> &'static str {
        "Dense Matrix Multiplication"
    }

    fn source_lines(&self) -> usize {
        20
    }

    fn suite(&self) -> Suite {
        Suite::Kernels
    }

    fn model(&self) -> Program {
        self.base_model()
    }

    fn flops(&self) -> u64 {
        2 * (self.n as u64).pow(3)
    }

    fn init(&self, ws: &mut Workspace) {
        ws.fill2(0, |i, j| ((i * 7 + j * 3) % 16) as f64 * 0.0625);
        ws.fill2(1, |i, j| ((i * 5 + j * 11) % 16) as f64 * 0.0625 - 0.5);
        ws.fill2(2, |_, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let (a, b, c) = (ws.mat(0), ws.mat(1), ws.mat(2));
        matmul_untiled(ws.data_mut(), a, b, c, self.n);
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(
        n: usize,
        av: &dyn Fn(usize, usize) -> f64,
        bv: &dyn Fn(usize, usize) -> f64,
    ) -> Vec<f64> {
        let mut c = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += av(i, k) * bv(k, j);
                }
                c[i + j * n] = s;
            }
        }
        c
    }

    #[test]
    fn tiled_equals_untiled_equals_naive() {
        let n = 23;
        let m = Matmul::new(n);
        let p = m.base_model();
        let av = |i: usize, k: usize| (i + 2 * k) as f64 * 0.125;
        let bv = |k: usize, j: usize| (3 * k) as f64 - j as f64;
        let reference = naive(n, &av, &bv);

        for (h, w) in [(n, n), (4, 4), (5, 7), (1, 1), (23, 3)] {
            let mut ws = Workspace::contiguous(&p);
            ws.fill2(0, av);
            ws.fill2(1, bv);
            let (a, b, c) = (ws.mat(0), ws.mat(1), ws.mat(2));
            matmul_tiled(ws.data_mut(), a, b, c, n, h, w);
            for j in 0..n {
                for i in 0..n {
                    let got = ws.data()[c.at(i, j)];
                    assert!(
                        (got - reference[i + j * n]).abs() < 1e-9,
                        "tile {h}x{w}, C({i},{j}) = {got} != {}",
                        reference[i + j * n]
                    );
                }
            }
        }
    }

    #[test]
    fn copy_tiled_matches_naive() {
        let n = 19;
        let av = |i: usize, k: usize| ((i * 3 + k) % 7) as f64 - 3.0;
        let bv = |k: usize, j: usize| ((k + 2 * j) % 5) as f64 * 0.5;
        let reference = naive(n, &av, &bv);
        let m = Matmul::new(n);
        let p = m.base_model();
        let mut buf = Vec::new();
        for (h, w) in [(4usize, 6usize), (19, 19), (1, 19), (7, 3)] {
            let mut ws = Workspace::contiguous(&p);
            ws.fill2(0, av);
            ws.fill2(1, bv);
            let (a, b, c) = (ws.mat(0), ws.mat(1), ws.mat(2));
            matmul_tiled_copy(ws.data_mut(), a, b, c, n, h, w, &mut buf);
            for j in 0..n {
                for i in 0..n {
                    assert!(
                        (ws.data()[c.at(i, j)] - reference[i + j * n]).abs() < 1e-9,
                        "copy tile {h}x{w} wrong at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn copy_buffer_is_reused_across_calls() {
        let n = 8;
        let m = Matmul::new(n);
        let p = m.base_model();
        let mut ws = Workspace::contiguous(&p);
        m.init(&mut ws);
        let (a, b, c) = (ws.mat(0), ws.mat(1), ws.mat(2));
        let mut buf = Vec::new();
        matmul_tiled_copy(ws.data_mut(), a, b, c, n, 4, 4, &mut buf);
        let cap = buf.capacity();
        matmul_tiled_copy(ws.data_mut(), a, b, c, n, 4, 4, &mut buf);
        assert_eq!(buf.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn tiled_model_matches_figure8_order() {
        let m = Matmul::new(12);
        let p = m.tiled_model(3, 4);
        let vars = p.nests[0].loop_vars();
        assert_eq!(vars, vec!["KK", "II", "J", "K", "I"]);
    }

    #[test]
    fn tiled_model_access_count_matches_untiled() {
        let m = Matmul::new(10);
        let base = m.base_model();
        let tiled = m.tiled_model(3, 4);
        assert_eq!(base.const_references(), Some(4 * 1000));
        // Tiled bounds are min-bounds: count by generation.
        let l = DataLayout::contiguous(&tiled.arrays);
        let mut c = mlc_cache_sim::trace::CountingSink::default();
        mlc_model::trace_gen::generate(&tiled, &l, &mut c);
        assert_eq!(c.total, 4000);
    }

    #[test]
    fn padded_layout_gives_same_product() {
        let n = 16;
        let m = Matmul::new(n);
        let p = m.base_model();
        let l = DataLayout::with_pads(&p.arrays, &[64, 128, 192]);
        let mut ws = Workspace::new(&p, &l);
        m.init(&mut ws);
        m.sweep(&mut ws);
        let padded = m.checksum(&ws);
        let mut ws2 = Workspace::contiguous(&p);
        m.init(&mut ws2);
        m.sweep(&mut ws2);
        assert_eq!(padded, m.checksum(&ws2));
    }

    #[test]
    fn intra_padded_ld_works_in_tiled_code() {
        // eucPad-style column padding must flow through Mat::ld.
        let n = 12;
        let m = Matmul::new(n);
        let mut p = m.base_model();
        for id in 0..3 {
            p.arrays[id].set_dim_pad(0, 4);
        }
        let mut ws = Workspace::contiguous(&p);
        m.init(&mut ws);
        let (a, b, c) = (ws.mat(0), ws.mat(1), ws.mat(2));
        assert_eq!(a.ld, 16);
        matmul_tiled(ws.data_mut(), a, b, c, n, 5, 6);
        let unpadded = {
            let p2 = m.base_model();
            let mut w2 = Workspace::contiguous(&p2);
            m.init(&mut w2);
            m.sweep(&mut w2);
            m.checksum(&w2)
        };
        assert!((ws.sum2(2) - unpadded).abs() < 1e-9);
    }
}
