//! JACOBI — 2-D Jacobi iteration with convergence test.
//!
//! Two N×N arrays: a five-point relaxation sweep writing `B` from `A`,
//! then a copy-back sweep (which also accumulates the convergence norm in
//! the real code). Used in the paper's Figures 9 and 10 as `jacobi512`.

use crate::kernel::{Kernel, Suite};
use crate::workspace::{ld, st, Workspace};
use mlc_model::expr::AffineExpr as E;
use mlc_model::prelude::*;

/// Jacobi relaxation on an `n`×`n` grid.
#[derive(Debug, Clone, Copy)]
pub struct Jacobi {
    /// Problem size.
    pub n: usize,
}

impl Jacobi {
    /// Construct the kernel at the given problem size.
    pub fn new(n: usize) -> Self {
        assert!(n >= 4);
        Self { n }
    }
}

impl Kernel for Jacobi {
    fn name(&self) -> String {
        format!("jacobi{}", self.n)
    }

    fn description(&self) -> &'static str {
        "2D Jacobi with Convergence Test"
    }

    fn source_lines(&self) -> usize {
        52
    }

    fn suite(&self) -> Suite {
        Suite::Kernels
    }

    fn model(&self) -> Program {
        let n = self.n;
        let mut p = Program::new(self.name());
        let a = p.add_array(ArrayDecl::f64("A", vec![n, n]));
        let b = p.add_array(ArrayDecl::f64("B", vec![n, n]));
        let ij = |di: i64, dj: i64| vec![E::var_plus("i", di), E::var_plus("j", dj)];
        let loops = || {
            vec![
                Loop::counted("j", 1, n as i64 - 2),
                Loop::counted("i", 1, n as i64 - 2),
            ]
        };
        p.add_nest(LoopNest::new(
            "relax",
            loops(),
            vec![
                ArrayRef::read(a, ij(-1, 0)),
                ArrayRef::read(a, ij(1, 0)),
                ArrayRef::read(a, ij(0, -1)),
                ArrayRef::read(a, ij(0, 1)),
                ArrayRef::write(b, ij(0, 0)),
            ],
        ));
        p.add_nest(LoopNest::new(
            "copyback",
            loops(),
            vec![
                ArrayRef::read(b, ij(0, 0)),
                ArrayRef::read(a, ij(0, 0)),
                ArrayRef::write(a, ij(0, 0)),
            ],
        ));
        debug_assert!(p.validate().is_ok());
        p
    }

    fn flops(&self) -> u64 {
        // 4 (relax) + 2 (norm) per interior point.
        6 * (self.n as u64 - 2) * (self.n as u64 - 2)
    }

    fn init(&self, ws: &mut Workspace) {
        let n = self.n;
        ws.fill2(0, |i, j| {
            if i == 0 || j == 0 || i == n - 1 || j == n - 1 {
                100.0
            } else {
                0.0
            }
        });
        ws.fill2(1, |_, _| 0.0);
    }

    fn sweep(&self, ws: &mut Workspace) {
        let n = self.n;
        let (a, b) = (ws.mat(0), ws.mat(1));
        let d = ws.data_mut();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let v = 0.25
                    * (ld(d, a.at(i - 1, j))
                        + ld(d, a.at(i + 1, j))
                        + ld(d, a.at(i, j - 1))
                        + ld(d, a.at(i, j + 1)));
                st(d, b.at(i, j), v);
            }
        }
        let mut norm = 0.0;
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let v = ld(d, b.at(i, j));
                norm += (v - ld(d, a.at(i, j))).abs();
                st(d, a.at(i, j), v);
            }
        }
        // The convergence value is consumed by the driver in the original;
        // fold it into the corner ghost cell so it is part of the state.
        let corner = b.at(0, 0);
        st(d, corner, norm);
    }

    fn checksum(&self, ws: &Workspace) -> f64 {
        ws.sum2(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layouts_agree;

    #[test]
    fn model_validates() {
        let k = Jacobi::new(64);
        let p = k.model();
        p.validate().unwrap();
        assert_eq!(p.nests.len(), 2);
    }

    #[test]
    fn relaxation_converges_toward_boundary_value() {
        let k = Jacobi::new(16);
        let p = k.model();
        let mut ws = Workspace::contiguous(&p);
        k.init(&mut ws);
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            k.sweep(&mut ws);
            let norm = ws.data()[ws.mat(1).at(0, 0)];
            assert!(
                norm <= last + 1e-9,
                "residual must not grow: {norm} > {last}"
            );
            last = norm;
        }
        // Interior heads toward 100.
        let a = ws.mat(0);
        let center = ws.data()[a.at(8, 8)];
        assert!(center > 10.0, "center = {center}");
    }

    #[test]
    fn padding_does_not_change_results() {
        let k = Jacobi::new(20);
        let p = k.model();
        let a = DataLayout::contiguous(&p.arrays);
        let b = DataLayout::with_pads(&p.arrays, &[32, 16384]);
        assert!(layouts_agree(&k, &a, &b, 4));
    }
}
