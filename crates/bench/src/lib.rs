//! Criterion benchmark crate — see `benches/` for the benchmark targets
//! mirroring the paper's timing experiments.
