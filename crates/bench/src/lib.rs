//! A tiny self-contained benchmark harness.
//!
//! The bench targets in `benches/` mirror the paper's timing experiments
//! (Figures 9, 10 and 13 plus optimizer/simulator throughput). They were
//! written against Criterion's API; this module provides the small subset
//! they use — `Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput` and the `criterion_group!`/
//! `criterion_main!` macros — with no external dependencies, keeping the
//! workspace buildable offline. Timings are wall-clock per-iteration
//! means over a handful of samples; good enough to compare layouts, not a
//! statistics suite.
//!
//! ```text
//! cargo bench -p mlc-bench --bench simulator
//! ```
//!
//! Passing `--test` after `--` (Criterion's smoke-test convention, used by
//! the CI bench job) switches to quick mode: every benchmark runs a single
//! iteration for a single sample, verifying the bench bodies execute
//! without spending bench-grade time.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Per-sample floor: iterate each sample at least this long.
const SAMPLE_BUDGET_NS: u128 = 10_000_000; // 10 ms

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (array references, flops, …) processed per iteration.
    Elements(u64),
}

/// A two-part benchmark id, rendered `label/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function label and a parameter value.
    pub fn new(label: impl Display, param: impl Display) -> Self {
        Self {
            name: format!("{label}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_string(),
        }
    }
}

/// Runs the measurement loop for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples_wanted: usize,
    quick: bool,
    /// Mean ns/iter of each sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(samples_wanted: usize, quick: bool) -> Self {
        Self {
            samples_wanted,
            quick,
            samples: Vec::new(),
        }
    }

    /// Time `f`, recording per-iteration wall time. Calibrates the
    /// iteration count so each sample runs ≥ 10 ms, then takes the
    /// configured number of samples. In quick (`--test`) mode: one
    /// iteration, one sample.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        if self.quick {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_nanos() as f64);
            return;
        }
        black_box(f()); // warm caches and lazily-initialized state
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1);
        let iters = (SAMPLE_BUDGET_NS / once_ns).clamp(1, 1_000_000) as u64;
        for _ in 0..self.samples_wanted {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            self.samples.push(elapsed as f64 / iters as f64);
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    fn min_ns(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(full_name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.samples.is_empty() {
        println!("{full_name}: no samples");
        return;
    }
    let mean = b.mean_ns();
    let mut line = format!(
        "{full_name}: {}/iter (min {})",
        human_time(mean),
        human_time(b.min_ns())
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let eps = n as f64 / (mean / 1e9);
        line.push_str(&format!(", {:.1} Melem/s", eps / 1e6));
    }
    println!("{line}");
}

/// Top-level harness state; one per process.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    /// Reads the process arguments: `--test` (Criterion's smoke-test
    /// convention, as in `cargo bench ... -- --test`) selects quick mode.
    fn default() -> Self {
        Self {
            quick: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
            quick: self.quick,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one(name, 10, self.quick, None, f);
    }
}

/// A named group sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    quick: bool,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark (min 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.sample_size,
            self.quick,
            self.throughput,
            f,
        );
    }

    /// Run one benchmark with an input value (mirrors Criterion's API; the
    /// input is passed straight through).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

fn run_one(
    full_name: &str,
    sample_size: usize,
    quick: bool,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(sample_size, quick);
    f(&mut b);
    report(full_name, &b, throughput);
}

/// Collect benchmark functions into a runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point invoking each `criterion_group!` runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(3, false);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.mean_ns() > 0.0);
        assert!(b.min_ns() <= b.mean_ns());
    }

    #[test]
    fn quick_mode_runs_each_body_exactly_once() {
        let mut b = Bencher::new(10, true);
        let mut calls = 0u64;
        b.iter(|| {
            calls += 1;
            calls
        });
        assert_eq!(calls, 1, "--test mode must not loop the body");
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn ids_render_label_slash_param() {
        let id = BenchmarkId::new("pad", "expl512");
        assert_eq!(id.name, "pad/expl512");
        let id: BenchmarkId = "plain".into();
        assert_eq!(id.name, "plain");
    }

    #[test]
    fn human_time_picks_units() {
        assert_eq!(human_time(500.0), "500 ns");
        assert_eq!(human_time(1500.0), "1.500 µs");
        assert_eq!(human_time(2.5e6), "2.500 ms");
        assert_eq!(human_time(3.0e9), "3.000 s");
    }
}
