//! Compile-time cost of the optimization algorithms themselves: the paper
//! argues these passes are cheap enough for a production compiler.
//!
//! ```text
//! cargo bench -p mlc-bench --bench optimizer
//! ```

use mlc_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlc_cache_sim::HierarchyConfig;
use mlc_core::fusion::fusion_profit;
use mlc_core::group_pad::{group_pad, group_pad_multi};
use mlc_core::pad::{multilvl_pad, pad};
use mlc_core::search::{set_fast_search, FAST_SEARCH_TEST_LOCK};
use mlc_core::tiling::{select_tile, TilePolicy};
use mlc_core::MissCosts;
use mlc_kernels::kernel_by_name;
#[allow(unused_imports)]
use mlc_kernels::Kernel;
use mlc_model::program::figure2_example;

fn bench_optimizer(c: &mut Criterion) {
    let h = HierarchyConfig::ultrasparc_i();
    let mut g = c.benchmark_group("optimizer");

    for name in ["expl512", "shal512"] {
        let k = kernel_by_name(name).unwrap();
        let p = k.model();
        g.bench_with_input(BenchmarkId::new("pad", name), &(), |b, _| {
            b.iter(|| pad(&p, h.l1()));
        });
        g.bench_with_input(BenchmarkId::new("multilvl_pad", name), &(), |b, _| {
            b.iter(|| multilvl_pad(&p, &h));
        });
        g.bench_with_input(BenchmarkId::new("group_pad", name), &(), |b, _| {
            b.iter(|| group_pad(&p, h.l1()));
        });
        // A/B of the two interchangeable GROUPPAD engines (they produce
        // bitwise-identical layouts; only the time differs).
        let _guard = FAST_SEARCH_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_fast_search(true);
        g.bench_with_input(
            BenchmarkId::new("group_pad_multi_fast", name),
            &(),
            |b, _| {
                b.iter(|| group_pad_multi(&p, &h).unwrap());
            },
        );
        set_fast_search(false);
        g.bench_with_input(
            BenchmarkId::new("group_pad_multi_scalar", name),
            &(),
            |b, _| {
                b.iter(|| group_pad_multi(&p, &h).unwrap());
            },
        );
        set_fast_search(true);
        drop(_guard);
    }

    let fig2 = figure2_example(512);
    let costs = MissCosts::from_hierarchy(&h);
    g.bench_function("fusion_profit_fig2", |b| {
        b.iter(|| fusion_profit(&fig2, 0, h.levels[0], h.levels[1], &costs).unwrap());
    });

    g.bench_function("select_tile_all_policies", |b| {
        b.iter(|| {
            for policy in TilePolicy::all() {
                std::hint::black_box(select_tile(policy, 400, 400, &h, 8));
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
