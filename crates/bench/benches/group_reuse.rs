//! Figure 10's timing experiment as a timed benchmark: kernel sweeps
//! under GROUPPAD and GROUPPAD+L2MAXPAD layouts.
//!
//! ```text
//! cargo bench -p mlc-bench --bench group_reuse
//! ```

use mlc_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlc_cache_sim::HierarchyConfig;
use mlc_experiments::versions::{build_versions, OptLevel};
use mlc_kernels::{kernel_by_name, Workspace};

fn bench_group_reuse(c: &mut Criterion) {
    let h = HierarchyConfig::ultrasparc_i();
    let mut g = c.benchmark_group("fig10_group_reuse");
    g.sample_size(10);
    for name in ["expl512", "shal512", "tomcatv"] {
        let k = kernel_by_name(name).unwrap();
        let v = build_versions(&k.model(), &h, OptLevel::GroupReuse);
        g.throughput(Throughput::Elements(k.flops()));
        for (label, program, layout) in [
            ("orig", &v.orig_program, &v.orig_layout),
            ("grouppad", &v.l1.program, &v.l1.layout),
            ("grouppad_l2maxpad", &v.l1l2.program, &v.l1l2.layout),
        ] {
            g.bench_with_input(BenchmarkId::new(label, name), &(), |b, _| {
                let mut ws = Workspace::new(program, layout);
                k.init(&mut ws);
                b.iter(|| k.sweep(&mut ws));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_group_reuse);
criterion_main!(benches);
