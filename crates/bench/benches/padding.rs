//! Figure 9's timing experiment as a timed benchmark: kernel sweeps
//! under the Orig / PAD / MULTILVLPAD layouts.
//!
//! ```text
//! cargo bench -p mlc-bench --bench padding
//! ```

use mlc_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlc_cache_sim::HierarchyConfig;
use mlc_experiments::versions::{build_versions, OptLevel};
use mlc_kernels::{kernel_by_name, Workspace};

fn bench_padding(c: &mut Criterion) {
    let h = HierarchyConfig::ultrasparc_i();
    let mut g = c.benchmark_group("fig09_padding");
    g.sample_size(10);
    for name in ["expl512", "jacobi512", "dot512", "adi32"] {
        let k = kernel_by_name(name).unwrap();
        let v = build_versions(&k.model(), &h, OptLevel::Conflict);
        g.throughput(Throughput::Elements(k.flops()));
        for (label, program, layout) in [
            ("orig", &v.orig_program, &v.orig_layout),
            ("pad", &v.l1.program, &v.l1.layout),
            ("multilvlpad", &v.l1l2.program, &v.l1l2.layout),
        ] {
            g.bench_with_input(BenchmarkId::new(label, name), &(), |b, _| {
                let mut ws = Workspace::new(program, layout);
                k.init(&mut ws);
                b.iter(|| k.sweep(&mut ws));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_padding);
criterion_main!(benches);
