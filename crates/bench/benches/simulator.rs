//! Cache-simulator throughput: how many accesses per second the substrate
//! sustains (the figure sweeps push billions of accesses through it).
//!
//! ```text
//! cargo bench -p mlc-bench --bench simulator
//! ```

use mlc_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlc_cache_sim::trace::{Access, AccessKind, AccessSink, Run};
use mlc_cache_sim::{Cache, CacheConfig, Hierarchy, HierarchyConfig, ReplacementPolicy};
use mlc_kernels::kernel_by_name;
#[allow(unused_imports)]
use mlc_kernels::Kernel;
use mlc_model::trace_gen::CompiledNest;
use mlc_model::DataLayout;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let n = 1_000_000u64;
    g.throughput(Throughput::Elements(n));

    // Sequential walk through a direct-mapped cache.
    g.bench_function("direct_mapped_seq", |b| {
        let mut cache = Cache::new(CacheConfig::direct_mapped(16 * 1024, 32));
        b.iter(|| {
            for i in 0..n {
                cache.access(i * 8);
            }
        });
    });

    // 4-way LRU.
    g.bench_function("four_way_seq", |b| {
        let mut cache = Cache::new(CacheConfig::new(16 * 1024, 32, 4, ReplacementPolicy::Lru));
        b.iter(|| {
            for i in 0..n {
                cache.access(i * 8);
            }
        });
    });

    // Full two-level hierarchy fed by the trace generator (the experiment
    // hot path), through both the run-length fast path and the per-access
    // scalar path. The contiguous layouts here are conflict-ridden, so
    // "fast" mostly measures the bail-out; see the trace_throughput binary
    // for the padded sweep where batching engages.
    for name in ["expl512", "jacobi512"] {
        let k = kernel_by_name(name).unwrap();
        let p = k.model();
        let layout = DataLayout::contiguous(&p.arrays);
        let refs: u64 = p.const_references().unwrap();
        let compiled: Vec<CompiledNest> = p
            .nests
            .iter()
            .map(|nst| CompiledNest::new(&p, nst, &layout))
            .collect();
        g.throughput(Throughput::Elements(refs));
        g.bench_with_input(BenchmarkId::new("trace_to_hierarchy", name), &(), |b, _| {
            let mut hier = Hierarchy::new(HierarchyConfig::ultrasparc_i());
            b.iter(|| {
                for cn in &compiled {
                    cn.run(&mut hier);
                }
            });
        });
        g.bench_with_input(
            BenchmarkId::new("trace_to_hierarchy_scalar", name),
            &(),
            |b, _| {
                let mut hier = Hierarchy::new(HierarchyConfig::ultrasparc_i());
                b.iter(|| {
                    for cn in &compiled {
                        cn.run_scalar(&mut hier);
                    }
                });
            },
        );
    }

    g.throughput(Throughput::Elements(n));
    // Raw hierarchy access with a fixed stride (no generation cost).
    g.bench_function("hierarchy_strided", |b| {
        let mut hier = Hierarchy::new(HierarchyConfig::ultrasparc_i());
        b.iter(|| {
            for i in 0..n {
                hier.access(Access::read((i * 40) & 0xFF_FFFF));
            }
        });
    });

    // Run-length consumption: a single unit-stride run against the
    // equivalent per-access loop, on one cache (no hierarchy walk).
    g.bench_function("cache_run_unit_stride", |b| {
        let mut cache = Cache::new(CacheConfig::direct_mapped(16 * 1024, 32));
        let run = Run {
            start: 0,
            stride: 8,
            count: n,
            kind: AccessKind::Read,
        };
        b.iter(|| cache.run(run));
    });

    // The same unit-stride stream through a full hierarchy via the run
    // sink, measuring the guaranteed-hit batching end to end.
    g.bench_function("hierarchy_run_unit_stride", |b| {
        let mut hier = Hierarchy::new(HierarchyConfig::ultrasparc_i());
        let run = Run {
            start: 0,
            stride: 8,
            count: n,
            kind: AccessKind::Read,
        };
        b.iter(|| hier.run(run));
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
