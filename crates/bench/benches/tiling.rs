//! Figure 13 as a timed benchmark: tiled matmul per tile policy.
//!
//! ```text
//! cargo bench -p mlc-bench --bench tiling
//! ```

use mlc_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlc_cache_sim::HierarchyConfig;
use mlc_core::tiling::{select_tile, TilePolicy};
use mlc_kernels::matmul::{matmul_tiled, matmul_untiled, Matmul};
use mlc_kernels::{Kernel, Workspace};

fn bench_tiling(c: &mut Criterion) {
    let h = HierarchyConfig::ultrasparc_i();
    let mut g = c.benchmark_group("fig13_matmul");
    g.sample_size(10);
    for n in [160usize, 288] {
        let m = Matmul::new(n);
        let p = m.base_model();
        g.throughput(Throughput::Elements(2 * (n as u64).pow(3)));

        g.bench_with_input(BenchmarkId::new("orig", n), &n, |b, &n| {
            let mut ws = Workspace::contiguous(&p);
            m.init(&mut ws);
            let (a, bb, cc) = (ws.mat(0), ws.mat(1), ws.mat(2));
            b.iter(|| matmul_untiled(ws.data_mut(), a, bb, cc, n));
        });
        for policy in TilePolicy::all() {
            let t = select_tile(policy, n as u64, n as u64, &h, 8);
            g.bench_with_input(BenchmarkId::new(policy.label(), n), &n, |b, &n| {
                let mut ws = Workspace::contiguous(&p);
                m.init(&mut ws);
                let (a, bb, cc) = (ws.mat(0), ws.mat(1), ws.mat(2));
                b.iter(|| {
                    matmul_tiled(
                        ws.data_mut(),
                        a,
                        bb,
                        cc,
                        n,
                        t.height as usize,
                        t.width as usize,
                    )
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_tiling);
criterion_main!(benches);
